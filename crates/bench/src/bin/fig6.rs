//! Reproduces **Figure 6**: (a) cell size and (b) power consumption of
//! competing schemes at 130 nm (Sec. 3.4).
//!
//! Configuration as in the paper: 1 M ternary symbols of capacity, CA-RAM
//! split into 16 slices of 64 K cells (2 bits per ternary symbol, +7% match
//! processor overhead), TCAMs searched whole. CA-RAM runs at 200 MHz,
//! TCAMs at 143 MHz.

use ca_ram_bench::rule;
use ca_ram_hwmodel::{AreaModel, CaRamGeometry, CamGeometry, CellKind, Megahertz, PowerModel};

fn main() {
    let area = AreaModel::new();
    let power = PowerModel::new();

    // --- Fig. 6(a): effective area per stored ternary symbol -------------
    println!("Figure 6(a): cell size (area per ternary symbol, 130 nm)\n");
    let caram_cell = area.caram_cell_area(CellKind::EmbeddedDram, true);
    let rows: Vec<(String, f64)> = vec![
        (
            CellKind::TcamSram16T.to_string(),
            area.cam_cell_area(CellKind::TcamSram16T).value(),
        ),
        (
            CellKind::TcamDynamic8T.to_string(),
            area.cam_cell_area(CellKind::TcamDynamic8T).value(),
        ),
        (
            CellKind::TcamDynamic6T.to_string(),
            area.cam_cell_area(CellKind::TcamDynamic6T).value(),
        ),
        (
            "DRAM ternary CA-RAM (2 bits + 7% MP)".into(),
            caram_cell.value(),
        ),
    ];
    println!("{:<40} {:>12} {:>10}", "Scheme", "um^2/symbol", "vs CA-RAM");
    rule(66);
    for (name, a) in &rows {
        println!("{name:<40} {a:>12.2} {:>9.1}x", a / caram_cell.value());
    }
    println!("\nPaper: CA-RAM >12x smaller than 16T SRAM TCAM, 4.8x smaller than 6T TCAM.\n");

    // --- Fig. 6(b): power at the device operating points ------------------
    println!("Figure 6(b): power consumption (1 M ternary symbols)\n");
    let caram = CaRamGeometry::new(16, 256, 512, CellKind::EmbeddedDram, 8);
    let p_caram = power.caram_search_power(&caram, Megahertz::new(200.0));
    let tcam_entries = 16_384; // 1 M symbols / 64-symbol entries
    let schemes = [
        CellKind::TcamSram16T,
        CellKind::TcamDynamic8T,
        CellKind::TcamDynamic6T,
    ];
    println!("{:<40} {:>10} {:>10}", "Scheme", "mW", "vs CA-RAM");
    rule(64);
    for kind in schemes {
        let g = CamGeometry::new(tcam_entries, 64, kind);
        let p = power.cam_search_power(&g, Megahertz::new(143.0));
        println!(
            "{:<40} {:>10.1} {:>9.1}x",
            kind.to_string(),
            p.value(),
            p.value() / p_caram.value()
        );
    }
    println!(
        "{:<40} {:>10.1} {:>9.1}x",
        "DRAM ternary CA-RAM @200 MHz",
        p_caram.value(),
        1.0
    );
    let e = power.caram_search_energy(&caram);
    println!(
        "\nCA-RAM per-search energy breakdown: hash {:.2}, decode {:.2}, memory {:.2}, match {:.2}, encoder {:.2} (pJ)",
        e.hash.value(),
        e.decode.value(),
        e.memory.value(),
        e.match_logic.value(),
        e.encoder.value()
    );
    println!("\nPaper: CA-RAM >26x more power-efficient than 16T SRAM TCAM, >7x than 6T TCAM.");

    // --- extension: standby power (leakage + DRAM refresh) ----------------
    println!("\nStandby power (idle device, 1 M ternary symbols):\n");
    println!("{:<40} {:>12}", "Scheme", "mW (idle)");
    rule(54);
    for kind in schemes {
        let g = CamGeometry::new(tcam_entries, 64, kind);
        println!(
            "{:<40} {:>12.3}",
            kind.to_string(),
            power.cam_standby_power(&g).value()
        );
    }
    println!(
        "{:<40} {:>12.3}",
        "DRAM CA-RAM (leakage + 64 ms refresh)",
        power.caram_standby_power(&caram).value()
    );
    println!("(not in the paper; the idle-power gap is even wider than the active one)");
}
