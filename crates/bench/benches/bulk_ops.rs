//! Criterion bench: bulk evaluation/update and insert paths (the
//! decoupled-match-logic extensions of Sec. 3.1).

use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::table::{CaRamTable, TableConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn build_table(records: u32) -> CaRamTable {
    let layout = RecordLayout::new(32, false, 16);
    let config = TableConfig::single_slice(10, 32 * layout.slot_bits(), layout);
    let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(0, 10))).expect("valid");
    for i in 0..records {
        t.insert(Record::new(
            TernaryKey::binary(u128::from(i).wrapping_mul(2_654_435_761) & 0xFFFF_FFFF, 32),
            u64::from(i & 0xFFFF),
        ))
        .expect("sized");
    }
    t
}

fn bench_bulk(c: &mut Criterion) {
    let table = build_table(20_000);
    c.bench_function("bulk_scan_20k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let receipt = table.for_each_record(|_, _, r| acc = acc.wrapping_add(r.data));
            black_box((acc, receipt))
        });
    });
    let pattern = SearchKey::with_mask(0, 0xFFFF_FF00, 32);
    c.bench_function("bulk_count_matching_20k", |b| {
        b.iter(|| black_box(table.count_matching(&pattern)));
    });

    c.bench_function("insert_20k_records", |b| {
        b.iter(|| black_box(build_table(20_000)));
    });

    let mut sorted = build_table(0);
    let mut i = 0u32;
    c.bench_function("insert_sorted_one", |b| {
        b.iter(|| {
            if sorted.record_count() > 30_000 {
                sorted = build_table(0);
            }
            let key = u128::from(i).wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF;
            i = i.wrapping_add(1);
            black_box(sorted.insert_sorted(Record::new(TernaryKey::binary(key, 32), 0)))
        });
    });
}

criterion_group!(benches, bench_bulk);
criterion_main!(benches);
