//! Precomputation-based low-power binary CAM (Lin, Chang & Liu \[16\];
//! Sec. 5.2).
//!
//! "This approach also uses a two-phase lookup scheme, where the first
//! lookup is to match the precomputed signature, such as the number of 1's
//! in the search key. As a result of the initial lookup, the second search
//! is performed on a limited number of entries in the main table. This
//! scheme however is applicable to only binary CAMs."
//!
//! [`PrecomputedBcam`] stores each entry under its popcount signature; a
//! search computes the key's popcount and compares only the matching
//! signature group. The per-search *activated fraction* quantifies the
//! power saving; for uniformly random `n`-bit keys the largest group is the
//! central binomial bucket, ~`sqrt(2/(π n))` of the array.

use ca_ram_core::key::SearchKey;

/// A stored entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecomputedEntry {
    /// The stored key.
    pub key: u128,
    /// Associated data.
    pub data: u64,
}

/// Result of a precomputation-filtered search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecomputedMatch {
    /// The winning entry, if any.
    pub hit: Option<PrecomputedEntry>,
    /// The popcount signature of the search key.
    pub signature: u32,
    /// Entries compared in the second phase.
    pub entries_compared: usize,
}

/// A binary CAM with popcount precomputation.
#[derive(Debug, Clone)]
pub struct PrecomputedBcam {
    key_bits: u32,
    capacity: usize,
    /// One group per possible popcount (`0..=key_bits`).
    groups: Vec<Vec<PrecomputedEntry>>,
}

impl PrecomputedBcam {
    /// Creates an empty device.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `key_bits` is 0 or > 128.
    #[must_use]
    pub fn new(capacity: usize, key_bits: u32) -> Self {
        assert!(capacity > 0, "a CAM needs at least one entry");
        assert!(key_bits > 0 && key_bits <= 128, "key width must be 1..=128");
        Self {
            key_bits,
            capacity,
            groups: vec![Vec::new(); key_bits as usize + 1],
        }
    }

    /// Total entry slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether the device is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(Vec::is_empty)
    }

    /// Inserts an entry under its signature; `None` when full.
    ///
    /// # Panics
    ///
    /// Panics if the key has bits above the device width.
    pub fn insert(&mut self, key: u128, data: u64) -> Option<u32> {
        assert!(
            self.key_bits == 128 || key < (1u128 << self.key_bits),
            "key has bits above the device width"
        );
        if self.len() >= self.capacity {
            return None;
        }
        let sig = key.count_ones();
        self.groups[sig as usize].push(PrecomputedEntry { key, data });
        Some(sig)
    }

    /// Removes every entry storing `key` from its signature group,
    /// returning the number removed.
    pub fn remove(&mut self, key: u128) -> u32 {
        let group = &mut self.groups[key.count_ones() as usize];
        let before = group.len();
        group.retain(|e| e.key != key);
        u32::try_from(before - group.len()).unwrap_or(u32::MAX)
    }

    /// Two-phase search: popcount, then compare only the signature group.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch or a masked key — don't-care bits make
    /// the popcount ambiguous, which is exactly why "this scheme is
    /// applicable to only binary CAMs".
    #[must_use]
    pub fn search(&self, key: &SearchKey) -> PrecomputedMatch {
        assert_eq!(key.bits(), self.key_bits, "search key width mismatch");
        assert!(
            !key.is_masked(),
            "precomputation requires fully specified (binary) keys"
        );
        let sig = key.value().count_ones();
        let group = &self.groups[sig as usize];
        PrecomputedMatch {
            hit: group.iter().find(|e| e.key == key.value()).copied(),
            signature: sig,
            entries_compared: group.len(),
        }
    }

    /// Worst-case activated fraction over the stored population.
    #[must_use]
    pub fn worst_activated_fraction(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 0.0;
        }
        let biggest = self.groups.iter().map(Vec::len).max().unwrap_or(0);
        #[allow(clippy::cast_precision_loss)]
        {
            biggest as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_match_through_signature_groups() {
        let mut d = PrecomputedBcam::new(16, 16);
        d.insert(0b0000_0000_0000_0111, 3).unwrap();
        d.insert(0b0000_0000_1111_0000, 4).unwrap();
        d.insert(0b0000_0000_0000_1011, 33).unwrap(); // also popcount 3
        let m = d.search(&SearchKey::new(0b0111, 16));
        assert_eq!(m.hit.unwrap().data, 3);
        assert_eq!(m.signature, 3);
        assert_eq!(m.entries_compared, 2, "only the popcount-3 group");
        assert!(d.search(&SearchKey::new(0b0001, 16)).hit.is_none());
    }

    #[test]
    fn different_signature_group_never_compared() {
        let mut d = PrecomputedBcam::new(8, 8);
        d.insert(0xFF, 0).unwrap(); // popcount 8
        let m = d.search(&SearchKey::new(0x0F, 8)); // popcount 4
        assert_eq!(m.entries_compared, 0);
        assert!(m.hit.is_none());
    }

    #[test]
    fn capacity_enforced_across_groups() {
        let mut d = PrecomputedBcam::new(2, 8);
        assert!(d.insert(0x01, 0).is_some());
        assert!(d.insert(0x03, 0).is_some());
        assert!(d.insert(0x07, 0).is_none());
    }

    #[test]
    fn random_keys_activate_a_small_fraction() {
        // For 64-bit random keys the central binomial group holds ~10% of
        // entries — the power saving of the scheme.
        let mut d = PrecomputedBcam::new(20_000, 64);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..20_000 {
            if d.insert(u128::from(rng.gen::<u64>()), 0).is_none() {
                break;
            }
        }
        let f = d.worst_activated_fraction();
        assert!(f < 0.15, "worst activated fraction {f:.3}");
        // And searches agree with the fraction bound.
        let m = d.search(&SearchKey::new(u128::from(rng.gen::<u64>()), 64));
        #[allow(clippy::cast_precision_loss)]
        let frac = m.entries_compared as f64 / d.len() as f64;
        assert!(frac <= f + 1e-12);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn masked_key_rejected() {
        let d = PrecomputedBcam::new(2, 8);
        let _ = d.search(&SearchKey::with_mask(0, 1, 8));
    }
}
