//! Record formats and their placement within a memory row.
//!
//! A row (bucket) of `C` bits holds `⌊C / slot_bits⌋` record slots
//! (Sec. 3.1). A slot serializes the stored key — two bits per symbol when
//! ternary search is enabled — optionally followed by the record's data,
//! which CA-RAM can store alongside the key to hide the data access that
//! follows a CAM lookup (Sec. 3.2).

use crate::key::{TernaryKey, MAX_KEY_BITS};

/// Maximum data payload width per record.
pub const MAX_DATA_BITS: u32 = 64;

/// A searchable record: a (possibly ternary) key plus a data payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Record {
    /// The stored key.
    pub key: TernaryKey,
    /// The data payload (interpreted by the application; e.g. next-hop id).
    pub data: u64,
}

impl Record {
    /// Creates a record.
    #[must_use]
    pub fn new(key: TernaryKey, data: u64) -> Self {
        Self { key, data }
    }
}

/// The serialized format of one record slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordLayout {
    key_bits: u32,
    ternary: bool,
    data_bits: u32,
}

impl RecordLayout {
    /// Creates a layout for `key_bits`-wide keys and `data_bits` of payload.
    /// With `ternary` enabled every key position costs two stored bits
    /// (value + don't-care), halving the records that fit in a bucket
    /// (Sec. 3.1).
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is 0 or exceeds [`MAX_KEY_BITS`], or if
    /// `data_bits` exceeds [`MAX_DATA_BITS`].
    #[must_use]
    pub fn new(key_bits: u32, ternary: bool, data_bits: u32) -> Self {
        assert!(
            key_bits > 0 && key_bits <= MAX_KEY_BITS,
            "key width must be in 1..={MAX_KEY_BITS}, got {key_bits}"
        );
        assert!(
            data_bits <= MAX_DATA_BITS,
            "data width must be at most {MAX_DATA_BITS}, got {data_bits}"
        );
        Self {
            key_bits,
            ternary,
            data_bits,
        }
    }

    /// A key-only binary layout (data lives in a separate RAM, as in a
    /// conventional CAM deployment).
    #[must_use]
    pub fn binary_key_only(key_bits: u32) -> Self {
        Self::new(key_bits, false, 0)
    }

    /// The IP-lookup layout of Sec. 4.1: 32 ternary key bits (64 stored
    /// bits) plus a data payload (next-hop index).
    #[must_use]
    pub fn ipv4_prefix(data_bits: u32) -> Self {
        Self::new(32, true, data_bits)
    }

    /// Key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Whether stored keys may contain don't-care symbols.
    #[must_use]
    pub fn is_ternary(&self) -> bool {
        self.ternary
    }

    /// Data payload width in bits.
    #[must_use]
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Stored bits occupied by the key field (2× when ternary).
    #[must_use]
    pub fn stored_key_bits(&self) -> u32 {
        if self.ternary {
            self.key_bits * 2
        } else {
            self.key_bits
        }
    }

    /// Total stored bits per record slot.
    #[must_use]
    pub fn slot_bits(&self) -> u32 {
        self.stored_key_bits() + self.data_bits
    }

    /// Number of record slots in a row of `row_bits` bits:
    /// `⌊C / slot_bits⌋`.
    ///
    /// # Panics
    ///
    /// Panics if not even one slot fits.
    #[must_use]
    pub fn slots_per_row(&self, row_bits: u32) -> u32 {
        let slots = row_bits / self.slot_bits();
        assert!(
            slots > 0,
            "row of {row_bits} bits cannot hold a {}-bit record slot",
            self.slot_bits()
        );
        slots
    }

    /// Bit offset of slot `slot` within its row.
    #[must_use]
    #[inline]
    pub fn slot_offset(&self, slot: u32) -> usize {
        slot as usize * self.slot_bits() as usize
    }

    /// Serializes `record` into the row `words` at slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the record's key width does not match the layout, if the
    /// record has don't-care bits but the layout is binary, if the data
    /// overflows `data_bits`, or if the slot lies outside the row.
    pub fn encode_slot(&self, words: &mut [u64], slot: u32, record: &Record) {
        assert_eq!(
            record.key.bits(),
            self.key_bits,
            "record key width {} does not match layout key width {}",
            record.key.bits(),
            self.key_bits
        );
        assert!(
            self.ternary || record.key.dont_care() == 0,
            "binary layout cannot store a ternary key"
        );
        assert!(
            self.data_bits == 64 || record.data < (1u64 << self.data_bits),
            "data {:#x} overflows the {}-bit data field",
            record.data,
            self.data_bits
        );
        let base = self.slot_offset(slot);
        crate::bits::write_bits(words, base, self.key_bits, record.key.value());
        let mut cursor = base + self.key_bits as usize;
        if self.ternary {
            crate::bits::write_bits(words, cursor, self.key_bits, record.key.dont_care());
            cursor += self.key_bits as usize;
        }
        if self.data_bits > 0 {
            crate::bits::write_bits(words, cursor, self.data_bits, u128::from(record.data));
        }
    }

    /// Compares the stored key at slot `slot` directly against `search`
    /// without materializing a [`Record`] — the hardware match step
    /// (Fig. 4(b)) reads the stored bits, applies both don't-care masks,
    /// and raises the match line; only the *winning* slot is then decoded
    /// ("extract result", Sec. 3.1 step 4). Stored keys are canonical
    /// (value bits at don't-care positions are zero, enforced by
    /// [`TernaryKey::ternary`]), so the masked XOR below is exact.
    ///
    /// The caller is responsible for slot validity, as with
    /// [`RecordLayout::decode_slot`].
    ///
    /// # Panics
    ///
    /// Panics if the slot lies outside the row. The search key width is
    /// checked by the match-processor bank, not here.
    #[must_use]
    #[inline]
    pub fn key_matches(&self, words: &[u64], slot: u32, search: &crate::key::SearchKey) -> bool {
        let base = self.slot_offset(slot);
        let value = crate::bits::read_bits(words, base, self.key_bits);
        let stored_dc = if self.ternary {
            crate::bits::read_bits(words, base + self.key_bits as usize, self.key_bits)
        } else {
            0
        };
        let care = !(stored_dc | search.dont_care()) & crate::bits::low_mask(self.key_bits);
        (value ^ search.value()) & care == 0
    }

    /// Deserializes the record at slot `slot` from the row `words`.
    ///
    /// The caller is responsible for knowing whether the slot is valid
    /// (validity lives in the bucket's auxiliary field, not in the slot).
    ///
    /// # Panics
    ///
    /// Panics if the slot lies outside the row.
    #[must_use]
    pub fn decode_slot(&self, words: &[u64], slot: u32) -> Record {
        let base = self.slot_offset(slot);
        let value = crate::bits::read_bits(words, base, self.key_bits);
        let mut cursor = base + self.key_bits as usize;
        let dont_care = if self.ternary {
            let m = crate::bits::read_bits(words, cursor, self.key_bits);
            cursor += self.key_bits as usize;
            m
        } else {
            0
        };
        let data = if self.data_bits > 0 {
            #[allow(clippy::cast_possible_truncation)]
            {
                crate::bits::read_bits(words, cursor, self.data_bits) as u64
            }
        } else {
            0
        };
        Record {
            key: TernaryKey::ternary(value, dont_care, self.key_bits),
            data,
        }
    }

    /// Zeroes the slot (used by delete; validity is cleared separately).
    ///
    /// Wide ternary layouts exceed the 128-bit single-field limit of the
    /// bit-packed array (a 64-bit ternary key with 32-bit data is a
    /// 160-bit slot), so the slot is zeroed in `<= 128`-bit chunks.
    ///
    /// # Panics
    ///
    /// Panics if the slot lies outside the row.
    pub fn clear_slot(&self, words: &mut [u64], slot: u32) {
        let mut offset = self.slot_offset(slot);
        let mut remaining = self.slot_bits();
        while remaining > 0 {
            let chunk = remaining.min(128);
            crate::bits::write_bits(words, offset, chunk, 0);
            offset += chunk as usize;
            remaining -= chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bits: u32) -> Vec<u64> {
        vec![0u64; (bits as usize).div_ceil(64)]
    }

    #[test]
    fn slot_geometry_matches_paper_designs() {
        // Table 2: 64-bit stored ternary IPv4 keys, 32 or 64 per bucket.
        let ip = RecordLayout::new(32, true, 0);
        assert_eq!(ip.stored_key_bits(), 64);
        assert_eq!(ip.slots_per_row(32 * 64), 32);
        assert_eq!(ip.slots_per_row(64 * 64), 64);
        // Table 3: 128-bit binary trigram keys, 96 per bucket.
        let tri = RecordLayout::new(128, false, 0);
        assert_eq!(tri.slots_per_row(128 * 96), 96);
    }

    #[test]
    fn encode_decode_round_trip_binary() {
        let layout = RecordLayout::new(24, false, 16);
        let mut words = row(24 * 4 + 16 * 4);
        for slot in 0..4 {
            let rec = Record::new(
                TernaryKey::binary(u128::from(0x00AB_CD00 + slot), 24),
                u64::from(0x1000 + slot),
            );
            layout.encode_slot(&mut words, slot, &rec);
        }
        for slot in 0..4 {
            let rec = layout.decode_slot(&words, slot);
            assert_eq!(rec.key.value(), u128::from(0x00AB_CD00 + slot));
            assert_eq!(rec.data, u64::from(0x1000 + slot));
        }
    }

    #[test]
    fn encode_decode_round_trip_ternary() {
        let layout = RecordLayout::ipv4_prefix(16);
        let mut words = row(layout.slot_bits() * 2);
        let rec = Record::new(TernaryKey::ternary(0xC0A8_0000, 0xFFFF, 32), 42);
        layout.encode_slot(&mut words, 1, &rec);
        let back = layout.decode_slot(&words, 1);
        assert_eq!(back, rec);
        assert_eq!(back.key.care_count(), 16);
    }

    #[test]
    fn neighbouring_slots_do_not_interfere() {
        let layout = RecordLayout::new(13, false, 3);
        let mut words = row(layout.slot_bits() * 5);
        let recs: Vec<Record> = (0..5u32)
            .map(|i| {
                Record::new(
                    TernaryKey::binary(u128::from(i * 1000 + 7), 13),
                    u64::from(i % 8),
                )
            })
            .collect();
        for (i, r) in recs.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            layout.encode_slot(&mut words, i as u32, r);
        }
        for (i, r) in recs.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let got = layout.decode_slot(&words, i as u32);
            assert_eq!(got, *r);
        }
    }

    #[test]
    fn clear_slot_zeroes_exactly_one_slot() {
        let layout = RecordLayout::new(16, false, 8);
        let mut words = row(layout.slot_bits() * 3);
        for slot in 0..3 {
            let rec = Record::new(TernaryKey::binary(0xAAAA, 16), 0xBB);
            layout.encode_slot(&mut words, slot, &rec);
        }
        layout.clear_slot(&mut words, 1);
        assert_eq!(layout.decode_slot(&words, 0).key.value(), 0xAAAA);
        assert_eq!(layout.decode_slot(&words, 1).key.value(), 0);
        assert_eq!(layout.decode_slot(&words, 1).data, 0);
        assert_eq!(layout.decode_slot(&words, 2).key.value(), 0xAAAA);
    }

    #[test]
    fn clear_slot_handles_slots_wider_than_128_bits() {
        // Regression: a 64-bit ternary key with 32-bit data is a 160-bit
        // slot; clearing it as one bit-array field used to panic
        // ("field width 160 exceeds 128 bits") on every delete.
        for (key_bits, data_bits) in [(64, 32), (96, 32), (128, 64)] {
            let layout = RecordLayout::new(key_bits, true, data_bits);
            assert!(layout.slot_bits() > 128);
            let mut words = row(layout.slot_bits() * 3);
            for slot in 0..3 {
                let rec = Record::new(
                    TernaryKey::ternary(u128::MAX >> (128 - key_bits), 0, key_bits),
                    u64::from(0xDEAD_0000 + slot),
                );
                layout.encode_slot(&mut words, slot, &rec);
            }
            layout.clear_slot(&mut words, 1);
            assert_eq!(layout.decode_slot(&words, 1).key.value(), 0);
            assert_eq!(layout.decode_slot(&words, 1).key.dont_care(), 0);
            assert_eq!(layout.decode_slot(&words, 1).data, 0);
            // Neighbours survive the chunked clear untouched.
            for slot in [0, 2] {
                let rec = layout.decode_slot(&words, slot);
                assert_eq!(rec.key.value(), u128::MAX >> (128 - key_bits));
                assert_eq!(rec.data, u64::from(0xDEAD_0000 + slot));
            }
        }
    }

    #[test]
    fn ternary_halves_capacity() {
        // Sec. 3.1: "the number of records that can fit ... will be halved
        // when the ternary search capability is enabled".
        let bin = RecordLayout::new(32, false, 0);
        let ter = RecordLayout::new(32, true, 0);
        assert_eq!(bin.slots_per_row(2048), 2 * ter.slots_per_row(2048));
    }

    #[test]
    fn full_width_data() {
        let layout = RecordLayout::new(8, false, 64);
        let mut words = row(layout.slot_bits());
        let rec = Record::new(TernaryKey::binary(0x5A, 8), u64::MAX);
        layout.encode_slot(&mut words, 0, &rec);
        assert_eq!(layout.decode_slot(&words, 0).data, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "binary layout cannot store a ternary key")]
    fn ternary_key_in_binary_layout_rejected() {
        let layout = RecordLayout::new(8, false, 0);
        let mut words = row(8);
        layout.encode_slot(&mut words, 0, &Record::new(TernaryKey::ternary(0, 1, 8), 0));
    }

    #[test]
    fn key_matches_agrees_with_decode_then_match() {
        use crate::key::SearchKey;
        // Ternary and binary layouts, slots at unaligned offsets too.
        for layout in [
            RecordLayout::new(12, true, 7),
            RecordLayout::new(12, false, 7),
        ] {
            let mut words = row(4 * layout.slot_bits());
            let keys = [
                TernaryKey::ternary(0b1010_0101_0011, 0, 12),
                TernaryKey::ternary(0b1010_0000_0000, 0b0000_1111_1111, 12),
                TernaryKey::binary(0, 12),
                TernaryKey::ternary(0, 0b1111_1111_1111, 12),
            ];
            for (slot, key) in keys.iter().enumerate() {
                let key = if layout.is_ternary() {
                    *key
                } else {
                    TernaryKey::binary(key.value(), 12)
                };
                #[allow(clippy::cast_possible_truncation)]
                layout.encode_slot(&mut words, slot as u32, &Record::new(key, 99));
            }
            for slot in 0..4u32 {
                for probe in [
                    SearchKey::new(0b1010_0101_0011, 12),
                    SearchKey::new(0b1010_0000_1100, 12),
                    SearchKey::with_mask(0, 0b1111_0000_0000, 12),
                    SearchKey::with_mask(0b1010_0101_0011, 0b0000_0000_0111, 12),
                ] {
                    let decoded = layout.decode_slot(&words, slot);
                    assert_eq!(
                        layout.key_matches(&words, slot, &probe),
                        decoded.key.matches(&probe),
                        "layout {layout:?} slot {slot} probe {probe:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflows the")]
    fn oversized_data_rejected() {
        let layout = RecordLayout::new(8, false, 4);
        let mut words = row(12);
        layout.encode_slot(&mut words, 0, &Record::new(TernaryKey::binary(0, 8), 16));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn row_too_narrow_rejected() {
        let layout = RecordLayout::new(128, true, 0);
        let _ = layout.slots_per_row(255);
    }
}
