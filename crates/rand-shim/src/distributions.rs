//! Distributions (`rand::distributions`). Only [`WeightedIndex`] and the
//! [`Distribution`] trait are provided.

use crate::{RngCore, Standard};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight list was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Weight types accepted by [`WeightedIndex::new`].
pub trait IntoWeight {
    /// The weight as an `f64`.
    fn into_weight(self) -> f64;
}

macro_rules! impl_into_weight {
    ($($t:ty),*) => {$(
        impl IntoWeight for $t {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn into_weight(self) -> f64 {
                self as f64
            }
        }

        impl IntoWeight for &$t {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn into_weight(self) -> f64 {
                *self as f64
            }
        }
    )*};
}

impl_into_weight!(f64, f32, u8, u16, u32, u64, usize);

/// Samples indices `0..n` in proportion to a list of `n` weights, by
/// inverse-CDF lookup (binary search over the cumulative weights).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the distribution from an iterator of non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError`] if the list is empty, any weight is
    /// negative or non-finite, or all weights are zero.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: IntoWeight,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = w.into_weight();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let draw = f64::sample_standard(rng) * self.total;
        // partition_point finds the first cumulative weight > draw, which
        // skips zero-weight entries (their cumulative equals the previous).
        self.cumulative
            .partition_point(|&c| c <= draw)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new(vec![1.0, -0.5]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new(vec![0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }

    #[test]
    fn zero_weight_entries_never_drawn() {
        let dist = WeightedIndex::new(vec![0.0, 1.0, 0.0, 3.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        // Ratio should be roughly 1:3.
        let ratio = f64::from(counts[3]) / f64::from(counts[1]);
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn integer_and_reference_weights_accepted() {
        let ws = [2u32, 1u32];
        let dist = WeightedIndex::new(ws.iter()).unwrap();
        let mut rng = SmallRng::seed_from_u64(23);
        let mut counts = [0u32; 2];
        for _ in 0..9_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
    }
}
