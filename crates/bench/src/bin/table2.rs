//! Reproduces **Table 2**: six CA-RAM designs for IP address lookup.
//!
//! For each design the harness builds the table from a synthetic AS1103-like
//! BGP table (186,760 prefixes by default), inserted in LPM priority order,
//! and reports load factor, overflowing buckets, spilled records, and AMAL
//! under uniform (`AMALu`) and Zipf-skewed (`AMALs`) access.
//!
//! Usage: `table2 [--prefixes N] [--seed S]`

use ca_ram_bench::designs::{build_ip_table, ip_designs, load_prefixes};
use ca_ram_bench::{bgp_config, rule, write_text_atomic, Cli, Result};
use ca_ram_workloads::bgp::generate;
use ca_ram_workloads::prefix::Ipv4Prefix;
use ca_ram_workloads::trace::{frequencies, AccessPattern};

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let prefixes_n: usize = cli.parse("prefixes", 186_760)?;
    let seed: u64 = cli.parse("seed", 0x1103)?;
    let mut config = bgp_config(prefixes_n, Some(seed));
    // Calibration overrides (see EXPERIMENTS.md).
    config.block_size_cv = cli.parse("cv", config.block_size_cv)?;
    config.blocks = cli.parse("blocks", config.blocks)?;

    println!("Table 2: Designs of CA-RAM for IP address lookup");
    println!(
        "(synthetic BGP table, {} prefixes, seed {seed:#x})\n",
        config.prefixes
    );

    let table = generate(&config);

    // Uniform placement order: (length desc, addr) — already how the
    // generator sorts. Skewed placement order: (length desc, freq desc).
    let uniform_order: Vec<Ipv4Prefix> = table.clone();
    let zipf = frequencies(table.len(), AccessPattern::Zipf { s: 1.0 }, seed ^ 0xABCD);
    let mut skewed_order: Vec<(Ipv4Prefix, f64)> =
        table.iter().copied().zip(zipf.iter().copied()).collect();
    skewed_order.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(b.1.total_cmp(&a.1)));

    let mut csv =
        String::from("design,r,c,slices,arrangement,alpha,overflow_pct,spill_pct,amalu,amals\n");
    println!(
        "{:^6} {:>3} {:>7} {:>8} {:>11} {:>6} {:>11} {:>9} {:>7} {:>7}",
        "Design",
        "R",
        "C",
        "#Slices",
        "Arrangement",
        "alpha",
        "Overflow(%)",
        "Spill(%)",
        "AMALu",
        "AMALs"
    );
    rule(96);
    for d in ip_designs() {
        // Build once in uniform order for AMALu and the overflow columns...
        let mut t_u = build_ip_table(&d);
        let w_u = vec![1.0; uniform_order.len()];
        load_prefixes(&mut t_u, &uniform_order, &w_u);
        let report = t_u.load_report();
        // ...and once in frequency order for AMALs (Sec. 4.1: "we sort the
        // prefixes on their prefix length (for LPM) and access frequency
        // before placing in CA-RAM").
        let mut t_s = build_ip_table(&d);
        let (ps, ws): (Vec<Ipv4Prefix>, Vec<f64>) = skewed_order.iter().copied().unzip();
        load_prefixes(&mut t_s, &ps, &ws);
        let amals = t_s.load_report().amal_weighted;

        println!(
            "{:^6} {:>3} {:>7} {:>8} {:>11} {:>6.2} {:>11.2} {:>9.2} {:>7.3} {:>7.3}",
            d.name,
            d.rows_log2,
            format!("{}x64", d.keys_per_row),
            d.slices,
            d.arrangement_label(),
            report.load_factor(),
            report.overflowing_buckets_pct(),
            report.spilled_records_pct(),
            report.amal_uniform,
            amals,
        );
        csv.push_str(&format!(
            "{},{},{}x64,{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            d.name,
            d.rows_log2,
            d.keys_per_row,
            d.slices,
            d.arrangement_label(),
            report.load_factor(),
            report.overflowing_buckets_pct(),
            report.spilled_records_pct(),
            report.amal_uniform,
            amals,
        ));
    }
    if let Some(path) = cli.value("csv") {
        write_text_atomic(path, &csv)?;
        println!("(wrote {path})");
    }
    rule(96);
    println!("\nDuplicated prefixes (don't-care bits in hash positions): paper reports ~6.4%.");
    let d = &ip_designs()[0];
    let mut t = build_ip_table(d);
    load_prefixes(&mut t, &uniform_order, &vec![1.0; uniform_order.len()]);
    let r = t.load_report();
    #[allow(clippy::cast_precision_loss)]
    let dup_pct = 100.0 * r.duplicate_records as f64 / r.original_records as f64;
    println!(
        "measured: {} duplicates over {} prefixes = {dup_pct:.1}%",
        r.duplicate_records, r.original_records
    );
    Ok(())
}
