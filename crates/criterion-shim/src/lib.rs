//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no reliable registry access, so the workspace
//! aliases the `criterion` dependency name to this crate (see the root
//! `Cargo.toml`). It measures wall-clock time with an adaptive iteration
//! count and prints a plain-text report (median ns/iter plus throughput
//! when configured) instead of criterion's statistical analysis and HTML
//! output. The bench source files compile unchanged.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// The benchmark driver handed to `criterion_group!` targets.
///
/// Like upstream criterion, measurement only happens when the binary is
/// invoked with `--bench` (which `cargo bench` passes); under `cargo test`
/// each benchmark body runs exactly once as a smoke test.
#[derive(Debug)]
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measure);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Times closures with an adaptive iteration count.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
    /// When false (under `cargo test`), run bodies once without timing.
    measure: bool,
}

impl Bencher {
    fn new(measure: bool) -> Self {
        Bencher {
            ns_per_iter: 0.0,
            measure,
        }
    }

    /// Measures `f`, storing the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            return;
        }
        // Warm up and size the batch so one sample takes ~TARGET/10.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if start.elapsed() >= TARGET / 10 || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Collect a handful of samples and keep the median.
        let samples = 5;
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            #[allow(clippy::cast_precision_loss)]
            times.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        times.sort_by(f64::total_cmp);
        self.ns_per_iter = times[samples / 2] * 1e9;
    }

    /// Prints one result line, with optional throughput.
    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        let ns = self.ns_per_iter;
        match throughput {
            Some(&Throughput::Elements(n)) if ns > 0.0 => {
                #[allow(clippy::cast_precision_loss)]
                let rate = n as f64 / (ns / 1e9);
                println!("bench {name:<40} {ns:>12.1} ns/iter ({rate:.0} elem/s)");
            }
            Some(&Throughput::Bytes(n)) if ns > 0.0 => {
                #[allow(clippy::cast_precision_loss)]
                let rate = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
                println!("bench {name:<40} {ns:>12.1} ns/iter ({rate:.1} MiB/s)");
            }
            _ => println!("bench {name:<40} {ns:>12.1} ns/iter"),
        }
    }
}

/// Units for group throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// An identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id combining a function name and a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.measure);
        f(&mut b, input);
        b.report(
            &format!("{}/{}", self.name, id.id),
            self.throughput.as_ref(),
        );
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group!(unit_benches, target);

    #[test]
    fn bench_function_measures_something() {
        // Smoke test: run the group machinery end to end.
        unit_benches();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box((0..n).sum::<u32>()));
        });
        group.finish();
    }
}
