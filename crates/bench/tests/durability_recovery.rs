//! Durability regression suite: the pinned crash fixture swept at every
//! byte boundary, the fleet replay of that fixture, and the engine
//! conformance contract instantiated on *recovered* durable tables.

use ca_ram_bench::fleet::{durable_spec, fleet_for};
use ca_ram_core::engine::conformance::{check_engine, check_loaded, Probe};
use ca_ram_core::key::SearchKey;
use ca_ram_core::oracle::{parse_stream, replay, standard_scenarios, Op};
use ca_ram_core::storage::{
    crash_sweep, CrashSweepOptions, CutGranularity, DurableOptions, TempDurableTable,
};

const FIXTURE: &str = include_str!("fixtures/durability_crash_32b.ops");

fn fixture_ops() -> Vec<Op> {
    parse_stream(FIXTURE).expect("fixture must parse")
}

/// Every byte offset of the fixture's WAL is a recoverable crash point:
/// the sweep cuts the log after each op (and at every byte in between),
/// reopens, and diffs the recovered table against the reference model.
#[test]
fn pinned_fixture_survives_byte_exhaustive_crash_sweep() {
    let ops = fixture_ops();
    let report = crash_sweep(
        "durability_crash_32b",
        &|bits| durable_spec(bits, 0),
        32,
        &ops,
        &CrashSweepOptions {
            granularity: CutGranularity::Bytes,
            ..CrashSweepOptions::default()
        },
    )
    .expect("every cut of the pinned fixture must recover to the model");
    assert!(report.ops_logged >= 5, "fixture logs its mutations");
    assert!(
        report.cuts_tested > report.ops_logged,
        "byte granularity must test intra-frame cuts"
    );
    assert!(report.torn_cuts > 0, "some cuts land inside a frame");
}

/// The same sweep with a checkpoint injected mid-stream: cuts then land
/// in the post-snapshot segment, exercising snapshot-plus-tail recovery.
#[test]
fn pinned_fixture_survives_checkpointed_crash_sweep() {
    let ops = fixture_ops();
    crash_sweep(
        "durability_crash_32b_ckpt",
        &|bits| durable_spec(bits, 0),
        32,
        &ops,
        &CrashSweepOptions {
            granularity: CutGranularity::Bytes,
            checkpoint_at: Some(3),
            ..CrashSweepOptions::default()
        },
    )
    .expect("checkpointed recovery must also match the model at every cut");
}

/// The fixture also replays divergence-free through every engine fielded
/// for its scenario, durable ones included (the `oracle_fixtures`
/// discipline: a durability fixture must not regress any other design).
#[test]
fn fixture_replays_clean_across_the_fleet() {
    let scenario = standard_scenarios()
        .into_iter()
        .find(|s| s.name == "exact-churn-32b")
        .expect("scenario exists");
    let ops = fixture_ops();
    let fleet = fleet_for(&scenario, &[]);
    assert!(
        fleet.iter().any(|c| c.name == "ca-ram/durable"),
        "the durable engine must be fielded for the fixture's scenario"
    );
    for case in &fleet {
        if let Some(d) = replay(case, scenario.key_bits, &ops) {
            panic!(
                "durability_crash_32b.ops: {} diverged at op {}: {}",
                case.name, d.op_index, d.kind
            );
        }
    }
}

/// Full engine conformance (insert→search→batch≡serial→delete) on a
/// durable table that has already been through a crash-recovery cycle:
/// the recovered writer must honor the same contract as a fresh engine.
#[test]
fn recovered_durable_table_passes_engine_conformance() {
    let spec = durable_spec(32, 0).expect("32-bit fleet geometry");
    let mut table = TempDurableTable::create("conformance", &spec, DurableOptions::default())
        .expect("create durable table");
    // Cycle through recovery while empty, then run the mutable contract.
    table.reopen().expect("recover the empty table");
    let probes: Vec<Probe> = (0..48u64)
        .map(|i| Probe::exact(u128::from(i) * 5 + 1, 32, i))
        .collect();
    let misses: Vec<SearchKey> = (0..16u64)
        .map(|i| SearchKey::new(u128::from(i) * 5 + 3, 32))
        .collect();
    check_engine(table.get_mut(), &probes, &misses);
}

/// The loaded-engine contract on a table recovered *with* its contents:
/// insert, commit, crash-recover, then every probe must still hit and
/// batch/parallel search must stay bit-identical to serial.
#[test]
fn recovered_durable_table_passes_loaded_conformance() {
    let spec = durable_spec(32, 0).expect("32-bit fleet geometry");
    let mut table =
        TempDurableTable::create("loaded_conformance", &spec, DurableOptions::default())
            .expect("create durable table");
    let probes: Vec<Probe> = (0..48u64)
        .map(|i| Probe::exact(u128::from(i) * 7 + 2, 32, i))
        .collect();
    let misses: Vec<SearchKey> = (0..16u64)
        .map(|i| SearchKey::new(u128::from(i) * 7 + 4, 32))
        .collect();
    for p in &probes {
        table.get_mut().insert(p.record).expect("insert");
    }
    table.get_mut().commit().expect("commit");
    table.reopen().expect("recover the loaded table");
    check_loaded(table.get(), &probes, &misses);
}
