//! RAM-mode memory tests (Sec. 3.2).
//!
//! "Lastly, various hardware- and software-based memory tests will be
//! performed on CA-RAM using this RAM mode." This module implements the
//! classical pattern tests — walking ones/zeros, checkerboard,
//! address-in-address, and a March C- style sequence — over any
//! word-addressable RAM view ([`RamAccess`]), which [`MemoryArray`]
//! implements directly. Tests return the faults they detect, so fault
//! injection (in tests or via a wrapper) can validate coverage.

use crate::array::MemoryArray;
use crate::error::Result;

/// A word-addressable RAM view the tests can drive. [`MemoryArray`]
/// implements it; test harnesses wrap it to inject faults.
pub trait RamAccess {
    /// Number of addressable words.
    fn words(&self) -> u64;
    /// Reads the word at `address`.
    ///
    /// # Errors
    ///
    /// Implementations return an error for out-of-range addresses.
    fn read(&mut self, address: u64) -> Result<u64>;
    /// Writes the word at `address`.
    ///
    /// # Errors
    ///
    /// Implementations return an error for out-of-range addresses.
    fn write(&mut self, address: u64, value: u64) -> Result<()>;
}

impl RamAccess for MemoryArray {
    fn words(&self) -> u64 {
        self.total_words()
    }

    fn read(&mut self, address: u64) -> Result<u64> {
        self.read_word(address)
    }

    fn write(&mut self, address: u64, value: u64) -> Result<()> {
        self.write_word(address, value)
    }
}

/// A fault detected by a memory test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFault {
    /// Word address of the mismatch.
    pub address: u64,
    /// The value written.
    pub expected: u64,
    /// The value read back.
    pub observed: u64,
}

/// Report of one memory-test run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTestReport {
    /// Test name.
    pub test: &'static str,
    /// Words covered.
    pub words: u64,
    /// Faults detected (empty = pass). Capped at 64 entries.
    pub faults: Vec<MemoryFault>,
}

impl MemTestReport {
    /// Whether the array passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.faults.is_empty()
    }
}

const FAULT_CAP: usize = 64;

fn record_fault(report: &mut MemTestReport, address: u64, expected: u64, observed: u64) {
    if report.faults.len() < FAULT_CAP {
        report.faults.push(MemoryFault {
            address,
            expected,
            observed,
        });
    }
}

/// Walking-ones: for each word, walk a single set bit through all 64
/// positions, verifying each step. Detects stuck-at-0 cells and many
/// coupling faults within a word.
///
/// # Errors
///
/// Propagates RAM-access errors (which indicate harness bugs, not faults).
pub fn walking_ones(ram: &mut dyn RamAccess) -> Result<MemTestReport> {
    let mut report = MemTestReport {
        test: "walking-ones",
        words: ram.words(),
        faults: Vec::new(),
    };
    for addr in 0..ram.words() {
        for bit in 0..64u32 {
            let pattern = 1u64 << bit;
            ram.write(addr, pattern)?;
            let got = ram.read(addr)?;
            if got != pattern {
                record_fault(&mut report, addr, pattern, got);
                break; // one fault per word is enough detail
            }
        }
    }
    Ok(report)
}

/// Checkerboard: alternating 0xAA…/0x55… by address parity, two passes
/// with the phases swapped. Detects inter-cell shorts and stuck bits.
///
/// # Errors
///
/// Propagates RAM-access errors.
pub fn checkerboard(ram: &mut dyn RamAccess) -> Result<MemTestReport> {
    let mut report = MemTestReport {
        test: "checkerboard",
        words: ram.words(),
        faults: Vec::new(),
    };
    for phase in 0..2u64 {
        let val = |addr: u64| -> u64 {
            if (addr + phase).is_multiple_of(2) {
                0xAAAA_AAAA_AAAA_AAAA
            } else {
                0x5555_5555_5555_5555
            }
        };
        for addr in 0..ram.words() {
            ram.write(addr, val(addr))?;
        }
        for addr in 0..ram.words() {
            let got = ram.read(addr)?;
            if got != val(addr) {
                record_fault(&mut report, addr, val(addr), got);
            }
        }
    }
    Ok(report)
}

/// Address-in-address: writes each word's own address (mixed to cover the
/// high bits), then verifies. Detects address-decoder faults — two
/// addresses selecting one cell read back the same value.
///
/// # Errors
///
/// Propagates RAM-access errors.
pub fn address_in_address(ram: &mut dyn RamAccess) -> Result<MemTestReport> {
    let mut report = MemTestReport {
        test: "address-in-address",
        words: ram.words(),
        faults: Vec::new(),
    };
    let mix = |addr: u64| addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ addr;
    for addr in 0..ram.words() {
        ram.write(addr, mix(addr))?;
    }
    for addr in 0..ram.words() {
        let got = ram.read(addr)?;
        if got != mix(addr) {
            record_fault(&mut report, addr, mix(addr), got);
        }
    }
    Ok(report)
}

/// March C- (word-granular): ⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0);
/// ⇑(r0). Detects stuck-at, transition, and unlinked coupling faults.
///
/// # Errors
///
/// Propagates RAM-access errors.
#[allow(clippy::many_single_char_names)]
pub fn march_c(ram: &mut dyn RamAccess) -> Result<MemTestReport> {
    let mut report = MemTestReport {
        test: "march-c-",
        words: ram.words(),
        faults: Vec::new(),
    };
    let n = ram.words();
    let zero = 0u64;
    let one = u64::MAX;
    // ⇑(w0)
    for a in 0..n {
        ram.write(a, zero)?;
    }
    // ⇑(r0, w1)
    for a in 0..n {
        let got = ram.read(a)?;
        if got != zero {
            record_fault(&mut report, a, zero, got);
        }
        ram.write(a, one)?;
    }
    // ⇑(r1, w0)
    for a in 0..n {
        let got = ram.read(a)?;
        if got != one {
            record_fault(&mut report, a, one, got);
        }
        ram.write(a, zero)?;
    }
    // ⇓(r0, w1)
    for a in (0..n).rev() {
        let got = ram.read(a)?;
        if got != zero {
            record_fault(&mut report, a, zero, got);
        }
        ram.write(a, one)?;
    }
    // ⇓(r1, w0)
    for a in (0..n).rev() {
        let got = ram.read(a)?;
        if got != one {
            record_fault(&mut report, a, one, got);
        }
        ram.write(a, zero)?;
    }
    // ⇑(r0)
    for a in 0..n {
        let got = ram.read(a)?;
        if got != zero {
            record_fault(&mut report, a, zero, got);
        }
    }
    Ok(report)
}

/// Runs the full battery in order, stopping early only on harness errors.
///
/// # Errors
///
/// Propagates RAM-access errors.
pub fn full_battery(ram: &mut dyn RamAccess) -> Result<Vec<MemTestReport>> {
    Ok(vec![
        walking_ones(ram)?,
        checkerboard(ram)?,
        address_in_address(ram)?,
        march_c(ram)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CaRamError;

    /// A RAM wrapper injecting classic fault models.
    struct FaultyRam {
        inner: MemoryArray,
        stuck_at_zero: Option<(u64, u32)>, // (address, bit)
        aliased: Option<(u64, u64)>,       // address b decodes to address a
    }

    impl FaultyRam {
        fn clean(words_rows: u64) -> Self {
            Self {
                inner: MemoryArray::new(words_rows, 64),
                stuck_at_zero: None,
                aliased: None,
            }
        }

        fn resolve(&self, address: u64) -> u64 {
            match self.aliased {
                Some((target, alias)) if address == alias => target,
                _ => address,
            }
        }
    }

    impl RamAccess for FaultyRam {
        fn words(&self) -> u64 {
            self.inner.total_words()
        }

        fn read(&mut self, address: u64) -> crate::error::Result<u64> {
            let physical = self.resolve(address);
            let mut v = self.inner.read_word(physical)?;
            if let Some((a, bit)) = self.stuck_at_zero {
                if physical == a {
                    v &= !(1u64 << bit);
                }
            }
            Ok(v)
        }

        fn write(&mut self, address: u64, value: u64) -> crate::error::Result<()> {
            let physical = self.resolve(address);
            self.inner.write_word(physical, value)
        }
    }

    #[test]
    fn clean_array_passes_the_battery() {
        let mut ram = MemoryArray::new(32, 128);
        for report in full_battery(&mut ram).unwrap() {
            assert!(
                report.passed(),
                "{} failed: {:?}",
                report.test,
                report.faults
            );
            assert_eq!(report.words, 64);
        }
    }

    #[test]
    fn stuck_at_zero_bit_is_caught_by_every_test() {
        for test in [walking_ones, checkerboard, address_in_address, march_c] {
            let mut ram = FaultyRam::clean(16);
            ram.stuck_at_zero = Some((7, 33));
            let report = test(&mut ram).unwrap();
            assert!(!report.passed(), "{} missed the stuck bit", report.test);
            assert!(report.faults.iter().any(|f| f.address == 7));
        }
    }

    #[test]
    fn address_aliasing_is_caught_by_address_test() {
        let mut ram = FaultyRam::clean(16);
        ram.aliased = Some((3, 11)); // address 11 decodes onto address 3
        let report = address_in_address(&mut ram).unwrap();
        assert!(!report.passed());
        // The fault surfaces at the aliased pair.
        assert!(report
            .faults
            .iter()
            .any(|f| f.address == 3 || f.address == 11));
        // A pure data-pattern test with identical patterns at both cells
        // can miss aliasing; March C- catches it through its ordered
        // read-write sequence.
        let mut ram = FaultyRam::clean(16);
        ram.aliased = Some((3, 11));
        let march = march_c(&mut ram).unwrap();
        assert!(!march.passed(), "March C- must catch decoder aliasing");
    }

    #[test]
    fn fault_reports_include_observed_values() {
        let mut ram = FaultyRam::clean(8);
        ram.stuck_at_zero = Some((2, 0));
        let report = march_c(&mut ram).unwrap();
        let fault = report.faults.iter().find(|f| f.address == 2).unwrap();
        assert_eq!(fault.expected & 1, 1);
        assert_eq!(fault.observed & 1, 0);
    }

    #[test]
    fn fault_list_is_capped() {
        // Every word faulty: the report must not balloon.
        struct AllBroken;
        impl RamAccess for AllBroken {
            fn words(&self) -> u64 {
                1_000
            }
            fn read(&mut self, _a: u64) -> crate::error::Result<u64> {
                Ok(0xDEAD)
            }
            fn write(&mut self, _a: u64, _v: u64) -> crate::error::Result<()> {
                Ok(())
            }
        }
        let report = march_c(&mut AllBroken).unwrap();
        assert!(!report.passed());
        assert!(report.faults.len() <= 64);
    }

    #[test]
    fn errors_propagate() {
        struct Tiny;
        impl RamAccess for Tiny {
            fn words(&self) -> u64 {
                4
            }
            fn read(&mut self, a: u64) -> crate::error::Result<u64> {
                Err(CaRamError::AddressOutOfRange {
                    address: a,
                    words: 4,
                })
            }
            fn write(&mut self, _a: u64, _v: u64) -> crate::error::Result<()> {
                Ok(())
            }
        }
        assert!(walking_ones(&mut Tiny).is_err());
    }
}
