//! # ca-ram
//!
//! A comprehensive reproduction of *CA-RAM: A High-Performance Memory
//! Substrate for Search-Intensive Applications* (Cho, Martin, Xu, Hammoud &
//! Melhem, ISPASS 2007): a bit-accurate functional simulator of the CA-RAM
//! substrate, its hardware cost models, CAM/TCAM baselines, the paper's two
//! application studies, and the harness regenerating every table and figure
//! of the evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] (`ca-ram-core`) — slices, index generators, match processors,
//!   tables, the multi-database subsystem;
//! * [`hwmodel`] (`ca-ram-hwmodel`) — area / power / timing / synthesis
//!   models anchored to the published 130 nm datapoints;
//! * [`cam`] (`ca-ram-cam`) — TCAM, binary CAM, sorted update, banked TCAM;
//! * [`workloads`] (`ca-ram-workloads`) — synthetic BGP tables, trigram
//!   databases, traffic models, Zane bit selection;
//! * [`softsearch`] (`ca-ram-softsearch`) — software search baselines over
//!   a simulated cache hierarchy;
//! * [`service`] (`ca-ram-service`) — the sharded concurrent serving layer:
//!   request router, bounded queues with admission control, load shedding,
//!   and open/closed-loop load generators.
//!
//! # Quick start
//!
//! ```
//! use ca_ram::core::index::RangeSelect;
//! use ca_ram::core::key::{SearchKey, TernaryKey};
//! use ca_ram::core::layout::{Record, RecordLayout};
//! use ca_ram::core::table::{CaRamTable, TableConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layout = RecordLayout::new(32, false, 16);
//! let config = TableConfig::single_slice(8, 8 * layout.slot_bits(), layout);
//! let mut table = CaRamTable::new(config, Box::new(RangeSelect::new(0, 8)))?;
//! table.insert(Record::new(TernaryKey::binary(0xC0FFEE, 32), 7))?;
//! assert!(table.search(&SearchKey::new(0xC0FFEE, 32)).hit.is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use ca_ram_cam as cam;
pub use ca_ram_core as core;
pub use ca_ram_hwmodel as hwmodel;
pub use ca_ram_service as service;
pub use ca_ram_softsearch as softsearch;
pub use ca_ram_workloads as workloads;
