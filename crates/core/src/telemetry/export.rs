//! Machine-readable exports of a [`MetricsRegistry`]: schema-versioned
//! JSON and Prometheus text exposition format.
//!
//! The repo carries no serialisation dependency, so both emitters are
//! hand-rolled (the same approach the bench driver takes for its
//! `SearchReport`). Histograms are exported *cumulatively* in both
//! formats — each bucket's count includes every smaller bucket, matching
//! Prometheus `le` semantics — which makes "bucket counts are monotonic
//! non-decreasing" a checkable invariant of any well-formed export.
//! [`validate_json`] enforces that invariant plus schema/field presence
//! with a minimal recursive-descent JSON parser, so CI can gate on the
//! artifact without external tooling.

use core::fmt::Write as _;

use super::histogram::Histogram;
use super::registry::MetricsRegistry;

/// Schema identifier stamped into every JSON export.
pub const SCHEMA: &str = "ca-ram-telemetry/v1";

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Infinity; clamp to null which the validator rejects,
    // making non-finite gauges a loud failure instead of a silent one.
    if v.is_finite() {
        let rendered = format!("{v}");
        let plain_integer = v.fract() == 0.0
            && v.abs() < 1e15
            && !rendered.contains('.')
            && !rendered.contains('e');
        out.push_str(&rendered);
        if plain_integer {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn push_histogram_json(out: &mut String, h: &Histogram, indent: &str) {
    out.push_str("{\n");
    out.push_str(indent);
    let _ = writeln!(out, "  \"count\": {},", h.count());
    out.push_str(indent);
    let _ = writeln!(out, "  \"sum\": {},", h.sum());
    out.push_str(indent);
    out.push_str("  \"mean\": ");
    push_f64(out, h.mean());
    out.push_str(",\n");
    out.push_str(indent);
    let _ = writeln!(out, "  \"p99_le\": {},", h.quantile(0.99));
    out.push_str(indent);
    out.push_str("  \"buckets\": [");
    let mut cumulative = 0u64;
    let mut first = true;
    for (_, high, count) in h.series() {
        cumulative += count;
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{{\"le\": {high}, \"count\": {cumulative}}}");
    }
    out.push_str("]\n");
    out.push_str(indent);
    out.push('}');
}

/// Renders the registry as schema-versioned JSON (`BENCH_telemetry.json`).
#[must_use]
pub fn to_json(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": ");
    push_json_string(&mut out, SCHEMA);
    out.push_str(",\n  \"scopes\": [\n");
    for (i, scope) in registry.scopes().iter().enumerate() {
        out.push_str("    {\n      \"kind\": ");
        push_json_string(&mut out, scope.kind.name());
        out.push_str(",\n      \"name\": ");
        push_json_string(&mut out, &scope.name);
        out.push_str(",\n      \"counters\": {");
        for (j, (name, value)) in scope.counters.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str("},\n      \"gauges\": {");
        for (j, (name, value)) in scope.gauges.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_f64(&mut out, *value);
        }
        out.push_str("},\n      \"histograms\": {");
        for (j, (name, hist)) in scope.histograms.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('\n');
            out.push_str("        ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_histogram_json(&mut out, hist, "        ");
        }
        if !scope.histograms.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("}\n    }");
        if i + 1 < registry.scopes().len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn prom_sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders the registry in Prometheus text exposition format.
///
/// Metric names are `caram_<metric>`, labelled `{kind="...", scope="..."}`.
/// Histograms follow the standard `_bucket`/`_sum`/`_count` convention with
/// cumulative `le` buckets and a final `+Inf` bucket.
#[must_use]
pub fn to_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for scope in registry.scopes() {
        let labels = format!(
            "kind=\"{}\",scope=\"{}\"",
            scope.kind.name(),
            prom_sanitize(&scope.name)
        );
        for (name, value) in &scope.counters {
            let metric = format!("caram_{}", prom_sanitize(name));
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric}{{{labels}}} {value}");
        }
        for (name, value) in &scope.gauges {
            let metric = format!("caram_{}", prom_sanitize(name));
            let _ = writeln!(out, "# TYPE {metric} gauge");
            if value.is_finite() {
                let _ = writeln!(out, "{metric}{{{labels}}} {value}");
            } else {
                let _ = writeln!(out, "{metric}{{{labels}}} NaN");
            }
        }
        for (name, hist) in &scope.histograms {
            let metric = format!("caram_{}", prom_sanitize(name));
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cumulative = 0u64;
            for (_, high, count) in hist.series() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{{labels},le=\"{high}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "{metric}_bucket{{{labels},le=\"+Inf\"}} {}",
                hist.count()
            );
            let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", hist.sum());
            let _ = writeln!(out, "{metric}_count{{{labels}}} {}", hist.count());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser for validation.
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough structure to validate exports.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup for objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("JSON parse error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = core::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = core::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a positioned message on malformed input.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after document"));
    }
    Ok(value)
}

fn validate_histogram(scope: &str, name: &str, hist: &JsonValue) -> Result<(), String> {
    for field in ["count", "sum", "mean", "p99_le", "buckets"] {
        if hist.get(field).is_none() {
            return Err(format!(
                "scope '{scope}' histogram '{name}': missing field '{field}'"
            ));
        }
    }
    let count = hist
        .get("count")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("scope '{scope}' histogram '{name}': 'count' not a number"))?;
    let buckets = hist
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("scope '{scope}' histogram '{name}': 'buckets' not an array"))?;
    let mut prev_count = 0.0f64;
    let mut prev_le = -1.0f64;
    for (i, bucket) in buckets.iter().enumerate() {
        let le = bucket
            .get("le")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("scope '{scope}' histogram '{name}': bucket {i} lacks 'le'"))?;
        let c = bucket
            .get("count")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| {
                format!("scope '{scope}' histogram '{name}': bucket {i} lacks 'count'")
            })?;
        if le <= prev_le {
            return Err(format!(
                "scope '{scope}' histogram '{name}': bucket {i} 'le' not increasing"
            ));
        }
        if c < prev_count {
            return Err(format!(
                "scope '{scope}' histogram '{name}': bucket {i} cumulative count decreased \
                 ({c} < {prev_count})"
            ));
        }
        prev_le = le;
        prev_count = c;
    }
    if prev_count > count {
        return Err(format!(
            "scope '{scope}' histogram '{name}': bucket counts exceed total count"
        ));
    }
    Ok(())
}

/// Validates a `BENCH_telemetry.json` document: schema identifier, field
/// presence, a `kind` from the closed [`ScopeKind`](super::ScopeKind)
/// vocabulary (an unknown kind is a schema error, not a skip — new scope
/// kinds must be registered before they export), non-negative counters,
/// and cumulative (monotonic non-decreasing) histogram buckets. Returns
/// the number of scopes validated.
///
/// # Errors
///
/// Returns a descriptive message on the first violation.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing 'schema' field".to_string())?;
    if schema != SCHEMA {
        return Err(format!("schema mismatch: got '{schema}', want '{SCHEMA}'"));
    }
    let scopes = doc
        .get("scopes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing 'scopes' array".to_string())?;
    for (i, scope) in scopes.iter().enumerate() {
        let name = scope
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("scope {i}: missing 'name'"))?;
        let kind = scope
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("scope '{name}': missing 'kind'"))?;
        if super::registry::ScopeKind::from_name(kind).is_none() {
            return Err(format!(
                "scope '{name}': unknown scope kind '{kind}' (known: {})",
                super::registry::ScopeKind::ALL
                    .map(super::registry::ScopeKind::name)
                    .join(", ")
            ));
        }
        let counters = scope
            .get("counters")
            .ok_or_else(|| format!("scope '{name}': missing 'counters'"))?;
        if let JsonValue::Object(members) = counters {
            for (counter_name, value) in members {
                let v = value.as_f64().ok_or_else(|| {
                    format!("scope '{name}' counter '{counter_name}': not a number")
                })?;
                if v < 0.0 {
                    return Err(format!(
                        "scope '{name}' counter '{counter_name}': negative value {v}"
                    ));
                }
            }
        } else {
            return Err(format!("scope '{name}': 'counters' not an object"));
        }
        scope
            .get("gauges")
            .ok_or_else(|| format!("scope '{name}': missing 'gauges'"))?;
        let histograms = scope
            .get("histograms")
            .ok_or_else(|| format!("scope '{name}': missing 'histograms'"))?;
        if let JsonValue::Object(members) = histograms {
            for (hist_name, hist) in members {
                validate_histogram(name, hist_name, hist)?;
            }
        } else {
            return Err(format!("scope '{name}': 'histograms' not an object"));
        }
    }
    Ok(scopes.len())
}

/// One parsed Prometheus exposition line: `name{labels} value`.
struct PromLine<'a> {
    name: &'a str,
    labels: &'a str,
    value: f64,
}

fn parse_prom_line(line: &str) -> Result<PromLine<'_>, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("malformed line (no value): {line:?}"))?;
    let value = if value == "NaN" {
        f64::NAN
    } else {
        value
            .parse::<f64>()
            .map_err(|_| format!("unparsable value in line: {line:?}"))?
    };
    let (name, labels) = match name_labels.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set: {line:?}"))?;
            (name, labels)
        }
        None => (name_labels, ""),
    };
    Ok(PromLine {
        name,
        labels,
        value,
    })
}

/// Splits a `_bucket` label set into (base labels, le value).
fn split_le(labels: &str) -> Result<(String, &str), String> {
    let mut base: Vec<&str> = Vec::new();
    let mut le = None;
    for part in labels.split(',') {
        if let Some(raw) = part.strip_prefix("le=\"") {
            le = Some(
                raw.strip_suffix('"')
                    .ok_or_else(|| format!("malformed le label in {labels:?}"))?,
            );
        } else {
            base.push(part);
        }
    }
    let le = le.ok_or_else(|| format!("bucket line lacks an le label: {labels:?}"))?;
    Ok((base.join(","), le))
}

#[derive(Default)]
struct PromHistogram {
    buckets: Vec<(f64, f64)>, // (le, cumulative count), +Inf as f64::INFINITY
    sum: Option<f64>,
    count: Option<f64>,
}

/// Parser-side round-trip check of a Prometheus text export
/// (`BENCH_telemetry.prom`): every histogram series must have strictly
/// increasing `le` buckets with monotone non-decreasing cumulative
/// counts, a final `+Inf` bucket, and `_count`/`_sum` samples whose
/// `_count` equals the `+Inf` bucket. Counter and gauge samples must
/// parse as numbers. Returns the number of histogram series validated.
///
/// # Errors
///
/// Returns a descriptive message on the first malformed line or
/// histogram invariant violation.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    // (metric name, base labels) -> accumulated histogram parts, in
    // first-seen order so errors name the earliest offender.
    type PromSeries = Vec<((String, String), PromHistogram)>;
    fn entry(series: &mut PromSeries, key: (String, String)) -> &mut PromHistogram {
        if let Some(i) = series.iter().position(|(k, _)| *k == key) {
            return &mut series[i].1;
        }
        series.push((key, PromHistogram::default()));
        &mut series.last_mut().expect("just pushed").1
    }
    let mut series: PromSeries = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = parse_prom_line(line)?;
        if let Some(metric) = parsed.name.strip_suffix("_bucket") {
            let (base, le) = split_le(parsed.labels)?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("unparsable le {le:?} in line: {line:?}"))?
            };
            entry(&mut series, (metric.to_string(), base))
                .buckets
                .push((le, parsed.value));
        } else if let Some(metric) = parsed.name.strip_suffix("_sum") {
            entry(&mut series, (metric.to_string(), parsed.labels.to_string())).sum =
                Some(parsed.value);
        } else if let Some(metric) = parsed.name.strip_suffix("_count") {
            entry(&mut series, (metric.to_string(), parsed.labels.to_string())).count =
                Some(parsed.value);
        }
    }
    for ((metric, labels), hist) in &series {
        let what = format!("histogram '{metric}' {{{labels}}}");
        // A series with only _sum/_count is a counter that happens to end
        // in the suffix — only bucketed series are histograms.
        if hist.buckets.is_empty() {
            continue;
        }
        let count = hist
            .count
            .ok_or_else(|| format!("{what}: missing _count sample"))?;
        if hist.sum.is_none() {
            return Err(format!("{what}: missing _sum sample"));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = 0.0f64;
        for &(le, c) in &hist.buckets {
            if le <= prev_le {
                return Err(format!("{what}: le {le} not increasing"));
            }
            if c < prev_count {
                return Err(format!(
                    "{what}: cumulative count decreased at le {le} ({c} < {prev_count})"
                ));
            }
            prev_le = le;
            prev_count = c;
        }
        let (last_le, last_count) = *hist.buckets.last().unwrap_or(&(0.0, 0.0));
        if last_le != f64::INFINITY {
            return Err(format!("{what}: missing +Inf bucket"));
        }
        if (last_count - count).abs() > f64::EPSILON {
            return Err(format!(
                "{what}: +Inf bucket {last_count} does not match _count {count}"
            ));
        }
    }
    Ok(series.iter().filter(|(_, h)| !h.buckets.is_empty()).count())
}

#[cfg(test)]
mod tests {
    use super::super::registry::ScopeKind;
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let scope = reg.scope_mut(ScopeKind::Engine, "design-a");
        scope.set_counter("searches", 100);
        scope.set_counter("hits", 90);
        scope.set_gauge("hit_rate", 0.9);
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 5, 9] {
            h.record(v);
        }
        scope.set_histogram("probe_length", h);
        reg.scope_mut(ScopeKind::Slice, "0").set_counter("rows", 64);
        reg
    }

    #[test]
    fn json_round_trips_through_validator() {
        let json = to_json(&sample_registry());
        assert_eq!(validate_json(&json), Ok(2));
        let doc = parse_json(&json).unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        let scopes = doc.get("scopes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            scopes[0].get("name").and_then(JsonValue::as_str),
            Some("design-a")
        );
        let counters = scopes[0].get("counters").unwrap();
        assert_eq!(
            counters.get("searches").and_then(JsonValue::as_f64),
            Some(100.0)
        );
    }

    #[test]
    fn json_buckets_are_cumulative() {
        let json = to_json(&sample_registry());
        let doc = parse_json(&json).unwrap();
        let hist = doc.get("scopes").and_then(JsonValue::as_array).unwrap()[0]
            .get("histograms")
            .and_then(|h| h.get("probe_length"))
            .unwrap();
        let buckets = hist.get("buckets").and_then(JsonValue::as_array).unwrap();
        let counts: Vec<f64> = buckets
            .iter()
            .map(|b| b.get("count").and_then(JsonValue::as_f64).unwrap())
            .collect();
        // values 0,1,1,2,5,9 -> buckets le=0:1, le=1:3, le=3:4, le=7:5, le=15:6
        assert_eq!(counts, vec![1.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{}").unwrap_err().contains("schema"));
        assert!(validate_json("{\"schema\": \"other/v9\", \"scopes\": []}")
            .unwrap_err()
            .contains("mismatch"));
        let missing_counters = format!(
            "{{\"schema\": \"{SCHEMA}\", \"scopes\": [{{\"kind\": \"engine\", \"name\": \"x\"}}]}}"
        );
        assert!(validate_json(&missing_counters)
            .unwrap_err()
            .contains("counters"));
        let decreasing = format!(
            "{{\"schema\": \"{SCHEMA}\", \"scopes\": [{{\"kind\": \"engine\", \"name\": \"x\", \
             \"counters\": {{}}, \"gauges\": {{}}, \"histograms\": {{\"h\": {{\"count\": 5, \
             \"sum\": 5, \"mean\": 1.0, \"p99_le\": 1, \"buckets\": [{{\"le\": 1, \"count\": \
             4}}, {{\"le\": 3, \"count\": 2}}]}}}}}}]}}"
        );
        assert!(validate_json(&decreasing)
            .unwrap_err()
            .contains("decreased"));
    }

    #[test]
    fn prometheus_has_types_sums_and_inf_bucket() {
        let prom = to_prometheus(&sample_registry());
        assert!(prom.contains("# TYPE caram_searches counter"));
        assert!(prom.contains("caram_searches{kind=\"engine\",scope=\"design_a\"} 100"));
        assert!(prom.contains("# TYPE caram_probe_length histogram"));
        assert!(prom.contains(
            "caram_probe_length_bucket{kind=\"engine\",scope=\"design_a\",le=\"+Inf\"} 6"
        ));
        assert!(prom.contains("caram_probe_length_sum{kind=\"engine\",scope=\"design_a\"} 18"));
        assert!(prom.contains("caram_probe_length_count{kind=\"engine\",scope=\"design_a\"} 6"));
        assert!(prom.contains("caram_rows{kind=\"slice\",scope=\"0\"} 64"));
    }

    #[test]
    fn validator_rejects_unknown_scope_kinds() {
        let unknown = format!(
            "{{\"schema\": \"{SCHEMA}\", \"scopes\": [{{\"kind\": \"widget\", \"name\": \"x\", \
             \"counters\": {{}}, \"gauges\": {{}}, \"histograms\": {{}}}}]}}"
        );
        let err = validate_json(&unknown).unwrap_err();
        assert!(err.contains("unknown scope kind 'widget'"), "{err}");
        assert!(err.contains("slo"), "error names the vocabulary: {err}");
        for kind in ScopeKind::ALL {
            let ok = format!(
                "{{\"schema\": \"{SCHEMA}\", \"scopes\": [{{\"kind\": \"{}\", \"name\": \"x\", \
                 \"counters\": {{}}, \"gauges\": {{}}, \"histograms\": {{}}}}]}}",
                kind.name()
            );
            assert_eq!(validate_json(&ok), Ok(1), "kind {}", kind.name());
        }
    }

    #[test]
    fn prometheus_round_trips_through_validator() {
        let prom = to_prometheus(&sample_registry());
        // One histogram (probe_length) in the sample registry.
        assert_eq!(validate_prometheus(&prom), Ok(1));
    }

    #[test]
    fn prometheus_validator_rejects_broken_histograms() {
        let base = "kind=\"engine\",scope=\"e\"";
        let ok = format!(
            "caram_h_bucket{{{base},le=\"1\"}} 2\ncaram_h_bucket{{{base},le=\"+Inf\"}} 3\n\
             caram_h_sum{{{base}}} 5\ncaram_h_count{{{base}}} 3\n"
        );
        assert_eq!(validate_prometheus(&ok), Ok(1));

        let decreasing = ok.replace("le=\"1\"} 2", "le=\"1\"} 9");
        assert!(validate_prometheus(&decreasing)
            .unwrap_err()
            .contains("decreased"));

        let no_inf = format!(
            "caram_h_bucket{{{base},le=\"1\"}} 2\ncaram_h_sum{{{base}}} 5\n\
             caram_h_count{{{base}}} 3\n"
        );
        assert!(validate_prometheus(&no_inf).unwrap_err().contains("+Inf"));

        let count_mismatch = ok.replace(
            "caram_h_count{kind=\"engine\",scope=\"e\"} 3",
            "caram_h_count{kind=\"engine\",scope=\"e\"} 7",
        );
        assert!(validate_prometheus(&count_mismatch)
            .unwrap_err()
            .contains("does not match _count"));

        let no_sum = format!("caram_h_bucket{{{base},le=\"+Inf\"}} 3\ncaram_h_count{{{base}}} 3\n");
        assert!(validate_prometheus(&no_sum).unwrap_err().contains("_sum"));

        assert!(validate_prometheus("caram_x nonsense\n").is_err());
        // Counters whose names end in _count are not histograms.
        assert_eq!(
            validate_prometheus("caram_window_count{kind=\"slo\",scope=\"s\"} 9\n"),
            Ok(0)
        );
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json("{\"a\\n\": [1, -2.5, true, false, null, \"\\u0041\"]}").unwrap();
        let arr = doc.get("a\n").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2], JsonValue::Bool(true));
        assert_eq!(arr[3], JsonValue::Bool(false));
        assert_eq!(arr[4], JsonValue::Null);
        assert_eq!(arr[5].as_str(), Some("A"));
        assert!(parse_json("[1] trailing").is_err());
    }
}
