//! Integration tests pinning the paper's quantitative claims to the models
//! and simulators in this workspace (the bands of Tables 1–3 and Figs. 6–8).

use ca_ram::core::controller::{simulate, QueueModelConfig};
use ca_ram::hwmodel::synth::MatchProcessorParams;
use ca_ram::hwmodel::{
    AreaModel, CaRamGeometry, CamGeometry, CellKind, Megahertz, PowerModel, SynthesisModel,
};

#[test]
fn table1_totals() {
    let report = SynthesisModel::new().synthesize(&MatchProcessorParams::prototype());
    assert_eq!(report.total_cells(), 15_992);
    assert!((report.total_area().value() - 100_564.0).abs() < 1_000.0);
    assert!((report.critical_path().value() - 4.85).abs() < 0.05);
    assert!(
        report.max_clock().value() > 200.0,
        "over 200 MHz single-cycle"
    );
}

#[test]
fn figure6_area_and_power_ratios() {
    let area = AreaModel::new();
    let caram_cell = area.caram_cell_area(CellKind::EmbeddedDram, true);
    assert!(
        area.cam_cell_area(CellKind::TcamSram16T)
            .ratio_to(caram_cell)
            > 12.0
    );
    let r6 = area
        .cam_cell_area(CellKind::TcamDynamic6T)
        .ratio_to(caram_cell);
    assert!((4.5..5.1).contains(&r6), "6T ratio {r6:.2} (paper: 4.8x)");

    let power = PowerModel::new();
    let caram = CaRamGeometry::new(16, 256, 512, CellKind::EmbeddedDram, 8);
    let p_caram = power.caram_search_power(&caram, Megahertz::new(200.0));
    let p16 = power.cam_search_power(
        &CamGeometry::new(16_384, 64, CellKind::TcamSram16T),
        Megahertz::new(143.0),
    );
    let p6 = power.cam_search_power(
        &CamGeometry::new(16_384, 64, CellKind::TcamDynamic6T),
        Megahertz::new(143.0),
    );
    assert!(p16.value() / p_caram.value() > 26.0, "paper: >26x");
    assert!(p6.value() / p_caram.value() > 7.0, "paper: >7x");
}

#[test]
fn figure8_application_level_savings() {
    let area = AreaModel::new();
    let power = PowerModel::new();

    // IP lookup: 6T TCAM vs design D.
    let tcam = CamGeometry::new(186_760, 32, CellKind::TcamDynamic6T);
    let caram = CaRamGeometry::new(2, 4096, 4096, CellKind::EmbeddedDram, 64);
    let area_saving =
        1.0 - area.caram_device_area(&caram).value() / area.cam_device_area(&tcam).value();
    assert!(
        (0.30..0.55).contains(&area_saving),
        "area saving {area_saving:.2} (paper: 45%)"
    );
    let p_caram = power
        .caram_search_energy_parallel(&caram, 2)
        .total()
        .at_rate(Megahertz::new(200.0));
    let p_tcam = power.cam_search_power(&tcam, Megahertz::new(143.0));
    let power_saving = 1.0 - p_caram.value() / p_tcam.value();
    assert!(
        (0.50..0.85).contains(&power_saving),
        "power saving {power_saving:.2} (paper: 70%)"
    );

    // Trigram: stacked-capacitor CAM vs design A.
    let cam = CamGeometry::new(5_385_231, 128, CellKind::BinaryCamStacked);
    let caram = CaRamGeometry::new(4, 16_384, 12_288, CellKind::EmbeddedDram, 96);
    let reduction = area.cam_device_area(&cam).value() / area.caram_device_area(&caram).value();
    assert!(
        (5.0..7.0).contains(&reduction),
        "area reduction {reduction:.1}x (paper: 5.9x)"
    );
}

#[test]
fn section34_bandwidth_formula_validated_by_simulation() {
    // B = Nslice/nmem x fclk, within 10% under uniform traffic.
    for slices in [2u32, 8] {
        let config = QueueModelConfig {
            slices,
            nmem: 6,
            queue_depth: 64,
            accepts_per_cycle: 8,
            head_of_line: false,
        };
        let trace: Vec<u32> = (0..30_000u32).map(|i| i % slices).collect();
        let report = simulate(config, trace).expect("valid config");
        let formula = f64::from(slices) / 6.0;
        let achieved = report.searches_per_cycle();
        assert!(
            (achieved - formula).abs() / formula < 0.10,
            "{slices} slices: {achieved:.3} vs {formula:.3}"
        );
    }
}

mod table_bands {
    use ca_ram::core::key::SearchKey;
    use ca_ram::workloads::bgp::{generate as gen_bgp, BgpConfig};
    use ca_ram::workloads::trigram::{generate as gen_tri, pack_text_key, TrigramConfig};
    use ca_ram_bench::designs::{
        build_ip_table, build_trigram_table, ip_designs, load_prefixes, load_trigrams,
        trigram_designs,
    };

    #[test]
    fn table2_orderings_hold_at_reduced_scale() {
        // At ~1/4 scale with proportionally smaller tables the absolute
        // percentages move, but every ordering the paper draws conclusions
        // from must hold. We use the full designs with the full table here
        // (fast: ~200k inserts per design).
        let prefixes = gen_bgp(&BgpConfig::as1103_like());
        let weights = vec![1.0; prefixes.len()];
        let mut amal = Vec::new();
        let mut overflow = Vec::new();
        for d in ip_designs() {
            let mut t = build_ip_table(&d);
            load_prefixes(&mut t, &prefixes, &weights);
            let r = t.load_report();
            amal.push(r.amal_uniform);
            overflow.push(r.overflowing_buckets_pct());
        }
        let (a, b, c, d, e, f) = (amal[0], amal[1], amal[2], amal[3], amal[4], amal[5]);
        // "with the same hash function, investing more area results in
        // lower AMAL": A > B > C and D > E.
        assert!(a > b && b > c, "A {a:.3} B {b:.3} C {c:.3}");
        assert!(d > e, "D {d:.3} E {e:.3}");
        // "for the same area, the design with the hash function that
        // distributes the data more evenly wins": F >> D.
        assert!(f > 1.3 * d, "F {f:.3} vs D {d:.3}");
        // "Design E, with the lowest load factor, achieves the best AMAL".
        // C and E are within noise of each other in the paper too
        // (1.093 vs 1.072); require E to beat everything except possibly C.
        assert!(
            e < a && e < b && e < d && e < f,
            "E {e:.3} not among the best"
        );
        // Paper bands (loose): A in 1.2..1.8, F in 1.6..2.6.
        assert!((1.2..1.8).contains(&a), "A AMAL {a:.3} (paper 1.476)");
        assert!((1.6..2.6).contains(&f), "F AMAL {f:.3} (paper 1.990)");
        // Overflowing-bucket orderings.
        assert!(overflow[0] > overflow[1] && overflow[1] > overflow[2]);
        assert!(overflow[5] > overflow[3] && overflow[3] > overflow[4]);
    }

    #[test]
    fn table3_design_a_poisson_band_at_reduced_scale() {
        // Scale entries and slice rows together so alpha stays at 0.86;
        // the binomial/Poisson bucket-load statistics are scale-free, so
        // the paper's design A percentages must appear at 1/16 scale.
        let entries = 5_385_231 / 16;
        let data = gen_tri(&TrigramConfig {
            entries,
            vocabulary: 20_000,
            ..TrigramConfig::sphinx_like()
        });
        let mut design = trigram_designs()[0];
        design.rows_log2 -= 4; // 2^10 rows x 4 slices x 96 slots
        let mut t = build_trigram_table(&design);
        load_trigrams(&mut t, &data);
        let r = t.load_report();
        let alpha = r.load_factor();
        assert!((0.83..0.89).contains(&alpha), "alpha {alpha:.3}");
        let over = r.overflowing_buckets_pct();
        assert!(
            (4.0..9.0).contains(&over),
            "overflow {over:.2}% (paper 5.99%)"
        );
        let spill = r.spilled_records_pct();
        assert!(
            (0.1..0.8).contains(&spill),
            "spill {spill:.2}% (paper 0.34%)"
        );
        assert!(
            (1.0..1.01).contains(&r.amal_uniform),
            "AMAL {:.4}",
            r.amal_uniform
        );
        // Fig. 7: the home-bucket histogram is centred around 0.86 x 96.
        let hist = t.home_histogram();
        assert!(
            (78.0..86.0).contains(&hist.mean()),
            "mean {:.1}",
            hist.mean()
        );
        // And every stored trigram is findable.
        for s in data.iter().step_by(larger_of(entries / 200, 1)) {
            let key = pack_text_key(s);
            assert!(t.search(&SearchKey::new(key, 128)).hit.is_some(), "{s:?}");
        }
    }

    fn larger_of(a: usize, b: usize) -> usize {
        a.max(b)
    }
}
