//! Durability subsystem: storage backends, write-ahead logging, snapshots,
//! and crash recovery (ROADMAP item 3).
//!
//! The paper's slice organization (Sec. 3.2) makes a slice the natural
//! persistence unit: a contiguous bit-packed array with fixed geometry.
//! This module layers durability on top of that observation:
//!
//! * [`StorageBackend`] — where a slice's words live: anonymous heap memory
//!   (today's behavior, zero cost on the hot path) or an mmap'd,
//!   page-aligned file with a checksummed superblock and explicit
//!   flush/sync (the `storage` cargo feature; raw Linux syscalls on
//!   `x86_64`/`aarch64`, a buffered-file region elsewhere).
//! * [`wal`] — an append-only segment writer with length-prefixed,
//!   CRC-framed records for every mutation, group-commit batching,
//!   segment rotation, and configurable fsync policy.
//! * [`snapshot`] — checkpoint images written tmp+rename with file and
//!   directory fsync, so a crash leaves either the old or the new
//!   checkpoint, never a torn one.
//! * [`DurableTable`] — a [`crate::table::CaRamTable`] wrapper that logs
//!   before acknowledging, checkpoints by snapshot+truncate, and recovers
//!   by loading the latest valid snapshot and replaying the WAL tail,
//!   tolerating a torn final record.
//! * [`crash`] — the verification harness: cut the log at every byte or
//!   record boundary mid-stream, recover, and diff the recovered table
//!   against the serially-replayed reference model.
//!
//! Formats are versioned and little-endian throughout; every frame that a
//! crash could tear carries a CRC-32 so recovery can tell "torn tail"
//! (expected, tolerated) from "corruption" (a typed error, never a panic).

use std::path::{Path, PathBuf};

use crate::error::{CaRamError, DurabilityErrorKind, Result};
use crate::index::{BitSelect, DjbHash, IndexGenerator, RangeSelect, XorFold};
use crate::layout::RecordLayout;
use crate::probe::ProbePolicy;
use crate::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};

pub mod crash;
pub mod durable;
#[cfg(feature = "storage")]
pub mod mapped;
pub mod snapshot;
pub mod wal;

pub use crash::{crash_sweep, CrashSweepOptions, CrashSweepReport, CutGranularity};
pub use durable::{DurableOptions, DurableTable, TempDurableTable};
pub use snapshot::Snapshot;
pub use wal::{SyncPolicy, WalRecord, WalWriter};

/// Where a bit-packed array's words live.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageBackend {
    /// Anonymous heap memory — today's behavior, zero cost.
    Heap,
    /// An mmap'd, page-aligned file at the given path, with a checksummed
    /// superblock recording the array geometry. Requires the `storage`
    /// cargo feature; without it, constructors return a typed
    /// [`DurabilityErrorKind::Unsupported`] error.
    File {
        /// Backing file path (created if absent, validated if present).
        path: PathBuf,
    },
}

impl StorageBackend {
    /// Shorthand for the file-backed variant.
    #[must_use]
    pub fn file(path: impl Into<PathBuf>) -> Self {
        StorageBackend::File { path: path.into() }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        #[allow(clippy::cast_possible_truncation)] // i < 256
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum framing every durable record.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Error helpers
// ---------------------------------------------------------------------------

pub(crate) fn dur_err(kind: DurabilityErrorKind, detail: impl Into<String>) -> CaRamError {
    CaRamError::Durability {
        kind,
        detail: detail.into(),
    }
}

pub(crate) fn io_err(what: &str, path: &Path, e: &std::io::Error) -> CaRamError {
    dur_err(
        DurabilityErrorKind::Io,
        format!("{what} {}: {e}", path.display()),
    )
}

pub(crate) fn corrupt(detail: impl Into<String>) -> CaRamError {
    dur_err(DurabilityErrorKind::Corrupt, detail)
}

// ---------------------------------------------------------------------------
// Little-endian byte codec
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte buffer; every failure
/// is a typed [`DurabilityErrorKind::Corrupt`] error naming the context.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    ctx: &'static str,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8], ctx: &'static str) -> Self {
        Self { buf, pos: 0, ctx }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            corrupt(format!(
                "{}: length overflow at offset {}",
                self.ctx, self.pos
            ))
        })?;
        if end > self.buf.len() {
            return Err(corrupt(format!(
                "{}: truncated at offset {} (need {n} bytes, {} left)",
                self.ctx,
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    pub(crate) fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{}: {} trailing byte(s) after the last field",
                self.ctx,
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Serializable index generator spec
// ---------------------------------------------------------------------------

/// A serializable description of an index generator, so recovery can
/// rebuild the exact hash the table was created with. Covers the four
/// built-in generators; custom [`IndexGenerator`] impls cannot be made
/// durable (construct the table yourself and skip the superblock).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexSpec {
    /// [`RangeSelect::new`] — a contiguous field of `count` bits at `low`.
    RangeSelect {
        /// Lowest selected bit.
        low: u32,
        /// Field width; also the index width.
        count: u32,
    },
    /// [`DjbHash::new`] — the DJB string hash over `key_bytes` bytes.
    DjbHash {
        /// Index bits produced.
        index_bits: u32,
        /// Key bytes hashed.
        key_bytes: u32,
    },
    /// [`XorFold::new`] — XOR-fold the key to `index_bits` bits.
    XorFold {
        /// Index bits produced.
        index_bits: u32,
    },
    /// [`BitSelect::new`] — arbitrary key bit positions.
    BitSelect {
        /// Selected key bit positions, index bit `i` ← key bit
        /// `positions[i]`.
        positions: Vec<u32>,
    },
}

const INDEX_TAG_RANGE: u8 = 0;
const INDEX_TAG_DJB: u8 = 1;
const INDEX_TAG_XOR: u8 = 2;
const INDEX_TAG_BITSEL: u8 = 3;

impl IndexSpec {
    /// Validates the spec against the same invariants the generator
    /// constructors assert.
    ///
    /// # Errors
    ///
    /// [`CaRamError::BadConfig`] when a parameter is out of range.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(CaRamError::BadConfig(msg));
        match self {
            IndexSpec::RangeSelect { low, count } => {
                if *count == 0 || *count >= 64 {
                    return bad(format!("index width must be in 1..=63 bits, got {count}"));
                }
                if u64::from(*low) + u64::from(*count) > 128 {
                    return bad(format!("bit field [{low}, {}) out of range", low + count));
                }
            }
            IndexSpec::DjbHash {
                index_bits,
                key_bytes,
            } => {
                if *index_bits == 0 || *index_bits >= 64 {
                    return bad(format!(
                        "index width must be in 1..=63 bits, got {index_bits}"
                    ));
                }
                if *key_bytes == 0 || *key_bytes > 16 {
                    return bad(format!("key must be 1..=16 bytes, got {key_bytes}"));
                }
            }
            IndexSpec::XorFold { index_bits } => {
                if *index_bits == 0 || *index_bits >= 64 {
                    return bad(format!(
                        "index width must be in 1..=63 bits, got {index_bits}"
                    ));
                }
            }
            IndexSpec::BitSelect { positions } => {
                if positions.is_empty() || positions.len() >= 64 {
                    return bad(format!(
                        "index width must be in 1..=63 bits, got {}",
                        positions.len()
                    ));
                }
                let mut seen = 0u128;
                for &p in positions {
                    if p >= 128 {
                        return bad(format!("bit position {p} out of range"));
                    }
                    if seen & (1 << p) != 0 {
                        return bad(format!("duplicate bit position {p}"));
                    }
                    seen |= 1 << p;
                }
            }
        }
        Ok(())
    }

    /// Builds the described generator.
    ///
    /// # Errors
    ///
    /// [`CaRamError::BadConfig`] when [`Self::validate`] fails.
    pub fn build(&self) -> Result<Box<dyn IndexGenerator>> {
        self.validate()?;
        Ok(match self {
            IndexSpec::RangeSelect { low, count } => Box::new(RangeSelect::new(*low, *count)),
            IndexSpec::DjbHash {
                index_bits,
                key_bytes,
            } => Box::new(DjbHash::new(*index_bits, *key_bytes)),
            IndexSpec::XorFold { index_bits } => Box::new(XorFold::new(*index_bits)),
            IndexSpec::BitSelect { positions } => Box::new(BitSelect::new(positions.clone())),
        })
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            IndexSpec::RangeSelect { low, count } => {
                out.push(INDEX_TAG_RANGE);
                put_u32(out, *low);
                put_u32(out, *count);
            }
            IndexSpec::DjbHash {
                index_bits,
                key_bytes,
            } => {
                out.push(INDEX_TAG_DJB);
                put_u32(out, *index_bits);
                put_u32(out, *key_bytes);
            }
            IndexSpec::XorFold { index_bits } => {
                out.push(INDEX_TAG_XOR);
                put_u32(out, *index_bits);
            }
            IndexSpec::BitSelect { positions } => {
                out.push(INDEX_TAG_BITSEL);
                #[allow(clippy::cast_possible_truncation)] // validated < 64
                put_u32(out, positions.len() as u32);
                for &p in positions {
                    put_u32(out, p);
                }
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let spec = match r.u8()? {
            INDEX_TAG_RANGE => IndexSpec::RangeSelect {
                low: r.u32()?,
                count: r.u32()?,
            },
            INDEX_TAG_DJB => IndexSpec::DjbHash {
                index_bits: r.u32()?,
                key_bytes: r.u32()?,
            },
            INDEX_TAG_XOR => IndexSpec::XorFold {
                index_bits: r.u32()?,
            },
            INDEX_TAG_BITSEL => {
                let n = r.u32()? as usize;
                if n >= 64 {
                    return Err(corrupt(format!("bit-select spec claims {n} positions")));
                }
                let mut positions = Vec::with_capacity(n);
                for _ in 0..n {
                    positions.push(r.u32()?);
                }
                IndexSpec::BitSelect { positions }
            }
            tag => return Err(corrupt(format!("unknown index generator tag {tag}"))),
        };
        spec.validate()
            .map_err(|e| corrupt(format!("index spec invalid: {e}")))?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Serializable table spec
// ---------------------------------------------------------------------------

/// On-disk format version shared by the superblock, WAL, and snapshots.
pub const FORMAT_VERSION: u32 = 1;

/// The full, serializable description of a table: its [`TableConfig`]
/// geometry plus the [`IndexSpec`] hash — everything recovery needs to
/// rebuild an empty table with identical placement behavior.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table geometry, layout, probing, and overflow policy.
    pub config: TableConfig,
    /// Index generator description.
    pub index: IndexSpec,
}

// The canonical byte encoding is total and injective over valid specs, so
// it doubles as the equality relation (`TableConfig` itself carries no
// `PartialEq`).
impl PartialEq for TableSpec {
    fn eq(&self, other: &Self) -> bool {
        self.encode() == other.encode()
    }
}

impl Eq for TableSpec {}

const ARR_TAG_HORIZONTAL: u8 = 0;
const ARR_TAG_VERTICAL: u8 = 1;
const ARR_TAG_GRID: u8 = 2;
const PROBE_TAG_LINEAR: u8 = 0;
const PROBE_TAG_SECOND_HASH: u8 = 1;
const OVF_TAG_PROBE: u8 = 0;
const OVF_TAG_PARALLEL: u8 = 1;
const OVF_TAG_VICTIM: u8 = 2;

impl TableSpec {
    /// Serializes the spec to the versioned little-endian byte format
    /// (DESIGN.md sec 16).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_u32(&mut out, FORMAT_VERSION);
        let c = &self.config;
        put_u32(&mut out, c.rows_log2);
        put_u32(&mut out, c.row_bits);
        put_u32(&mut out, c.layout.key_bits());
        out.push(u8::from(c.layout.is_ternary()));
        put_u32(&mut out, c.layout.data_bits());
        match c.arrangement {
            Arrangement::Horizontal(h) => {
                out.push(ARR_TAG_HORIZONTAL);
                put_u32(&mut out, h);
                put_u32(&mut out, 1);
            }
            Arrangement::Vertical(v) => {
                out.push(ARR_TAG_VERTICAL);
                put_u32(&mut out, 1);
                put_u32(&mut out, v);
            }
            Arrangement::Grid {
                horizontal,
                vertical,
            } => {
                out.push(ARR_TAG_GRID);
                put_u32(&mut out, horizontal);
                put_u32(&mut out, vertical);
            }
        }
        match c.probe {
            ProbePolicy::Linear => out.push(PROBE_TAG_LINEAR),
            ProbePolicy::SecondHash => out.push(PROBE_TAG_SECOND_HASH),
        }
        match c.overflow {
            OverflowPolicy::Probe { max_steps } => {
                out.push(OVF_TAG_PROBE);
                put_u32(&mut out, max_steps);
                put_u32(&mut out, 0);
            }
            OverflowPolicy::ParallelArea { capacity } => {
                out.push(OVF_TAG_PARALLEL);
                let cap = u64::try_from(capacity).unwrap_or(u64::MAX);
                put_u64(&mut out, cap);
            }
            OverflowPolicy::VictimSlice {
                rows_log2,
                row_bits,
            } => {
                out.push(OVF_TAG_VICTIM);
                put_u32(&mut out, rows_log2);
                put_u32(&mut out, row_bits);
            }
        }
        self.index.encode_into(&mut out);
        out
    }

    /// Deserializes a spec previously produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::FormatVersion`] on an unknown version,
    /// [`DurabilityErrorKind::Corrupt`] on truncation, unknown tags, or
    /// out-of-range parameters.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes, "table spec");
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(dur_err(
                DurabilityErrorKind::FormatVersion,
                format!("table spec version {version}, this build reads {FORMAT_VERSION}"),
            ));
        }
        let rows_log2 = r.u32()?;
        let row_bits = r.u32()?;
        let key_bits = r.u32()?;
        let ternary = match r.u8()? {
            0 => false,
            1 => true,
            b => return Err(corrupt(format!("ternary flag must be 0 or 1, got {b}"))),
        };
        let data_bits = r.u32()?;
        if key_bits == 0 || key_bits > 128 || data_bits > 64 {
            return Err(corrupt(format!(
                "layout out of range: key_bits {key_bits}, data_bits {data_bits}"
            )));
        }
        let layout = RecordLayout::new(key_bits, ternary, data_bits);
        let arr_tag = r.u8()?;
        let h = r.u32()?;
        let v = r.u32()?;
        let arrangement = match arr_tag {
            ARR_TAG_HORIZONTAL => Arrangement::Horizontal(h),
            ARR_TAG_VERTICAL => Arrangement::Vertical(v),
            ARR_TAG_GRID => Arrangement::Grid {
                horizontal: h,
                vertical: v,
            },
            t => return Err(corrupt(format!("unknown arrangement tag {t}"))),
        };
        if h == 0 || v == 0 {
            return Err(corrupt(format!("arrangement factors {h}x{v} out of range")));
        }
        let probe = match r.u8()? {
            PROBE_TAG_LINEAR => ProbePolicy::Linear,
            PROBE_TAG_SECOND_HASH => ProbePolicy::SecondHash,
            t => return Err(corrupt(format!("unknown probe policy tag {t}"))),
        };
        let overflow = match r.u8()? {
            OVF_TAG_PROBE => {
                let max_steps = r.u32()?;
                let _reserved = r.u32()?;
                OverflowPolicy::Probe { max_steps }
            }
            OVF_TAG_PARALLEL => {
                let cap = r.u64()?;
                let capacity = usize::try_from(cap).map_err(|_| {
                    corrupt(format!("overflow capacity {cap} exceeds this platform"))
                })?;
                OverflowPolicy::ParallelArea { capacity }
            }
            OVF_TAG_VICTIM => OverflowPolicy::VictimSlice {
                rows_log2: r.u32()?,
                row_bits: r.u32()?,
            },
            t => return Err(corrupt(format!("unknown overflow policy tag {t}"))),
        };
        let index = IndexSpec::decode_from(&mut r)?;
        r.finish()?;
        Ok(TableSpec {
            config: TableConfig {
                rows_log2,
                row_bits,
                layout,
                arrangement,
                probe,
                overflow,
            },
            index,
        })
    }

    /// Builds an empty table from the spec.
    ///
    /// # Errors
    ///
    /// [`CaRamError::BadConfig`] when the spec is internally inconsistent
    /// (e.g. the index is narrower than the bucket count).
    pub fn build(&self) -> Result<CaRamTable> {
        CaRamTable::new(self.config.clone(), self.index.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn sample_spec() -> TableSpec {
        TableSpec {
            config: TableConfig {
                rows_log2: 6,
                row_bits: 512,
                layout: RecordLayout::new(32, true, 32),
                arrangement: Arrangement::Grid {
                    horizontal: 2,
                    vertical: 3,
                },
                probe: ProbePolicy::SecondHash,
                overflow: OverflowPolicy::ParallelArea { capacity: 256 },
            },
            index: IndexSpec::RangeSelect { low: 16, count: 8 },
        }
    }

    #[test]
    fn table_spec_roundtrip() {
        let spec = sample_spec();
        let bytes = spec.encode();
        let back = TableSpec::decode(&bytes).expect("decode");
        // TableConfig has no PartialEq; the byte encoding is the identity.
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.index, spec.index);
        back.build().expect("buildable");
    }

    #[test]
    fn table_spec_roundtrip_all_variants() {
        let specs = [
            TableSpec {
                config: TableConfig {
                    rows_log2: 4,
                    row_bits: 256,
                    layout: RecordLayout::new(64, false, 16),
                    arrangement: Arrangement::Horizontal(2),
                    probe: ProbePolicy::Linear,
                    overflow: OverflowPolicy::Probe { max_steps: 7 },
                },
                index: IndexSpec::DjbHash {
                    index_bits: 4,
                    key_bytes: 8,
                },
            },
            TableSpec {
                config: TableConfig {
                    rows_log2: 5,
                    row_bits: 256,
                    layout: RecordLayout::new(24, true, 8),
                    arrangement: Arrangement::Vertical(2),
                    probe: ProbePolicy::Linear,
                    overflow: OverflowPolicy::VictimSlice {
                        rows_log2: 3,
                        row_bits: 256,
                    },
                },
                index: IndexSpec::XorFold { index_bits: 6 },
            },
            TableSpec {
                config: TableConfig {
                    rows_log2: 3,
                    row_bits: 256,
                    layout: RecordLayout::new(16, true, 8),
                    arrangement: Arrangement::Horizontal(1),
                    probe: ProbePolicy::Linear,
                    overflow: OverflowPolicy::Probe { max_steps: 0 },
                },
                index: IndexSpec::BitSelect {
                    positions: vec![0, 5, 9],
                },
            },
        ];
        for spec in specs {
            let bytes = spec.encode();
            let back = TableSpec::decode(&bytes).expect("decode");
            assert_eq!(back.encode(), bytes);
            assert_eq!(back.index, spec.index);
        }
    }

    #[test]
    fn table_spec_rejects_damage() {
        let bytes = sample_spec().encode();
        // Truncation at every prefix either errors or (never) panics.
        for cut in 0..bytes.len() {
            let err = TableSpec::decode(&bytes[..cut]).expect_err("truncated spec must fail");
            assert!(matches!(err, CaRamError::Durability { .. }));
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(TableSpec::decode(&long).is_err());
        // A wrong version is a FormatVersion error, not Corrupt.
        let mut wrong = bytes;
        wrong[0] = 0xFF;
        match TableSpec::decode(&wrong) {
            Err(CaRamError::Durability { kind, .. }) => {
                assert_eq!(kind, DurabilityErrorKind::FormatVersion);
            }
            other => panic!("expected FormatVersion error, got {other:?}"),
        }
    }

    #[test]
    fn index_spec_validation() {
        assert!(IndexSpec::RangeSelect { low: 0, count: 0 }
            .validate()
            .is_err());
        assert!(IndexSpec::RangeSelect {
            low: 120,
            count: 10
        }
        .build()
        .is_err());
        assert!(IndexSpec::DjbHash {
            index_bits: 8,
            key_bytes: 17
        }
        .validate()
        .is_err());
        assert!(IndexSpec::XorFold { index_bits: 64 }.validate().is_err());
        assert!(IndexSpec::BitSelect { positions: vec![] }
            .validate()
            .is_err());
        assert!(IndexSpec::BitSelect {
            positions: vec![3, 3]
        }
        .validate()
        .is_err());
        assert!(IndexSpec::BitSelect {
            positions: vec![1, 2, 9]
        }
        .build()
        .is_ok());
        assert!(IndexSpec::RangeSelect { low: 16, count: 11 }
            .build()
            .is_ok());
    }
}
