//! Software search structures laid out in a simulated address space.
//!
//! Each structure places its nodes at explicit byte addresses and performs
//! lookups through a [`Hierarchy`], so every pointer dereference is a
//! simulated load. This reproduces the memory-access counts the paper
//! attributes to software searching (Sec. 2.1, 4.1): list/tree traversal
//! and hashing are pointer-chasing patterns that are "difficult to fully
//! optimize" \[12\].

use crate::cache::Hierarchy;

/// A bump allocator handing out addresses in a simulated flat memory.
#[derive(Debug, Clone)]
pub struct Arena {
    next: u64,
}

impl Arena {
    /// Creates an arena starting at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        Self { next: base }
    }

    /// Allocates `bytes` aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + bytes;
        addr
    }
}

/// Outcome of one software lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// The value found, if any.
    pub value: Option<u64>,
    /// Loads issued (pointer dereferences / element reads).
    pub loads: u32,
}

/// A software search index over `u64 -> u64`.
pub trait SoftIndex {
    /// Looks `key` up, issuing loads through `mem`.
    fn lookup(&self, key: u64, mem: &mut Hierarchy) -> Lookup;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Looks every key of `keys` up in order, appending one [`Lookup`] per
    /// key to `out`. The software model threads all loads through one
    /// stateful cache hierarchy, so execution is inherently serial; this
    /// default simply loops [`SoftIndex::lookup`]. It exists so harnesses
    /// can drive software baselines and `CaRamTable::search_batch` through
    /// the same batched shape.
    fn lookup_batch(&self, keys: &[u64], mem: &mut Hierarchy, out: &mut Vec<Lookup>) {
        out.reserve(keys.len());
        for &key in keys {
            out.push(self.lookup(key, mem));
        }
    }
}

// ---------------------------------------------------------------------------

/// A chained (separate-chaining) hash table: bucket-head array + linked
/// nodes, the textbook layout of Sec. 2.1 ("arranged ... chained in a
/// linked list").
#[derive(Debug, Clone)]
pub struct ChainedHash {
    mask: u64,
    heads_base: u64,
    heads: Vec<Option<u32>>,
    nodes: Vec<(u64, u64, Option<u32>)>, // (key, value, next)
    nodes_base: u64,
}

const NODE_BYTES: u64 = 24; // key + value + next pointer

impl ChainedHash {
    /// Builds the table with `2^buckets_log2` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets_log2` ≥ 32.
    #[must_use]
    pub fn build(pairs: &[(u64, u64)], buckets_log2: u32, arena: &mut Arena) -> Self {
        assert!(buckets_log2 < 32, "bucket count out of range");
        let buckets = 1usize << buckets_log2;
        let heads_base = arena.alloc(8 * buckets as u64, 64);
        let nodes_base = arena.alloc(NODE_BYTES * pairs.len() as u64, 64);
        let mask = (buckets - 1) as u64;
        let mut heads: Vec<Option<u32>> = vec![None; buckets];
        let mut nodes = Vec::with_capacity(pairs.len());
        for &(key, value) in pairs {
            let b = usize::try_from(Self::hash(key) & mask).expect("fits");
            let idx = u32::try_from(nodes.len()).expect("< 2^32 nodes");
            nodes.push((key, value, heads[b]));
            heads[b] = Some(idx);
        }
        Self {
            mask,
            heads_base,
            heads,
            nodes,
            nodes_base,
        }
    }

    fn hash(key: u64) -> u64 {
        // Fibonacci hashing: cheap and well-spread, as a software hash
        // function would be.
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13
    }

    fn node_addr(&self, idx: u32) -> u64 {
        self.nodes_base + u64::from(idx) * NODE_BYTES
    }
}

impl SoftIndex for ChainedHash {
    fn lookup(&self, key: u64, mem: &mut Hierarchy) -> Lookup {
        let b = Self::hash(key) & self.mask;
        // Load the bucket head pointer.
        mem.access(self.heads_base + b * 8);
        let mut loads = 1u32;
        let mut cursor = self.heads[usize::try_from(b).expect("fits")];
        while let Some(idx) = cursor {
            // Load the node (key + next fit in one 24-byte record).
            mem.access(self.node_addr(idx));
            loads += 1;
            let (k, v, next) = self.nodes[idx as usize];
            if k == key {
                return Lookup {
                    value: Some(v),
                    loads,
                };
            }
            cursor = next;
        }
        Lookup { value: None, loads }
    }

    fn name(&self) -> &'static str {
        "chained hash"
    }
}

// ---------------------------------------------------------------------------

/// An open-addressing (linear-probing) hash table of 16-byte slots — the
/// software analogue of CA-RAM's own layout.
#[derive(Debug, Clone)]
pub struct OpenAddressing {
    mask: u64,
    base: u64,
    slots: Vec<Option<(u64, u64)>>,
}

const SLOT_BYTES: u64 = 16;

impl OpenAddressing {
    /// Builds the table with `2^slots_log2` slots.
    ///
    /// # Panics
    ///
    /// Panics if the table cannot hold the pairs or `slots_log2` ≥ 32.
    #[must_use]
    pub fn build(pairs: &[(u64, u64)], slots_log2: u32, arena: &mut Arena) -> Self {
        assert!(slots_log2 < 32, "slot count out of range");
        let n = 1usize << slots_log2;
        assert!(pairs.len() < n, "open table must have a free slot");
        let base = arena.alloc(SLOT_BYTES * n as u64, 64);
        let mask = (n - 1) as u64;
        let mut slots: Vec<Option<(u64, u64)>> = vec![None; n];
        for &(key, value) in pairs {
            let mut i = ChainedHash::hash(key) & mask;
            while slots[usize::try_from(i).expect("fits")].is_some() {
                i = (i + 1) & mask;
            }
            slots[usize::try_from(i).expect("fits")] = Some((key, value));
        }
        Self { mask, base, slots }
    }
}

impl SoftIndex for OpenAddressing {
    fn lookup(&self, key: u64, mem: &mut Hierarchy) -> Lookup {
        let mut i = ChainedHash::hash(key) & self.mask;
        let mut loads = 0u32;
        loop {
            mem.access(self.base + i * SLOT_BYTES);
            loads += 1;
            match self.slots[usize::try_from(i).expect("fits")] {
                Some((k, v)) if k == key => {
                    return Lookup {
                        value: Some(v),
                        loads,
                    }
                }
                Some(_) => i = (i + 1) & self.mask,
                None => return Lookup { value: None, loads },
            }
        }
    }

    fn name(&self) -> &'static str {
        "open addressing"
    }
}

// ---------------------------------------------------------------------------

/// A sorted array searched by binary search ("ordered table searching",
/// Sec. 2.1) — `O(log N)` loads, each a cache-hostile random jump.
#[derive(Debug, Clone)]
pub struct SortedArray {
    base: u64,
    entries: Vec<(u64, u64)>,
}

impl SortedArray {
    /// Builds the array (sorts a copy of `pairs` by key).
    #[must_use]
    pub fn build(pairs: &[(u64, u64)], arena: &mut Arena) -> Self {
        let mut entries = pairs.to_vec();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let base = arena.alloc(SLOT_BYTES * entries.len() as u64, 64);
        Self { base, entries }
    }
}

impl SoftIndex for SortedArray {
    fn lookup(&self, key: u64, mem: &mut Hierarchy) -> Lookup {
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        let mut loads = 0u32;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            mem.access(self.base + mid as u64 * SLOT_BYTES);
            loads += 1;
            let (k, v) = self.entries[mid];
            match key.cmp(&k) {
                core::cmp::Ordering::Equal => {
                    return Lookup {
                        value: Some(v),
                        loads,
                    }
                }
                core::cmp::Ordering::Less => hi = mid,
                core::cmp::Ordering::Greater => lo = mid + 1,
            }
        }
        Lookup { value: None, loads }
    }

    fn name(&self) -> &'static str {
        "binary search"
    }
}

// ---------------------------------------------------------------------------

/// A binary search tree with nodes at allocation-order addresses — the
/// pointer-chasing pattern of \[12\].
#[derive(Debug, Clone)]
pub struct BinarySearchTree {
    nodes: Vec<BstNode>,
    base: u64,
    root: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct BstNode {
    key: u64,
    value: u64,
    left: Option<u32>,
    right: Option<u32>,
}

const BST_NODE_BYTES: u64 = 32;

impl BinarySearchTree {
    /// Builds the tree by inserting `pairs` in the given order (callers
    /// shuffle for balance, or not — degeneracy is part of the story).
    #[must_use]
    pub fn build(pairs: &[(u64, u64)], arena: &mut Arena) -> Self {
        let base = arena.alloc(BST_NODE_BYTES * pairs.len() as u64, 64);
        let mut t = Self {
            nodes: Vec::with_capacity(pairs.len()),
            base,
            root: None,
        };
        for &(key, value) in pairs {
            t.insert(key, value);
        }
        t
    }

    fn insert(&mut self, key: u64, value: u64) {
        let new = u32::try_from(self.nodes.len()).expect("< 2^32 nodes");
        self.nodes.push(BstNode {
            key,
            value,
            left: None,
            right: None,
        });
        let Some(mut cur) = self.root else {
            self.root = Some(new);
            return;
        };
        loop {
            let node = self.nodes[cur as usize];
            if key < node.key {
                if let Some(l) = node.left {
                    cur = l;
                } else {
                    self.nodes[cur as usize].left = Some(new);
                    return;
                }
            } else if let Some(r) = node.right {
                cur = r;
            } else {
                self.nodes[cur as usize].right = Some(new);
                return;
            }
        }
    }
}

impl SoftIndex for BinarySearchTree {
    fn lookup(&self, key: u64, mem: &mut Hierarchy) -> Lookup {
        let mut loads = 0u32;
        let mut cursor = self.root;
        while let Some(idx) = cursor {
            mem.access(self.base + u64::from(idx) * BST_NODE_BYTES);
            loads += 1;
            let node = self.nodes[idx as usize];
            match key.cmp(&node.key) {
                core::cmp::Ordering::Equal => {
                    return Lookup {
                        value: Some(node.value),
                        loads,
                    }
                }
                core::cmp::Ordering::Less => cursor = node.left,
                core::cmp::Ordering::Greater => cursor = node.right,
            }
        }
        Lookup { value: None, loads }
    }

    fn name(&self) -> &'static str {
        "binary search tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out: Vec<(u64, u64)> = (0..n).map(|i| (rng.gen::<u64>(), i)).collect();
        out.sort_unstable();
        out.dedup_by_key(|p| p.0);
        out.shuffle(&mut rng);
        out
    }

    fn check_all<T: SoftIndex>(index: &T, pairs: &[(u64, u64)]) {
        let mut mem = Hierarchy::typical();
        for &(k, v) in pairs {
            let got = index.lookup(k, &mut mem);
            assert_eq!(got.value, Some(v), "{} key {k:#x}", index.name());
            assert!(got.loads >= 1);
        }
        // A key guaranteed absent.
        let miss = index.lookup(u64::MAX, &mut mem);
        assert_eq!(miss.value, None);
    }

    #[test]
    fn arena_aligns() {
        let mut a = Arena::new(100);
        assert_eq!(a.alloc(10, 64), 128);
        assert_eq!(a.alloc(8, 8), 144);
    }

    #[test]
    fn chained_hash_finds_everything() {
        let p = pairs(2_000);
        let mut arena = Arena::new(0);
        let t = ChainedHash::build(&p, 9, &mut arena); // 512 buckets, ~4/chain
        check_all(&t, &p);
    }

    #[test]
    fn chained_hash_load_count_tracks_chain_length() {
        let p = pairs(4_096);
        let mut arena = Arena::new(0);
        let sparse = ChainedHash::build(&p, 13, &mut arena); // ~0.5/bucket
        let dense = ChainedHash::build(&p, 8, &mut arena); // ~16/bucket
        let mut mem = Hierarchy::typical();
        let avg = |t: &ChainedHash, mem: &mut Hierarchy| {
            let total: u32 = p.iter().map(|&(k, _)| t.lookup(k, mem).loads).sum();
            f64::from(total) / p.len() as f64
        };
        assert!(avg(&dense, &mut mem) > avg(&sparse, &mut mem) + 3.0);
    }

    #[test]
    fn open_addressing_finds_everything() {
        let p = pairs(3_000);
        let mut arena = Arena::new(0);
        let t = OpenAddressing::build(&p, 12, &mut arena);
        check_all(&t, &p);
    }

    #[test]
    fn sorted_array_is_logarithmic() {
        let p = pairs(4_096);
        let mut arena = Arena::new(0);
        let t = SortedArray::build(&p, &mut arena);
        check_all(&t, &p);
        let mut mem = Hierarchy::typical();
        let worst = p
            .iter()
            .map(|&(k, _)| t.lookup(k, &mut mem).loads)
            .max()
            .unwrap();
        assert!(worst <= 13, "log2(4096) + 1 = 13, got {worst}");
    }

    #[test]
    fn bst_finds_everything_and_chases_pointers() {
        let p = pairs(2_000);
        let mut arena = Arena::new(0);
        let t = BinarySearchTree::build(&p, &mut arena);
        check_all(&t, &p);
        let mut mem = Hierarchy::typical();
        let avg: f64 = p
            .iter()
            .map(|&(k, _)| f64::from(t.lookup(k, &mut mem).loads))
            .sum::<f64>()
            / p.len() as f64;
        // Random insertion: ~1.39 log2(n) expected depth.
        assert!(avg > 10.0 && avg < 25.0, "avg depth {avg:.1}");
    }

    #[test]
    fn structures_disagree_only_in_cost_not_in_answers() {
        let p = pairs(1_000);
        let mut arena = Arena::new(0);
        let a = ChainedHash::build(&p, 8, &mut arena);
        let b = OpenAddressing::build(&p, 11, &mut arena);
        let c = SortedArray::build(&p, &mut arena);
        let d = BinarySearchTree::build(&p, &mut arena);
        let mut mem = Hierarchy::typical();
        for &(k, v) in p.iter().take(200) {
            for idx in [&a as &dyn SoftIndex, &b, &c, &d] {
                assert_eq!(idx.lookup(k, &mut mem).value, Some(v));
            }
        }
    }
}
