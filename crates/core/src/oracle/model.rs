//! The executable specification every engine is compared against.
//!
//! [`ReferenceModel`] is deliberately naive: a flat `Vec` of live records,
//! masked ternary compare straight off [`TernaryKey::matches`], and LPM
//! priority by maximum care count. It shares nothing with the bit-packed
//! array, the index generators, or the probe machinery, so a divergence
//! between an engine and the model localizes the bug to the engine side.

use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;

/// What the model says a search must observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// Number of live records matching the search key.
    pub matches: usize,
    /// Care count of the most specific matching record, if any.
    pub best_care: Option<u32>,
    /// Data payloads an engine is allowed to report: those of every
    /// matching record at the maximum care count. More than one entry means
    /// the stream created a genuine priority tie (equal-specificity
    /// patterns, or duplicate keys with different payloads), where engines
    /// legitimately differ in tie-breaking.
    ///
    /// **Tie-break semantics for compiled expansions are pinned by this
    /// admission rule.** The pattern compiler
    /// ([`crate::pattern::CompiledPlan::lower_entry`]) lowers one logical
    /// entry — e.g. a range via prefix expansion — into several ternary
    /// records that all carry the *same* data payload. A point query can
    /// match at most one entry of a disjoint cover, and when equal-care
    /// cover entries of *different* logical rules tie, each contributes its
    /// own payload to `accepted`, exactly as hand-written patterns would.
    /// So as long as every expansion shares one payload (enforced by
    /// [`ReferenceModel::insert_compiled`]), engines remain free to break
    /// max-care ties arbitrarily without ever splitting one logical rule
    /// into two observable answers.
    pub accepted: Vec<u64>,
}

impl Expected {
    /// Whether an engine-reported outcome satisfies this expectation.
    #[must_use]
    pub fn admits(&self, hit: Option<u64>) -> bool {
        match hit {
            None => self.matches == 0,
            Some(data) => self.accepted.contains(&data),
        }
    }
}

/// A linear-scan reference search structure with exact delete semantics.
///
/// * `insert` appends — duplicates are kept as distinct records;
/// * `delete` removes **every** record whose stored key is equal (value,
///   mask, and width), mirroring the [`crate::engine::SearchEngine::delete`]
///   contract;
/// * `expected` computes the full match set of a search key and the
///   accepted LPM winners.
#[derive(Debug, Clone, Default)]
pub struct ReferenceModel {
    key_bits: u32,
    records: Vec<Record>,
}

impl ReferenceModel {
    /// An empty model for keys of the given width.
    #[must_use]
    pub fn new(key_bits: u32) -> Self {
        Self {
            key_bits,
            records: Vec::new(),
        }
    }

    /// The key width this model holds records for.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Number of live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The live records, in insertion order.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Stores a record. Duplicate keys accumulate.
    ///
    /// # Panics
    ///
    /// Panics on a key-width mismatch — the harness only feeds the model
    /// records an engine accepted, which are always width-checked.
    pub fn insert(&mut self, record: Record) {
        assert_eq!(
            record.key.bits(),
            self.key_bits,
            "model fed a record of the wrong width"
        );
        self.records.push(record);
    }

    /// Stores every record of one compiled multi-entry expansion (e.g. a
    /// range lowered through
    /// [`crate::pattern::CompiledPlan::lower_entry`]).
    ///
    /// The one-logical-value contract is asserted here: all entries of an
    /// expansion must carry the same data payload, otherwise a max-care tie
    /// between two entries of the *same* rule would make the rule's answer
    /// depend on the engine's tie-break, which [`Expected::admits`] is not
    /// allowed to distinguish.
    ///
    /// # Panics
    ///
    /// Panics on mixed payloads within `entries`, or on a key-width
    /// mismatch as in [`ReferenceModel::insert`].
    pub fn insert_compiled(&mut self, entries: &[Record]) {
        if let Some(first) = entries.first() {
            assert!(
                entries.iter().all(|r| r.data == first.data),
                "compiled expansion must carry one logical value"
            );
        }
        for r in entries {
            self.insert(*r);
        }
    }

    /// Removes every record whose key equals `key`; returns how many.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` records were removed, which the
    /// harness's live-record bound makes unreachable.
    pub fn delete(&mut self, key: &TernaryKey) -> u32 {
        let before = self.records.len();
        self.records.retain(|r| r.key != *key);
        u32::try_from(before - self.records.len()).expect("bounded by record count")
    }

    /// The match set and accepted LPM winners for one search key.
    #[must_use]
    pub fn expected(&self, key: &SearchKey) -> Expected {
        let mut matches = 0usize;
        let mut best_care: Option<u32> = None;
        for r in &self.records {
            if r.key.matches(key) {
                matches += 1;
                let care = r.key.care_count();
                if best_care.is_none_or(|b| care > b) {
                    best_care = Some(care);
                }
            }
        }
        let accepted = best_care
            .map(|best| {
                self.records
                    .iter()
                    .filter(|r| r.key.matches(key) && r.key.care_count() == best)
                    .map(|r| r.data)
                    .collect()
            })
            .unwrap_or_default();
        Expected {
            matches,
            best_care,
            accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(value: u128, dc: u128, data: u64) -> Record {
        Record::new(TernaryKey::ternary(value, dc, 32), data)
    }

    #[test]
    fn lpm_priority_is_max_care() {
        let mut m = ReferenceModel::new(32);
        m.insert(rec(0x0A00_0000, 0x00FF_FFFF, 1)); // /8
        m.insert(rec(0x0A0B_0000, 0x0000_FFFF, 2)); // /16
        let e = m.expected(&SearchKey::new(0x0A0B_0001, 32));
        assert_eq!(e.matches, 2);
        assert_eq!(e.best_care, Some(16));
        assert_eq!(e.accepted, vec![2]);
        assert!(e.admits(Some(2)));
        assert!(!e.admits(Some(1)));
        assert!(!e.admits(None));
    }

    #[test]
    fn duplicate_keys_tie_on_data_and_delete_together() {
        let mut m = ReferenceModel::new(32);
        m.insert(rec(0xBEEF, 0, 7));
        m.insert(rec(0xBEEF, 0, 8));
        let e = m.expected(&SearchKey::new(0xBEEF, 32));
        assert_eq!(e.matches, 2);
        assert!(e.admits(Some(7)) && e.admits(Some(8)));
        assert_eq!(m.delete(&TernaryKey::binary(0xBEEF, 32)), 2);
        assert!(m.is_empty());
        assert!(m.expected(&SearchKey::new(0xBEEF, 32)).admits(None));
    }

    #[test]
    fn delete_distinguishes_mask_not_just_value() {
        let mut m = ReferenceModel::new(32);
        m.insert(rec(0x0A00_0000, 0x00FF_FFFF, 1));
        m.insert(rec(0x0A00_0000, 0x0000_FFFF, 2));
        // Same canonical value, different masks: only the /16 goes.
        assert_eq!(m.delete(&TernaryKey::ternary(0x0A00_0000, 0xFFFF, 32)), 1);
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.expected(&SearchKey::new(0x0A01_0000, 32)).accepted,
            vec![1]
        );
    }

    #[test]
    fn compiled_expansion_reports_one_logical_value() {
        use crate::pattern::{prefix_cover, Pattern, PatternSpec};
        let spec = PatternSpec::lpm("r", 32).unwrap();
        let mut m = ReferenceModel::new(32);
        // [3, 9] covers as {3}, [4,7], [8,9]: three entries, one payload.
        let keys = spec
            .lower(&Pattern::RangeViaPrefixExpansion { lo: 3, hi: 9 })
            .unwrap();
        assert_eq!(keys.len(), prefix_cover(3, 9, 32).unwrap().len());
        let entries: Vec<Record> = keys.iter().map(|&k| Record::new(k, 42)).collect();
        m.insert_compiled(&entries);
        for v in 3u128..=9 {
            let e = m.expected(&SearchKey::new(v, 32));
            // Disjoint cover: exactly one entry matches, one accepted value.
            assert_eq!(e.matches, 1, "value {v}");
            assert_eq!(e.accepted, vec![42]);
        }
        assert!(m.expected(&SearchKey::new(10, 32)).admits(None));
    }

    #[test]
    #[should_panic(expected = "one logical value")]
    fn mixed_payload_expansion_rejected() {
        let mut m = ReferenceModel::new(32);
        m.insert_compiled(&[rec(4, 3, 1), rec(8, 1, 2)]);
    }

    #[test]
    fn masked_search_respects_both_masks() {
        let mut m = ReferenceModel::new(16);
        m.insert(Record::new(TernaryKey::ternary(0x1200, 0x00FF, 16), 5)); // 0x12XX
        let probe = SearchKey::with_mask(0x1234, 0x000F, 16); // 0x123X
        assert_eq!(m.expected(&probe).accepted, vec![5]);
        let miss = SearchKey::with_mask(0x2234, 0x000F, 16);
        assert_eq!(m.expected(&miss).matches, 0);
    }
}
