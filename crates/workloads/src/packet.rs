//! 5-tuple packet classification — the first pattern-compiled workload.
//!
//! The paper positions CA-RAM as a TCAM substitute for "search-intensive
//! applications"; packet classification is the canonical multi-field one.
//! A classifier rule constrains five header fields — source/destination
//! address prefixes, source/destination port (exact, any, or range), and
//! protocol — and the highest-priority matching rule decides the action.
//! This module generates seeded synthetic rule sets shaped like real
//! firewall tables and biased lookup traces over them, expressed as
//! [`ca_ram_core::pattern`] patterns so the compiler does all lowering
//! (range → prefix expansion, field packing, index selection).

use ca_ram_core::pattern::{FieldPattern, Pattern, PatternSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The pattern spec packet-classification workloads compile through:
/// `src/32 dst/32 sport/16 dport/16 proto/8 pad/24`, masked multi-field.
///
/// # Panics
///
/// Never: the shape is statically well-formed.
#[must_use]
pub fn classifier_spec() -> PatternSpec {
    PatternSpec::five_tuple()
}

/// One packet header, as the classifier sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src: u32,
    /// Destination IPv4 address.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FiveTuple {
    /// Packs the header into the 128-bit key of [`classifier_spec`]
    /// (fields MSB-first, the 24 pad bits zero).
    #[must_use]
    pub fn pack(&self) -> u128 {
        (u128::from(self.src) << 96)
            | (u128::from(self.dst) << 64)
            | (u128::from(self.sport) << 48)
            | (u128::from(self.dport) << 32)
            | (u128::from(self.proto) << 24)
    }
}

/// A port constraint in a classifier rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortMatch {
    /// Any port.
    Any,
    /// Exactly this port.
    Exact(u16),
    /// An inclusive port range (lowered by prefix expansion).
    Range(u16, u16),
}

impl PortMatch {
    /// Whether `port` satisfies this constraint.
    #[must_use]
    pub fn matches(&self, port: u16) -> bool {
        match *self {
            Self::Any => true,
            Self::Exact(p) => port == p,
            Self::Range(lo, hi) => (lo..=hi).contains(&port),
        }
    }

    fn to_field(self) -> FieldPattern {
        match self {
            Self::Any => FieldPattern::Any,
            Self::Exact(p) => FieldPattern::Exact(u128::from(p)),
            Self::Range(lo, hi) => FieldPattern::Range {
                lo: u128::from(lo),
                hi: u128::from(hi),
            },
        }
    }
}

/// One classifier rule over the five header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierRule {
    /// Source prefix: network address (host bits zero) and length.
    pub src: (u32, u8),
    /// Destination prefix: network address (host bits zero) and length.
    pub dst: (u32, u8),
    /// Source-port constraint.
    pub sport: PortMatch,
    /// Destination-port constraint.
    pub dport: PortMatch,
    /// Protocol constraint (`None` = any).
    pub proto: Option<u8>,
    /// The rule's action / flow identifier, stored as record data.
    pub action: u64,
}

impl ClassifierRule {
    /// The rule as a compiler pattern for [`classifier_spec`]-shaped
    /// tables. Lowering may expand it into several ternary entries (one
    /// per port-range cover block), all carrying the same `action`.
    #[must_use]
    pub fn to_pattern(&self) -> Pattern {
        let prefix = |addr: u32, len: u8| {
            if len == 0 {
                FieldPattern::Any
            } else {
                FieldPattern::Prefix {
                    value: u128::from(addr),
                    len: u32::from(len),
                }
            }
        };
        Pattern::MaskedMultiField {
            fields: vec![
                prefix(self.src.0, self.src.1),
                prefix(self.dst.0, self.dst.1),
                self.sport.to_field(),
                self.dport.to_field(),
                self.proto
                    .map_or(FieldPattern::Any, |p| FieldPattern::Exact(u128::from(p))),
                FieldPattern::Exact(0), // pad
            ],
        }
    }

    /// Whether `pkt` satisfies every field constraint (the reference
    /// semantics the lowered ternary entries must reproduce).
    #[must_use]
    pub fn matches(&self, pkt: &FiveTuple) -> bool {
        let in_prefix = |addr: u32, (net, len): (u32, u8)| {
            len == 0 || (addr ^ net) >> (32 - u32::from(len)) == 0
        };
        in_prefix(pkt.src, self.src)
            && in_prefix(pkt.dst, self.dst)
            && self.sport.matches(pkt.sport)
            && self.dport.matches(pkt.dport)
            && self.proto.is_none_or(|p| p == pkt.proto)
    }

    /// A random packet header matched by this rule.
    #[allow(clippy::cast_possible_truncation)] // masked to 16 bits
    #[must_use]
    pub fn random_member(&self, rng: &mut impl Rng) -> FiveTuple {
        let fill = |(net, len): (u32, u8), r: u32| {
            if len == 32 {
                net
            } else {
                net | (r & (u32::MAX >> len))
            }
        };
        let port = |m: PortMatch, r: u32| match m {
            PortMatch::Any => (r & 0xFFFF) as u16,
            PortMatch::Exact(p) => p,
            PortMatch::Range(lo, hi) => {
                let span = u32::from(hi) - u32::from(lo) + 1;
                lo + (r % span) as u16
            }
        };
        FiveTuple {
            src: fill(self.src, rng.gen()),
            dst: fill(self.dst, rng.gen()),
            sport: port(self.sport, rng.gen()),
            dport: port(self.dport, rng.gen()),
            proto: self.proto.unwrap_or_else(|| rng.gen()),
        }
    }
}

/// Configuration of the synthetic classifier generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketClassConfig {
    /// Rules to generate.
    pub rules: usize,
    /// Minimum source-prefix length (inclusive). Keeping this at the
    /// default bounds per-rule bucket duplication when the compiled index
    /// taps high source-address bits.
    pub min_src_len: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PacketClassConfig {
    fn default() -> Self {
        Self {
            rules: 2_000,
            min_src_len: 14,
            seed: 0x5AC1,
        }
    }
}

impl PacketClassConfig {
    /// The default shape at a chosen rule count.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is zero.
    #[must_use]
    pub fn scaled(rules: usize) -> Self {
        assert!(rules > 0, "need at least one rule");
        Self {
            rules,
            ..Self::default()
        }
    }
}

/// Generates a seeded synthetic rule set. Source prefixes are at least
/// `min_src_len` long; destination prefixes cluster on octet boundaries;
/// at most one of the two port fields carries a range (real classifiers
/// rarely range both); protocols are TCP/UDP/ICMP or any. Rules are in
/// priority order (insert with `InsertSorted` semantics: earlier = higher
/// priority under equal care counts).
///
/// # Panics
///
/// Panics on a degenerate configuration (`rules == 0` or
/// `min_src_len > 32`).
#[must_use]
pub fn generate(config: &PacketClassConfig) -> Vec<ClassifierRule> {
    assert!(config.rules > 0, "need at least one rule");
    assert!(config.min_src_len <= 32, "source prefix length exceeds 32");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.rules);
    for i in 0..config.rules {
        let src_len = rng.gen_range(config.min_src_len..=32);
        let src = (rng.gen::<u32>() & prefix_mask(src_len), src_len);
        let dst_len = [0u8, 8, 16, 24, 32][rng.gen_range(0..5usize)];
        let dst = (rng.gen::<u32>() & prefix_mask(dst_len), dst_len);
        let range_on_sport = rng.gen_bool(0.5);
        let sport = port_constraint(&mut rng, range_on_sport);
        let dport = port_constraint(&mut rng, !range_on_sport);
        let proto = match rng.gen_range(0..4) {
            0 => None,
            1 => Some(1),  // ICMP
            2 => Some(6),  // TCP
            _ => Some(17), // UDP
        };
        out.push(ClassifierRule {
            src,
            dst,
            sport,
            dport,
            proto,
            action: u64::try_from(i).expect("rule count fits u64"),
        });
    }
    out
}

fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

fn port_constraint(rng: &mut SmallRng, allow_range: bool) -> PortMatch {
    let roll: f64 = rng.gen();
    if allow_range && roll < 0.30 {
        let a: u16 = rng.gen();
        let b: u16 = rng.gen();
        PortMatch::Range(a.min(b), a.max(b))
    } else if roll < 0.65 {
        PortMatch::Any
    } else {
        // Well-known service ports dominate exact matches.
        PortMatch::Exact([22u16, 25, 53, 80, 123, 443, 8080][rng.gen_range(0..7usize)])
    }
}

/// A biased lookup trace: `hit_fraction` of the packets are sampled from
/// random rules' match sets, the rest are uniform headers (mostly misses).
///
/// # Panics
///
/// Panics if `rules` is empty or `hit_fraction` is outside `[0, 1]`.
#[must_use]
pub fn flow_trace(
    rules: &[ClassifierRule],
    lookups: usize,
    hit_fraction: f64,
    seed: u64,
) -> Vec<FiveTuple> {
    assert!(!rules.is_empty(), "need at least one rule");
    assert!(
        (0.0..=1.0).contains(&hit_fraction),
        "hit fraction must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..lookups)
        .map(|_| {
            if rng.gen_bool(hit_fraction) {
                let r = &rules[rng.gen_range(0..rules.len())];
                r.random_member(&mut rng)
            } else {
                FiveTuple {
                    src: rng.gen(),
                    dst: rng.gen(),
                    sport: rng.gen(),
                    dport: rng.gen(),
                    proto: rng.gen(),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::key::SearchKey;

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let a = generate(&PacketClassConfig::scaled(500));
        let b = generate(&PacketClassConfig::scaled(500));
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let mut ranged_both = 0;
        for r in &a {
            assert!(r.src.1 >= 14 && r.src.1 <= 32);
            assert!(matches!(r.dst.1, 0 | 8 | 16 | 24 | 32));
            if matches!(r.sport, PortMatch::Range(..)) && matches!(r.dport, PortMatch::Range(..)) {
                ranged_both += 1;
            }
        }
        assert_eq!(ranged_both, 0, "at most one port field carries a range");
    }

    #[test]
    fn lowered_entries_agree_with_reference_matches() {
        let spec = classifier_spec();
        let rules = generate(&PacketClassConfig::scaled(60));
        let mut rng = SmallRng::seed_from_u64(7);
        for r in &rules {
            let entries = spec.lower(&r.to_pattern()).expect("rule lowers");
            assert!(!entries.is_empty());
            // Members hit exactly one cover entry; non-members hit none.
            for _ in 0..10 {
                let pkt = r.random_member(&mut rng);
                let key = SearchKey::new(pkt.pack(), 128);
                let hits = entries.iter().filter(|e| e.matches(&key)).count();
                assert_eq!(hits, 1, "member {pkt:?} of {r:?}");
            }
            for _ in 0..10 {
                let pkt = FiveTuple {
                    src: rng.gen(),
                    dst: rng.gen(),
                    sport: rng.gen(),
                    dport: rng.gen(),
                    proto: rng.gen(),
                };
                let key = SearchKey::new(pkt.pack(), 128);
                let lowered_hit = entries.iter().any(|e| e.matches(&key));
                assert_eq!(lowered_hit, r.matches(&pkt), "{pkt:?} vs {r:?}");
            }
        }
    }

    #[test]
    fn flow_trace_hits_at_roughly_the_requested_rate() {
        let rules = generate(&PacketClassConfig::scaled(100));
        let trace = flow_trace(&rules, 2_000, 0.8, 42);
        assert_eq!(trace.len(), 2_000);
        let hits = trace
            .iter()
            .filter(|p| rules.iter().any(|r| r.matches(p)))
            .count();
        // At least the sampled 80% hit; uniform headers may also match.
        assert!(hits >= 1_500, "hits {hits}");
    }

    #[test]
    fn pack_places_fields_msb_first() {
        let p = FiveTuple {
            src: 0xAABB_CCDD,
            dst: 0x1122_3344,
            sport: 0x5566,
            dport: 0x7788,
            proto: 0x99,
        };
        assert_eq!(p.pack(), 0xAABB_CCDD_1122_3344_5566_7788_9900_0000u128);
    }
}
