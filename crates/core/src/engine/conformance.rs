//! Reusable conformance suite for [`SearchEngine`] implementations.
//!
//! Every backend — the CA-RAM table, the subsystem adapter, the CAM
//! baselines, the software-index bridge — must behave identically under the
//! trait contract. The checks here are the executable form of that
//! contract; integration tests instantiate them against each backend.
//!
//! The functions panic (via `assert!`) on violation, test-harness style, so
//! a failure names the engine and the offending key.

use super::{EngineOutcome, SearchEngine};
use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;
use crate::stats::SearchStats;

/// One record plus a search key expected to find it.
///
/// The probe is separate from the record because backends differ in match
/// semantics: an exact-match device is probed with the stored value itself,
/// while a longest-prefix backend is probed with any member address of the
/// stored prefix.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// The record to insert.
    pub record: Record,
    /// A key that must hit once (and only while) the record is stored.
    pub probe: SearchKey,
}

impl Probe {
    /// An exact-match probe: stores a binary key and probes with its value.
    #[must_use]
    pub fn exact(value: u128, bits: u32, data: u64) -> Self {
        Self {
            record: Record::new(TernaryKey::binary(value, bits), data),
            probe: SearchKey::new(value, bits),
        }
    }

    /// A ternary probe: stores a masked pattern and probes with a member.
    #[must_use]
    pub fn ternary(value: u128, dont_care: u128, bits: u32, member: u128, data: u64) -> Self {
        Self {
            record: Record::new(TernaryKey::ternary(value, dont_care, bits), data),
            probe: SearchKey::new(member, bits),
        }
    }
}

/// Checks batch ≡ serial ≡ parallel bit-equivalence and stats-snapshot
/// consistency over an already-loaded engine.
///
/// Serial per-key `search` results are the reference; `search_batch` and
/// `search_batch_parallel_stats` (at several thread counts, including the
/// serial-fallback count 1) must reproduce them exactly, and the parallel
/// statistics must equal a serial accumulation over the same outcomes.
///
/// # Panics
///
/// On any divergence between the three paths or their statistics.
pub fn check_batch_equivalence(engine: &dyn SearchEngine, keys: &[SearchKey]) {
    let name = engine.name().to_owned();
    let serial: Vec<EngineOutcome> = keys.iter().map(|k| engine.search(k)).collect();

    let batch = engine.search_batch(keys);
    assert_eq!(serial, batch, "{name}: search_batch diverged from serial");

    let mut reference = SearchStats::new();
    for o in &serial {
        reference.record(o.hit.is_some(), o.memory_accesses);
    }
    for threads in [0, 1, 3] {
        let (parallel, stats) = engine.search_batch_parallel_stats(keys, threads);
        assert_eq!(
            serial, parallel,
            "{name}: search_batch_parallel(threads={threads}) diverged from serial"
        );
        assert_eq!(
            reference, stats,
            "{name}: parallel stats (threads={threads}) diverged from serial accumulation"
        );
        let replay = engine.search_batch_parallel(keys, threads);
        assert_eq!(
            serial, replay,
            "{name}: search_batch_parallel(threads={threads}) not reproducible"
        );
    }
}

/// Checks hit/miss behavior of a loaded engine: every probe in `probes`
/// must hit (with the probe's key width accepted as-is), every key in
/// `misses` must miss, and batch equivalence must hold over the union.
///
/// Works on read-only engines (e.g. statically built software indexes);
/// use [`check_engine`] for backends that support insert/delete.
///
/// # Panics
///
/// On a missing hit, a spurious hit, or batch divergence.
pub fn check_loaded(engine: &dyn SearchEngine, probes: &[Probe], misses: &[SearchKey]) {
    let name = engine.name().to_owned();
    for p in probes {
        assert_eq!(
            p.probe.bits(),
            engine.key_bits(),
            "{name}: probe width differs from engine key width"
        );
        let outcome = engine.search(&p.probe);
        let hit = outcome
            .hit
            .unwrap_or_else(|| panic!("{name}: probe {:#x} missed", p.probe.value()));
        assert_eq!(
            hit.data,
            p.record.data,
            "{name}: probe {:#x} hit the wrong record",
            p.probe.value()
        );
    }
    for k in misses {
        assert!(
            engine.search(k).hit.is_none(),
            "{name}: key {:#x} hit but was expected to miss",
            k.value()
        );
    }

    let mut all: Vec<SearchKey> = Vec::with_capacity(probes.len() + misses.len());
    // Interleave hits and misses so every shard of the parallel run sees both.
    let mut m = misses.iter();
    for p in probes {
        all.push(p.probe);
        if let Some(k) = m.next() {
            all.push(*k);
        }
    }
    all.extend(m);
    check_batch_equivalence(engine, &all);
}

/// Full conformance for a mutable engine: insert→search round-trip, miss
/// behavior, batch/parallel bit-equivalence, stats consistency, and
/// delete→miss.
///
/// `engine` must start empty. Probes must be non-overlapping (no probe key
/// may match another probe's record) so the expected hit for each is
/// unambiguous across match semantics.
///
/// # Panics
///
/// On any contract violation, including a failing insert.
pub fn check_engine(engine: &mut dyn SearchEngine, probes: &[Probe], misses: &[SearchKey]) {
    let name = engine.name().to_owned();
    for p in probes {
        assert!(
            engine.search(&p.probe).hit.is_none(),
            "{name}: engine not empty before conformance run"
        );
    }

    for p in probes {
        engine
            .insert(p.record)
            .unwrap_or_else(|e| panic!("{name}: insert failed: {e}"));
    }
    if let Some(records) = engine.occupancy().records {
        assert_eq!(
            records,
            probes.len() as u64,
            "{name}: occupancy does not count the inserted records"
        );
    }

    check_loaded(engine, probes, misses);

    for p in probes {
        let removed = engine.delete(&p.record.key);
        assert!(
            removed >= 1,
            "{name}: delete removed nothing for {:#x}",
            p.record.key.value()
        );
        assert!(
            engine.search(&p.probe).hit.is_none(),
            "{name}: probe {:#x} still hits after delete",
            p.probe.value()
        );
    }
    if let Some(records) = engine.occupancy().records {
        assert_eq!(records, 0, "{name}: occupancy non-zero after deleting all");
    }
}
