//! Lock-free power-of-two-bucketed histograms.
//!
//! The paper's evaluation is built on *distributions* — probe lengths
//! (Fig. 7 is a bucket-occupancy distribution, AMAL is the mean of the
//! per-lookup access distribution), queue depths, and latencies under
//! load. Flat counters ([`crate::stats::SearchStats`]) lose everything but
//! the mean; these histograms keep the shape at a fixed, tiny cost.
//!
//! Values are bucketed by bit width: bucket 0 holds the value 0 and bucket
//! `i ≥ 1` holds `[2^(i-1), 2^i - 1]`. That makes recording branch-free
//! (`64 - leading_zeros`), the memory footprint constant (65 buckets cover
//! the whole `u64` range), and the relative error of any derived quantile
//! at most 2× — the same trade HdrHistogram-style recorders make at their
//! coarsest setting.
//!
//! Two flavours mirror the [`crate::stats`] pair:
//!
//! * [`Histogram`] — a plain value, accumulated single-threaded and
//!   combined with [`Histogram::merge`] (order-independent sums);
//! * [`AtomicHistogram`] — the shared recording cell: relaxed
//!   `fetch_add`s on the hot path, [`AtomicHistogram::snapshot`] to
//!   materialise a plain [`Histogram`], [`AtomicHistogram::merge`] to fold
//!   in a shard's local histogram, exactly like
//!   [`crate::stats::AtomicSearchStats`].

use core::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of power-of-two buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// The bucket index of `value`: 0 for 0, else `1 + floor(log2(value))`.
#[must_use]
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[low, high]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    match index {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A plain-value power-of-two histogram with exact count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Records `n` observations of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[bucket_of(value)] += n;
        self.count += n;
        self.sum += value * n;
    }

    /// Folds another histogram into this one. Merging is
    /// order-independent: all fields are sums.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded values (0.0 when empty, never NaN).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Raw per-bucket counts, including empty buckets.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Index of the highest non-empty bucket (`None` when empty).
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// values: the inclusive upper edge of the first bucket whose
    /// cumulative count reaches `q × count`. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_sign_loss,
            clippy::cast_possible_truncation
        )]
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// The window between two cumulative snapshots of the same recorder:
    /// per-bucket, count, and sum differences, saturating at zero so a
    /// racy snapshot pair degrades to an undercount instead of wrapping.
    #[must_use]
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (slot, (&now, &then)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(&earlier.counts))
        {
            *slot = now.saturating_sub(then);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Observations strictly above `threshold`, counting only buckets
    /// whose entire range exceeds it — a conservative lower bound, since
    /// the bucket containing `threshold` may hold values on either side.
    #[must_use]
    pub fn count_above(&self, threshold: u64) -> u64 {
        let first = bucket_of(threshold) + 1;
        self.counts[first.min(BUCKETS)..].iter().sum()
    }

    /// `(low, high, count)` per bucket, from bucket 0 through the highest
    /// non-empty bucket (nothing when empty) — the export series.
    pub fn series(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        let last = self.max_bucket().map_or(0, |i| i + 1);
        self.counts[..last].iter().enumerate().map(|(i, &c)| {
            let (low, high) = bucket_bounds(i);
            (low, high, c)
        })
    }
}

/// Thread-safe histogram cell: relaxed atomic recording on hot paths,
/// plain-value snapshots for reporting.
///
/// Counter reads in [`AtomicHistogram::snapshot`] are independent relaxed
/// loads: a snapshot taken *while* writers are recording may mix counts
/// from different moments (each total is still exact once writers finish)
/// — the same contract as [`crate::stats::AtomicSearchStats::snapshot`].
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            counts: core::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value` (three relaxed adds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    /// Records `n` observations of `value` at the cost of one — lets a
    /// batch completion amortise recording across its keys.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        self.counts[bucket_of(value)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Relaxed);
    }

    /// Folds a shard's locally accumulated histogram into the cell.
    pub fn merge(&self, shard: &Histogram) {
        for (cell, &c) in self.counts.iter().zip(shard.counts.iter()) {
            if c > 0 {
                cell.fetch_add(c, Relaxed);
            }
        }
        self.count.fetch_add(shard.count, Relaxed);
        self.sum.fetch_add(shard.sum, Relaxed);
    }

    /// A plain-value copy of the current counters.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            counts: core::array::from_fn(|i| self.counts[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
        }
    }

    /// Zeroes the histogram (e.g. per measurement epoch).
    pub fn reset(&self) {
        for cell in &self.counts {
            cell.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
    }
}

impl Clone for AtomicHistogram {
    fn clone(&self) -> Self {
        let out = Self::new();
        out.merge(&self.snapshot());
        out
    }
}

impl From<Histogram> for AtomicHistogram {
    fn from(h: Histogram) -> Self {
        let out = Self::new();
        out.merge(&h);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (low, high) = bucket_bounds(i);
            assert!(low <= high);
            assert_eq!(bucket_of(low), i, "low edge of bucket {i}");
            assert_eq!(bucket_of(high), i, "high edge of bucket {i}");
        }
        // Buckets tile the u64 range with no gaps.
        for i in 1..BUCKETS {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1);
        }
    }

    #[test]
    fn record_count_sum_mean() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert!((h.mean() - 201.2).abs() < 1e-12);
        assert_eq!(h.bucket_counts()[0], 1); // the 0
        assert_eq!(h.bucket_counts()[1], 1); // the 1
        assert_eq!(h.bucket_counts()[2], 2); // 2 and 3
        assert_eq!(h.bucket_counts()[10], 1); // 1000 in [512, 1023]
        assert_eq!(h.max_bucket(), Some(10));
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(7, 3);
        let mut b = Histogram::new();
        for _ in 0..3 {
            b.record(7);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_a_sum() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(100);
        let mut whole = Histogram::new();
        for v in [1, 100, 100] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), 1);
        assert_eq!(h.quantile(1.0), 1023); // upper edge of 1000's bucket
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn diff_is_a_saturating_window() {
        let mut earlier = Histogram::new();
        earlier.record(1);
        earlier.record(100);
        let mut later = earlier.clone();
        later.record(100);
        later.record(5000);
        let window = later.diff(&earlier);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 5100);
        assert_eq!(window.bucket_counts()[bucket_of(100)], 1);
        assert_eq!(window.bucket_counts()[bucket_of(5000)], 1);
        // Reversed operands saturate to empty rather than wrapping.
        let reversed = earlier.diff(&later);
        assert_eq!(reversed.count(), 0);
        assert_eq!(reversed.sum(), 0);
        assert!(reversed.bucket_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn count_above_is_a_conservative_bucket_bound() {
        let mut h = Histogram::new();
        for v in [0, 1, 100, 1000, 100_000] {
            h.record(v);
        }
        // Threshold 1000 lives in bucket [512, 1023]; only strictly
        // higher buckets count.
        assert_eq!(h.count_above(1000), 1);
        assert_eq!(h.count_above(1023), 1);
        assert_eq!(h.count_above(0), 4);
        assert_eq!(h.count_above(u64::MAX), 0);
    }

    #[test]
    fn series_stops_at_last_nonempty_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        let series: Vec<(u64, u64, u64)> = h.series().collect();
        assert_eq!(series.len(), 4); // buckets 0..=3
        assert_eq!(series[0], (0, 0, 1));
        assert_eq!(series[3], (4, 7, 1));
        assert_eq!(Histogram::new().series().count(), 0);
    }

    #[test]
    fn atomic_record_snapshot_merge_reset() {
        let cell = AtomicHistogram::new();
        cell.record(4);
        cell.record(4);
        let mut shard = Histogram::new();
        shard.record(9);
        cell.merge(&shard);
        let snap = cell.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum(), 17);
        assert_eq!(snap.bucket_counts()[3], 2);
        assert_eq!(snap.bucket_counts()[4], 1);
        let cloned = cell.clone();
        assert_eq!(cloned.snapshot(), snap);
        cell.reset();
        assert!(cell.snapshot().is_empty());
        assert_eq!(AtomicHistogram::from(snap.clone()).snapshot(), snap);
    }
}
