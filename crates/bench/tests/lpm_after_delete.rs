//! Cross-engine pin for LPM correctness after deletes.
//!
//! Deleting a prefix drops a `CaRamTable` (and, through it, every
//! [`CaRamSubsystem`] database) into full-reach scan mode: probe chains
//! and buckets may now interleave priorities, so search must compare
//! care counts instead of trusting first-match order. This test drives
//! the same delete-then-backfill prefix workload through every
//! LPM-capable substrate — single search, the trait batch paths, the
//! table's inherent batch/parallel paths, and the baseline
//! (decode-everything) search — and checks each answer against the
//! [`ReferenceModel`].
//!
//! [`CaRamSubsystem`]: ca_ram_core::subsystem::CaRamSubsystem
//! [`ReferenceModel`]: ca_ram_core::oracle::ReferenceModel

use ca_ram_bench::fleet::fleet_for;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;
use ca_ram_core::oracle::{standard_scenarios, ReferenceModel};

const KEY_BITS: u32 = 32;

/// /8, /16, and /24 prefixes nested under 0x0a......, all sharing home
/// bucket (top-6-bit index) 2, plus exact hosts to churn; data values
/// are distinct so a wrong-priority winner is visible.
fn workload() -> (Vec<Record>, Vec<TernaryKey>, Vec<SearchKey>) {
    let prefix = |value: u128, care: u32, data: u64| {
        Record::new(
            TernaryKey::ternary(value, (1u128 << (KEY_BITS - care)) - 1, KEY_BITS),
            data,
        )
    };
    let inserts = vec![
        // Descending care: the sorted-LPM build discipline.
        Record::new(TernaryKey::binary(0x0A11_2233, KEY_BITS), 100),
        Record::new(TernaryKey::binary(0x0A11_2244, KEY_BITS), 101),
        prefix(0x0A11_2200, 24, 24),
        prefix(0x0A11_3300, 24, 25),
        prefix(0x0A11_0000, 16, 16),
        prefix(0x0A22_0000, 16, 17),
        prefix(0x0A00_0000, 8, 8),
    ];
    let deletes = vec![
        TernaryKey::binary(0x0A11_2233, KEY_BITS),
        // The /24 covering most probes: its removal must re-expose the /16.
        TernaryKey::ternary(0x0A11_2200, 0xFF, KEY_BITS),
    ];
    let probes = vec![
        SearchKey::new(0x0A11_2233, KEY_BITS), // deleted host -> /16 now wins
        SearchKey::new(0x0A11_2244, KEY_BITS), // surviving host
        SearchKey::new(0x0A11_2299, KEY_BITS), // deleted /24 -> /16
        SearchKey::new(0x0A11_3377, KEY_BITS), // surviving /24
        SearchKey::new(0x0A22_9999, KEY_BITS), // other /16
        SearchKey::new(0x0A99_0000, KEY_BITS), // only the /8 matches
        SearchKey::new(0x0B00_0000, KEY_BITS), // no match at all
    ];
    (inserts, deletes, probes)
}

/// After the churn, reinsert a backfill prefix (care between the /8 and
/// the deleted /24) through the *plain* insert path, the case that lands
/// records out of care order.
fn backfill() -> Record {
    Record::new(
        TernaryKey::ternary(0x0A11_2200, 0xFFFF, KEY_BITS),
        77, // a /16-care twin of the deleted /24's range
    )
}

#[test]
fn every_lpm_engine_agrees_with_the_model_after_deletes() {
    let scenario = standard_scenarios()
        .into_iter()
        .find(|s| s.name == "lpm-churn-32b")
        .expect("scenario exists");
    let (inserts, deletes, probes) = workload();

    for case in fleet_for(&scenario, &[]) {
        let Some(mut engine) = (case.build)(KEY_BITS) else {
            continue;
        };
        let mut model = ReferenceModel::new(KEY_BITS);
        for r in &inserts {
            engine
                .insert_sorted(*r)
                .unwrap_or_else(|e| panic!("{}: insert failed: {e}", case.name));
            model.insert(*r);
        }
        for k in &deletes {
            let got = engine.delete(k);
            let expected = model.delete(k);
            assert_eq!(
                got > 0,
                expected > 0,
                "{}: delete presence mismatch for {k:?}",
                case.name
            );
        }
        let bf = backfill();
        engine
            .insert(bf)
            .unwrap_or_else(|e| panic!("{}: backfill insert failed: {e}", case.name));
        model.insert(bf);

        // Single-search path.
        for key in &probes {
            let exp = model.expected(key);
            let got = engine.search(key).hit.map(|h| h.data);
            assert!(
                exp.admits(got),
                "{}: search({key:?}) returned {got:?}, model accepts {:?}",
                case.name,
                exp.accepted
            );
        }
        // Trait batch paths (serial and parallel) must agree slot for slot.
        let serial = engine.search_batch(&probes);
        let parallel = engine.search_batch_parallel(&probes, 4);
        for (i, key) in probes.iter().enumerate() {
            let exp = model.expected(key);
            for (path, out) in [("batch", &serial[i]), ("batch_parallel", &parallel[i])] {
                let got = out.hit.as_ref().map(|h| h.data);
                assert!(
                    exp.admits(got),
                    "{}: {path}[{i}] returned {got:?}, model accepts {:?}",
                    case.name,
                    exp.accepted
                );
            }
        }
    }
}

#[test]
fn table_baseline_and_batch_paths_match_after_delete() {
    use ca_ram_bench::fleet::ca_ram_table;
    use ca_ram_core::probe::ProbePolicy;
    use ca_ram_core::table::{Arrangement, OverflowPolicy};

    // Same workload, driven through the table's inherent search variants
    // (hot path, baseline decode-all, batch, parallel batch) — all four
    // must stay bit-identical in full-reach mode. The geometry is the
    // fleet's "ca-ram/linear" design, built directly so the inherent
    // paths are reachable.
    let mut table = ca_ram_table(
        KEY_BITS,
        KEY_BITS - 6,
        Arrangement::Horizontal(1),
        ProbePolicy::Linear,
        OverflowPolicy::Probe {
            max_steps: u32::MAX,
        },
    )
    .expect("32-bit build");
    let (inserts, deletes, probes) = workload();
    for r in &inserts {
        table.insert_sorted(*r).expect("insert");
    }
    for k in &deletes {
        assert!(table.delete(k) > 0, "delete must find {k:?}");
    }
    table.insert(backfill()).expect("backfill");

    let batch = table.search_batch(&probes);
    let parallel = table.search_batch_parallel(&probes, 4);
    for (i, key) in probes.iter().enumerate() {
        let hot = table.search(key);
        let base = table.search_baseline(key);
        let hot_hit = hot.hit.map(|h| (h.record.key, h.record.data));
        for (path, o) in [
            ("baseline", &base),
            ("batch", &batch[i]),
            ("batch_parallel", &parallel[i]),
        ] {
            assert_eq!(
                o.hit.map(|h| (h.record.key, h.record.data)),
                hot_hit,
                "{path} disagrees with the hot path on probe {i} ({key:?})"
            );
        }
    }
}
