//! End-to-end durability through the serving layer: writes ride the
//! shard's group commit (one WAL commit per drained batch), and every
//! *acked* write survives a shutdown-and-recover cycle — including a
//! simulated crash that throws away the final WAL bytes.

use std::path::PathBuf;

use ca_ram_core::engine::SearchEngine;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::storage::wal::SyncPolicy;
use ca_ram_core::storage::{DurableOptions, DurableTable, IndexSpec, TableSpec};
use ca_ram_core::table::{Arrangement, OverflowPolicy, TableConfig};
use ca_ram_service::{SearchService, ServiceConfig};

const KEY_BITS: u32 = 32;

fn spec() -> TableSpec {
    TableSpec {
        config: TableConfig {
            rows_log2: 6,
            row_bits: 1024,
            layout: RecordLayout::new(KEY_BITS, true, 32),
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe {
                max_steps: u32::MAX,
            },
        },
        index: IndexSpec::RangeSelect {
            low: KEY_BITS - 6,
            count: 6,
        },
    }
}

fn temp_dirs(tag: &str, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|i| {
            std::env::temp_dir().join(format!(
                "ca_ram_service_dur_{tag}_{}_{i}",
                std::process::id()
            ))
        })
        .collect()
}

/// Writes acked through the service are recoverable after shutdown.
#[test]
fn acked_service_writes_survive_recovery() {
    let shards = 2;
    let dirs = temp_dirs("ack", shards);
    let opts = DurableOptions {
        sync: SyncPolicy::Flush,
        auto_commit: false, // the shard drain's group commit is the barrier
        ..DurableOptions::default()
    };
    let engines: Vec<Box<dyn SearchEngine>> = dirs
        .iter()
        .map(|d| {
            Box::new(DurableTable::create(d, &spec(), opts.clone()).expect("create"))
                as Box<dyn SearchEngine>
        })
        .collect();
    let config = ServiceConfig {
        shards,
        ..ServiceConfig::default()
    };
    let service = SearchService::new(config, engines).expect("valid service");

    let mut expected: Vec<Record> = Vec::new();
    for i in 0..200u64 {
        let record = Record::new(TernaryKey::binary(u128::from(i) << 1, KEY_BITS), i);
        service.insert_sync(record).expect("insert acked");
        expected.push(record);
    }
    // A few deletes, acked through the same write path.
    for i in 0..10u64 {
        let key = TernaryKey::binary(u128::from(i) << 1, KEY_BITS);
        assert_eq!(service.delete_sync(&key), 1);
        expected.retain(|r| r.key != key);
    }
    // Reads observe writes from the same session before any reopen.
    let hit = service.search_sync(&SearchKey::new(42 << 1, KEY_BITS));
    assert_eq!(hit.hit.map(|h| h.data), Some(42));
    service.shutdown();

    // Recover each shard directory and pool the logical records.
    let mut recovered: Vec<Record> = Vec::new();
    for dir in &dirs {
        let table = DurableTable::open(dir, opts.clone()).expect("recover");
        recovered.extend_from_slice(table.records());
    }
    let key = |r: &Record| (r.key.value(), r.key.dont_care(), r.data);
    let mut recovered_keys: Vec<_> = recovered.iter().map(key).collect();
    let mut expected_keys: Vec<_> = expected.iter().map(key).collect();
    recovered_keys.sort_unstable();
    expected_keys.sort_unstable();
    assert_eq!(recovered_keys, expected_keys);

    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Throwing away the *uncommitted* tail of a shard's WAL (a crash between
/// apply and commit) never resurrects unacked writes nor loses acked ones:
/// the recovered set is exactly a prefix-closed subset of acked writes.
#[test]
fn torn_shard_wal_recovers_acked_prefix() {
    let dirs = temp_dirs("torn", 1);
    let dir = &dirs[0];
    let opts = DurableOptions {
        auto_commit: false,
        ..DurableOptions::default()
    };
    {
        let engines: Vec<Box<dyn SearchEngine>> = vec![Box::new(
            DurableTable::create(dir, &spec(), opts.clone()).expect("create"),
        )];
        let service = SearchService::new(
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            engines,
        )
        .expect("valid service");
        for i in 0..50u64 {
            service
                .insert_sync(Record::new(TernaryKey::binary(u128::from(i), KEY_BITS), i))
                .expect("insert acked");
        }
        service.shutdown();
    }
    // Simulate a torn final write: chop a few bytes off the WAL tail.
    let seg = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .max()
        .expect("a wal segment");
    let bytes = std::fs::read(&seg).expect("read segment");
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).expect("tear tail");

    let table = DurableTable::open(dir, opts).expect("recover despite torn tail");
    assert!(table.recovery().torn_tail);
    let n = table.records().len();
    assert!(n < 50, "torn record must be dropped");
    // Prefix property: exactly records 0..n, in order.
    for (i, r) in table.records().iter().enumerate() {
        assert_eq!(r.key.value(), i as u128);
        assert_eq!(r.data, i as u64);
    }
    let _ = std::fs::remove_dir_all(dir);
}
