//! The request/reply vocabulary of the serving layer.

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ca_ram_core::engine::EngineOutcome;
use ca_ram_core::error::CaRamError;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;

/// One operation submitted to a [`SearchService`](crate::SearchService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOp {
    /// Look up one key.
    Search(SearchKey),
    /// Store a record (append placement).
    Insert(Record),
    /// Store a record maintaining the backend's priority order.
    InsertSorted(Record),
    /// Remove every stored record whose key equals the pattern.
    Delete(TernaryKey),
}

impl ServiceOp {
    /// The key value the router hashes to pick a shard. Ternary don't-care
    /// bits are zeroed by the key constructors, so a record and a search for
    /// its exact stored pattern route identically; see the crate docs for
    /// the multi-shard ternary caveat.
    #[must_use]
    pub fn route_value(&self) -> u128 {
        match self {
            ServiceOp::Search(k) => k.value(),
            ServiceOp::Insert(r) | ServiceOp::InsertSorted(r) => r.key.value(),
            ServiceOp::Delete(k) => k.value(),
        }
    }

    /// True for operations that need exclusive engine access.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, ServiceOp::Search(_))
    }
}

/// Why a request was completed without touching an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline passed while the request was queued.
    DeadlineExpired,
    /// The service shut down with the request still queued.
    Shutdown,
}

/// The outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceReply {
    /// A search completed (hit or miss).
    Search(EngineOutcome),
    /// An insert completed with the engine's verdict.
    Insert(Result<(), CaRamError>),
    /// A delete completed, removing this many stored copies.
    Delete(u32),
    /// The request was shed; no engine was consulted and no partial result
    /// exists.
    Shed(ShedReason),
}

/// A finished request: the reply plus its measured service timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// What happened.
    pub reply: ServiceReply,
    /// Time spent queued (submission → worker pickup).
    pub queue_wait: Duration,
    /// Full request latency (submission → completion).
    pub total: Duration,
    /// True if this search shared an engine probe with duplicate in-flight
    /// keys (degradation-ladder rung 2).
    pub coalesced: bool,
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The target shard's bounded queue is full (load shedding at the door).
    QueueFull {
        /// The shard whose queue was full.
        shard: usize,
        /// The configured queue capacity.
        depth: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { shard, depth } => {
                write!(f, "shard {shard} queue full ({depth} requests)")
            }
            AdmissionError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl Error for AdmissionError {}

/// The slot a worker fills and a waiter observes.
#[derive(Debug)]
pub(crate) struct Slot {
    done: Mutex<Option<Completion>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            done: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    pub(crate) fn fill(&self, completion: Completion) {
        let mut done = self.done.lock().expect("completion slot poisoned");
        debug_assert!(done.is_none(), "request completed twice");
        *done = Some(completion);
        drop(done);
        self.ready.notify_all();
    }
}

/// A handle on one in-flight request; wait on it for the [`Completion`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        Self { slot }
    }

    /// Blocks until the request completes.
    ///
    /// # Panics
    ///
    /// Panics if the worker that owned the request panicked.
    #[must_use]
    pub fn wait(self) -> Completion {
        let mut done = self.slot.done.lock().expect("completion slot poisoned");
        loop {
            if let Some(completion) = done.take() {
                return completion;
            }
            done = self
                .slot
                .ready
                .wait(done)
                .expect("completion slot poisoned");
        }
    }

    /// Takes the completion if the request already finished.
    ///
    /// # Panics
    ///
    /// Panics if the worker that owned the request panicked.
    #[must_use]
    pub fn try_take(&self) -> Option<Completion> {
        self.slot
            .done
            .lock()
            .expect("completion slot poisoned")
            .take()
    }
}

/// A queued request: the operation plus the timestamps the worker needs to
/// enforce deadlines and measure waits.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) op: ServiceOp,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) slot: Arc<Slot>,
}

impl PendingRequest {
    /// Completes the request, stamping the timeline relative to `picked_up`
    /// (when the worker drained it) and now.
    pub(crate) fn complete(self, reply: ServiceReply, picked_up: Instant, coalesced: bool) {
        let completion = Completion {
            reply,
            queue_wait: picked_up.saturating_duration_since(self.enqueued),
            total: self.enqueued.elapsed(),
            coalesced,
        };
        self.slot.fill(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_value_follows_the_key() {
        let k = SearchKey::new(0xAB, 16);
        assert_eq!(ServiceOp::Search(k).route_value(), 0xAB);
        let r = Record::new(TernaryKey::binary(0xCD, 16), 7);
        assert_eq!(ServiceOp::Insert(r).route_value(), 0xCD);
        assert_eq!(ServiceOp::InsertSorted(r).route_value(), 0xCD);
        assert_eq!(
            ServiceOp::Delete(TernaryKey::binary(0xEF, 16)).route_value(),
            0xEF
        );
    }

    #[test]
    fn writes_are_writes() {
        let r = Record::new(TernaryKey::binary(1, 8), 0);
        assert!(!ServiceOp::Search(SearchKey::new(1, 8)).is_write());
        assert!(ServiceOp::Insert(r).is_write());
        assert!(ServiceOp::InsertSorted(r).is_write());
        assert!(ServiceOp::Delete(TernaryKey::binary(1, 8)).is_write());
    }

    #[test]
    fn ticket_round_trip() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        assert!(ticket.try_take().is_none());
        slot.fill(Completion {
            reply: ServiceReply::Delete(3),
            queue_wait: Duration::from_micros(5),
            total: Duration::from_micros(9),
            coalesced: false,
        });
        let completion = ticket.wait();
        assert_eq!(completion.reply, ServiceReply::Delete(3));
        assert!(!completion.coalesced);
    }

    #[test]
    fn admission_error_formats() {
        let full = AdmissionError::QueueFull { shard: 2, depth: 8 };
        assert!(full.to_string().contains("shard 2"));
        assert!(AdmissionError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
