//! Quickstart: build a CA-RAM table and drive it through the unified
//! `SearchEngine` interface — insert, search, batch search, delete.
//!
//! Every search substrate in this workspace (CA-RAM tables, the CAM/TCAM
//! baselines, the software indexes) implements the same trait, so the code
//! below works unchanged against any of them.
//!
//! Run with: `cargo run --example quickstart`

use ca_ram::core::engine::SearchEngine;
use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::table::{CaRamTable, TableConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A table of 256 buckets, each holding eight 32-bit keys with 16 bits
    // of data stored alongside (so a hit returns the data with the row —
    // no second memory access, unlike a CAM + data RAM).
    let layout = RecordLayout::new(32, false, 16);
    let row_bits = 8 * layout.slot_bits();
    let config = TableConfig::single_slice(8, row_bits, layout);

    // The index generator is the hash function in hardware: here, the low
    // 8 key bits select the bucket.
    let mut table = CaRamTable::new(config, Box::new(RangeSelect::new(0, 8)))?;

    // From here on, everything goes through the unified engine interface.
    let engine: &mut dyn SearchEngine = &mut table;
    let occ = engine.occupancy();
    println!(
        "engine \"{}\": {}-bit keys, capacity {} records",
        engine.name(),
        engine.key_bits(),
        occ.capacity.unwrap_or(0)
    );

    // Insert a few records. In hardware this is the CAM-mode insert
    // operation; the index generator places each record in its bucket.
    for (key, data) in [(0x1111_2222u128, 1u64), (0xAAAA_BBBB, 2), (0x1234_5678, 3)] {
        engine.insert(Record::new(TernaryKey::binary(key, 32), data))?;
    }
    let occ = engine.occupancy();
    println!(
        "inserted {} records (load factor {:.4})",
        occ.records.unwrap_or(0),
        occ.load_factor().unwrap_or(0.0)
    );

    // Search: one memory access fetches the bucket, the match processors
    // compare all candidates in parallel.
    let outcome = engine.search(&SearchKey::new(0xAAAA_BBBB, 32));
    let hit = outcome.hit.expect("the key was inserted");
    println!(
        "search 0xAAAABBBB: data = {} ({} memory access(es))",
        hit.data, outcome.memory_accesses
    );

    // A miss still costs one access (the home bucket must be examined).
    let miss = engine.search(&SearchKey::new(0xDEAD_BEEF, 32));
    println!(
        "search 0xDEADBEEF: {:?} ({} memory access(es))",
        miss.hit.map(|h| h.data),
        miss.memory_accesses
    );

    // Batched search: the serial and sharded-parallel paths return
    // bit-identical outcomes (the engine conformance contract).
    let keys: Vec<SearchKey> = (0..1_000u128)
        .map(|i| SearchKey::new(0x1111_2222 + (i % 3) * 0x1000, 32))
        .collect();
    let serial = engine.search_batch(&keys);
    let parallel = engine.search_batch_parallel(&keys, 4);
    assert_eq!(serial, parallel);
    println!(
        "batched {} lookups: {} hits (serial == parallel)",
        keys.len(),
        serial.iter().filter(|o| o.hit.is_some()).count()
    );

    // Delete removes the record and frees the slot.
    let removed = engine.delete(&TernaryKey::binary(0x1111_2222, 32));
    println!("deleted 0x11112222: {removed} copy(ies) removed");
    assert!(engine
        .search(&SearchKey::new(0x1111_2222, 32))
        .hit
        .is_none());

    // The build statistics the paper's evaluation is based on (inherent
    // `CaRamTable` API — the trait exposes the common subset only).
    let report = table.load_report();
    println!(
        "load factor {:.4}, spilled {:.2}%, AMAL {:.3}",
        report.load_factor(),
        report.spilled_records_pct(),
        report.amal_uniform
    );
    Ok(())
}
