//! A functional binary CAM — exact-match only, as used for the trigram
//! comparison (Sec. 4.3, the Yamagata et al. device).

use ca_ram_core::key::SearchKey;
use ca_ram_hwmodel::{CamGeometry, CellKind};

/// A stored binary CAM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcamEntry {
    /// The stored key (no don't-care symbols).
    pub key: u128,
    /// Associated data.
    pub data: u64,
}

/// A fixed-capacity binary CAM with index-ordered priority.
#[derive(Debug, Clone)]
pub struct BinaryCam {
    key_bits: u32,
    slots: Vec<Option<BcamEntry>>,
}

impl BinaryCam {
    /// Creates an empty binary CAM.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `key_bits` is 0 or > 128.
    #[must_use]
    pub fn new(capacity: usize, key_bits: u32) -> Self {
        assert!(capacity > 0, "a CAM needs at least one entry");
        assert!(key_bits > 0 && key_bits <= 128, "key width must be 1..=128");
        Self {
            key_bits,
            slots: vec![None; capacity],
        }
    }

    /// Total entry slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the CAM holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Appends an entry at the first free slot, returning its index, or
    /// `None` when full.
    ///
    /// # Panics
    ///
    /// Panics if `key` has bits above `key_bits`.
    pub fn push(&mut self, key: u128, data: u64) -> Option<usize> {
        assert!(
            self.key_bits == 128 || key < (1u128 << self.key_bits),
            "key has bits above the device width {}",
            self.key_bits
        );
        let free = self.slots.iter().position(Option::is_none)?;
        self.slots[free] = Some(BcamEntry { key, data });
        Some(free)
    }

    /// Invalidates every entry storing `key`, returning the number removed.
    pub fn remove(&mut self, key: u128) -> u32 {
        let mut removed = 0u32;
        for slot in &mut self.slots {
            if slot.is_some_and(|e| e.key == key) {
                *slot = None;
                removed += 1;
            }
        }
        removed
    }

    /// One exact-match search; lowest-index match wins.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch or a masked search key — binary CAMs
    /// cannot implement don't-care search (Sec. 2.2 motivates TCAM for
    /// that).
    #[must_use]
    pub fn search(&self, key: &SearchKey) -> Option<(usize, BcamEntry)> {
        assert_eq!(key.bits(), self.key_bits, "search key width mismatch");
        assert!(
            !key.is_masked(),
            "binary CAM cannot search with don't-care bits"
        );
        self.slots
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.filter(|e| e.key == key.value()).map(|e| (i, e)))
    }

    /// Device geometry for the cost models.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a CAM cell.
    #[must_use]
    pub fn geometry(&self, cell: CellKind) -> CamGeometry {
        CamGeometry::new(self.slots.len() as u64, self.key_bits, cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_search() {
        let mut c = BinaryCam::new(4, 64);
        assert!(c.is_empty());
        assert_eq!(c.push(0xAAAA, 1), Some(0));
        assert_eq!(c.push(0xBBBB, 2), Some(1));
        assert_eq!(c.len(), 2);
        let (i, e) = c.search(&SearchKey::new(0xBBBB, 64)).unwrap();
        assert_eq!((i, e.data), (1, 2));
        assert!(c.search(&SearchKey::new(0xCCCC, 64)).is_none());
    }

    #[test]
    fn full_cam_rejects_push() {
        let mut c = BinaryCam::new(2, 8);
        assert!(c.push(1, 0).is_some());
        assert!(c.push(2, 0).is_some());
        assert_eq!(c.push(3, 0), None);
    }

    #[test]
    fn duplicate_keys_resolved_by_priority() {
        let mut c = BinaryCam::new(4, 16);
        c.push(0x77, 1);
        c.push(0x77, 2);
        let (i, e) = c.search(&SearchKey::new(0x77, 16)).unwrap();
        assert_eq!((i, e.data), (0, 1));
    }

    #[test]
    fn geometry_uses_bits_as_symbols() {
        let c = BinaryCam::new(1000, 128);
        let g = c.geometry(CellKind::BinaryCamStacked);
        assert_eq!(g.total_cells(), 128_000);
    }

    #[test]
    #[should_panic(expected = "don't-care")]
    fn masked_search_rejected() {
        let c = BinaryCam::new(2, 8);
        let _ = c.search(&SearchKey::with_mask(0, 1, 8));
    }
}
