//! Observability v2 invariants, property-tested: every sampled
//! [`RequestTrace`] is well-formed (monotone timestamps, properly nested
//! stages, exactly one terminal), tracing never changes what the service
//! answers (the traced-twin equivalence of the core suite, lifted to the
//! full concurrent serving path), per-stage span gaps explain the
//! end-to-end latency, and the flight-recorder dump conserves requests
//! (completed + shed + rejected == admitted).

use std::collections::HashSet;
use std::time::Duration;

use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::table::{CaRamTable, TableConfig};
use ca_ram_core::telemetry::SpanStage;
use ca_ram_service::{
    FlightEventKind, SearchService, ServiceConfig, ServiceOp, ServiceReply, FLIGHT_SCHEMA,
};
use proptest::prelude::*;

const KEY_BITS: u32 = 32;

fn table() -> CaRamTable {
    let layout = RecordLayout::new(KEY_BITS, false, 16);
    let config = TableConfig::single_slice(6, 8 * layout.slot_bits(), layout);
    CaRamTable::new(config, Box::new(RangeSelect::new(0, 6))).expect("valid config")
}

fn service(shards: usize, trace_period: u64) -> SearchService {
    let config = ServiceConfig {
        shards,
        trace_sample_period: trace_period,
        trace_topk: 8,
        trace_recent: 64,
        ..ServiceConfig::default()
    };
    let engines = (0..shards).map(|_| Box::new(table()) as _).collect();
    SearchService::new(config, engines).expect("valid service")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Traced-twin equivalence over the concurrent path: a fully traced
    /// service (period 1) and an untraced one answer an identical
    /// workload identically, and every retained trace validates.
    #[test]
    fn traced_twin_answers_match_and_traces_validate(
        seed in any::<u64>(),
        records in 4usize..40,
        batch in 1usize..24,
        shards in 1usize..4,
    ) {
        let traced = service(shards, 1);
        let twin = service(shards, 0);
        prop_assert_eq!(traced.trace_period(), 1);
        prop_assert_eq!(twin.trace_period(), 0);

        // The same deterministic table on both services.
        let mut inserted = Vec::new();
        for i in 0..records {
            let value = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                & 0xFFFF_FFFF;
            let record = Record::new(TernaryKey::binary(value.into(), KEY_BITS), i as u64);
            if traced.insert_sync(record).is_ok() {
                twin.insert_sync(record).expect("twin capacity matches");
                inserted.push(value);
            }
        }
        prop_assume!(!inserted.is_empty());

        // Mixed singles (hits and misses) answered identically.
        for (i, &value) in inserted.iter().enumerate() {
            let probe = if i % 3 == 0 { value ^ 1 } else { value };
            let key = SearchKey::new(probe.into(), KEY_BITS);
            prop_assert_eq!(traced.search_sync(&key), twin.search_sync(&key));
        }

        // One multi-shard batch answered identically, in order.
        let keys: Vec<SearchKey> = inserted
            .iter()
            .cycle()
            .take(batch)
            .map(|&v| SearchKey::new(v.into(), KEY_BITS))
            .collect();
        let traced_batch = traced
            .try_submit_batch(&keys)
            .expect("room")
            .wait();
        let twin_batch = twin.try_submit_batch(&keys).expect("room").wait();
        prop_assert_eq!(traced_batch.outcomes(), twin_batch.outcomes());
        prop_assert_eq!(traced_batch.shed(), 0);

        // Every retained trace is well-formed, and period 1 retained some.
        let traces = traced.retained_traces();
        prop_assert!(!traces.is_empty(), "period 1 must retain traces");
        let mut ids = HashSet::new();
        for trace in &traces {
            if let Err(err) = trace.validate() {
                return Err(TestCaseError::Fail(err));
            }
            prop_assert!(ids.insert((trace.shard, trace.id)), "trace ids unique per shard");
            // Monotone timestamps and exactly-one-terminal are part of
            // validate(); also pin the span-accounting contract.
            let explained: u64 = trace.stage_gaps().iter().map(|(_, g)| g).sum();
            prop_assert_eq!(explained, trace.total_ns());
            prop_assert!(trace.span_coverage() >= 0.9999);
        }
        // The untraced twin allocated no traces at all.
        prop_assert!(twin.retained_traces().is_empty());
        traced.shutdown();
        twin.shutdown();
    }

    /// A completed single-request trace walks the full pipeline: every
    /// non-terminal stage appears when the request reached the engine.
    #[test]
    fn completed_traces_cover_the_whole_pipeline(value in any::<u32>()) {
        let service = service(1, 1);
        let record = Record::new(TernaryKey::binary(value.into(), KEY_BITS), 1);
        service.insert_sync(record).expect("fits");
        let outcome = service.search_sync(&SearchKey::new(value.into(), KEY_BITS));
        prop_assert!(outcome.hit.is_some());
        let traces = service.retained_traces();
        let full = traces.iter().find(|t| {
            t.terminal() == Some(SpanStage::Completed)
                && t.events().iter().any(|e| e.stage == SpanStage::EngineDone)
        });
        let Some(trace) = full else {
            return Err(TestCaseError::Fail(
                "no completed engine-path trace retained".to_string(),
            ));
        };
        let stages: Vec<SpanStage> = trace.events().iter().map(|e| e.stage).collect();
        for want in [
            SpanStage::Admitted,
            SpanStage::Enqueued,
            SpanStage::PickedUp,
            SpanStage::Merged,
            SpanStage::EngineStart,
            SpanStage::EngineDone,
            SpanStage::Completed,
        ] {
            prop_assert!(stages.contains(&want), "missing stage {:?} in {:?}", want, stages);
        }
        prop_assert!(trace.batch_keys().is_some());
        service.shutdown();
    }
}

/// Shutdown with queued work sheds every request as a traced anomaly and
/// the flight dump conserves requests exactly.
#[test]
fn shed_and_shutdown_traces_conserve_requests() {
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 64,
        trace_sample_period: 1,
        default_deadline: Some(Duration::from_nanos(1)),
        ..ServiceConfig::default()
    };
    let service = SearchService::new(config, vec![Box::new(table())]).expect("valid service");

    // A deadline of 1ns expires before any worker pickup: every admitted
    // request sheds, exercising the anomaly retention path.
    let tickets: Vec<_> = (0..32)
        .filter_map(|i| {
            service
                .try_submit(ServiceOp::Search(SearchKey::new(i, KEY_BITS)))
                .ok()
        })
        .collect();
    let mut sheds = 0usize;
    for ticket in tickets {
        if matches!(ticket.wait().reply, ServiceReply::Shed(_)) {
            sheds += 1;
        }
    }
    assert!(sheds > 0, "1ns deadlines must shed");

    let totals = service.snapshot().totals();
    let dump = service.flight_json("test shed storm");
    assert!(dump.contains(FLIGHT_SCHEMA));
    assert!(dump.contains("\"shed_deadline\""));

    // Conservation: terminal counters partition the admitted set.
    let completed = totals.accepted - totals.shed_deadline - totals.shed_shutdown;
    assert_eq!(
        completed + totals.shed_deadline + totals.shed_shutdown + totals.rejected,
        totals.accepted + totals.rejected,
        "every admitted request reaches exactly one terminal"
    );

    // Shed traces are retained as anomalies and validate.
    let traces = service.retained_traces();
    let shed_traces = traces
        .iter()
        .filter(|t| t.terminal() == Some(SpanStage::Shed))
        .count();
    assert!(shed_traces > 0, "sheds are always-kept anomalies");
    for trace in &traces {
        trace.validate().expect("anomaly trace validates");
    }
    service.shutdown();
}

/// Rejects at a full queue always land in the flight ring, even with
/// sampling off, and ladder transitions report the reject rung.
#[test]
fn reject_storm_hits_the_flight_ring_without_sampling() {
    use std::sync::Arc;

    // A tiny queue plus a slow engine forces QueueFull rejections.
    struct Slow(CaRamTable);
    impl ca_ram_core::engine::SearchEngine for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn key_bits(&self) -> u32 {
            self.0.key_bits()
        }
        fn search(&self, key: &SearchKey) -> ca_ram_core::engine::EngineOutcome {
            std::thread::sleep(Duration::from_millis(20));
            self.0.search(key).into()
        }
        fn insert(&mut self, record: Record) -> ca_ram_core::error::Result<()> {
            self.0.insert(record).map(|_| ())
        }
        fn delete(&mut self, key: &TernaryKey) -> u32 {
            self.0.delete(key)
        }
        fn occupancy(&self) -> ca_ram_core::engine::EngineReport {
            self.0.occupancy()
        }
    }
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 2,
        trace_sample_period: 0,
        ..ServiceConfig::default()
    };
    let service = SearchService::new(config, vec![Box::new(Slow(table()))]).expect("valid service");
    let service = Arc::new(service);

    let mut rejected = 0u64;
    let mut tickets = Vec::new();
    for i in 0..64u64 {
        match service.try_submit(ServiceOp::Search(SearchKey::new(u128::from(i), KEY_BITS))) {
            Ok(t) => tickets.push(t),
            Err(_) => rejected += 1,
        }
    }
    assert!(
        rejected > 0,
        "a 2-deep queue over a 20ms engine must reject"
    );
    for ticket in tickets {
        let _ = ticket.wait();
    }

    let totals = service.snapshot().totals();
    assert_eq!(totals.rejected, rejected);
    // Sampling is off, yet the refusals are in the flight ring.
    let dump = service.flight_json("reject storm");
    assert!(dump.contains(&format!("\"kind\": \"{}\"", FlightEventKind::Reject.name())));
    // And no traces were allocated for them.
    assert!(service.retained_traces().is_empty());
    // The ladder observed the reject rung at some drain.
    let transitions = service.take_ladder_transitions();
    assert!(
        transitions
            .iter()
            .any(|t| t.to == ca_ram_service::LadderRung::Reject),
        "transitions: {transitions:?}"
    );
}
