//! Process technology nodes and first-order scaling rules.
//!
//! The paper compares devices published at different feature sizes — the
//! match-processor prototype was synthesized with a 0.16 µm standard-cell
//! library while the cell-size and power comparisons use 130 nm silicon
//! results. [`ProcessNode`] captures a feature size and provides the
//! classical constant-field ("Dennard") scaling rules the paper applies when
//! it performs "optimistic scaling" of published datapoints.

use crate::units::{Nanoseconds, SquareMicrons};

/// A CMOS process node identified by its drawn feature size in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessNode {
    feature_nm: u32,
}

impl ProcessNode {
    /// The 0.16 µm node used for the match-processor prototype (Table 1).
    pub const N160: Self = Self { feature_nm: 160 };
    /// The 130 nm node of the published TCAM/eDRAM silicon (Figs. 6 and 8).
    pub const N130: Self = Self { feature_nm: 130 };
    /// 250 nm, the node of the Yamagata et al. stacked-capacitor CAM.
    pub const N250: Self = Self { feature_nm: 250 };

    /// Creates a node with the given drawn feature size in nanometres.
    ///
    /// # Panics
    ///
    /// Panics if `feature_nm` is zero.
    #[must_use]
    pub fn new(feature_nm: u32) -> Self {
        assert!(feature_nm > 0, "feature size must be positive");
        Self { feature_nm }
    }

    /// The drawn feature size in nanometres.
    #[must_use]
    pub fn feature_nm(self) -> u32 {
        self.feature_nm
    }

    /// Linear shrink factor from `self` to `target` (< 1 when scaling down).
    #[must_use]
    pub fn linear_scale_to(self, target: ProcessNode) -> f64 {
        f64::from(target.feature_nm) / f64::from(self.feature_nm)
    }

    /// Scales an area published at this node to `target`, assuming ideal
    /// quadratic shrink — the "optimistic scaling" the paper applies to the
    /// Yamagata et al. CAM (Sec. 4.3).
    #[must_use]
    pub fn scale_area_to(self, area: SquareMicrons, target: ProcessNode) -> SquareMicrons {
        let s = self.linear_scale_to(target);
        area * (s * s)
    }

    /// Scales a gate/wire delay published at this node to `target`, assuming
    /// delay tracks the linear feature size (first-order constant-field
    /// scaling; wire-dominated paths scale worse, so this is optimistic for
    /// the scaled design).
    #[must_use]
    pub fn scale_delay_to(self, delay: Nanoseconds, target: ProcessNode) -> Nanoseconds {
        delay * self.linear_scale_to(target)
    }
}

impl core::fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} nm", self.feature_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_nodes() {
        assert_eq!(ProcessNode::N160.feature_nm(), 160);
        assert_eq!(ProcessNode::N130.feature_nm(), 130);
        assert_eq!(format!("{}", ProcessNode::N130), "130 nm");
    }

    #[test]
    fn area_scales_quadratically() {
        let a = SquareMicrons::new(100.0);
        let scaled = ProcessNode::N250.scale_area_to(a, ProcessNode::N130);
        let expect = 100.0 * (130.0 / 250.0) * (130.0 / 250.0);
        assert!((scaled.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn delay_scales_linearly() {
        let d = Nanoseconds::new(4.85);
        let scaled = ProcessNode::N160.scale_delay_to(d, ProcessNode::N130);
        assert!((scaled.value() - 4.85 * 130.0 / 160.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_to_same_node_is_identity() {
        let a = SquareMicrons::new(42.0);
        let same = ProcessNode::N130.scale_area_to(a, ProcessNode::N130);
        assert!((same.value() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn upscaling_grows_area() {
        let a = SquareMicrons::new(1.0);
        let up = ProcessNode::N130.scale_area_to(a, ProcessNode::N250);
        assert!(up.value() > 1.0);
    }
}
