//! Spell-check dictionaries — the nearest-match pattern workload.
//!
//! The paper's future-work section points CA-RAM at cognitive-model and
//! approximate retrievals; the concrete, benchmarkable instance is a
//! spell checker: store a dictionary of fixed-width words as binary keys,
//! and resolve a misspelling to its nearest stored word. The pattern
//! compiler lowers a [`Pattern::NearestMatch`] query into a distance
//! ladder of unit-masked probes (exact first, then every 1-substitution
//! mask, then every 2-substitution mask, …), so the first hit is a
//! nearest word by **Hamming distance over character units** — substitution
//! typos only, not insertions or deletions (edit distance needs a
//! different key geometry).
//!
//! [`Pattern::NearestMatch`]: ca_ram_core::pattern::Pattern::NearestMatch

use std::collections::HashSet;

use ca_ram_core::pattern::PatternSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The pattern spec dictionary workloads compile through: `word_len`
/// byte-unit characters, nearest-match with the given substitution budget.
///
/// # Panics
///
/// Panics if the geometry is rejected by the compiler (zero or over-wide
/// words, or a distance outside `1..=word_len`).
#[must_use]
pub fn dictionary_spec(word_len: usize, max_distance: u32) -> PatternSpec {
    let bytes = u32::try_from(word_len).expect("word length fits u32");
    PatternSpec::dictionary(bytes, max_distance)
}

/// Packs a word of at most 16 bytes into a 128-bit key, least-significant
/// byte first (unit 0 of the nearest-match ladder is the first character).
///
/// # Panics
///
/// Panics if `word` exceeds 16 bytes.
#[must_use]
pub fn pack_word(word: &str) -> u128 {
    let bytes = word.as_bytes();
    assert!(bytes.len() <= 16, "word {word:?} exceeds 16 bytes");
    let mut key: u128 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        key |= u128::from(b) << (8 * i);
    }
    key
}

/// Configuration of the synthetic dictionary generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictionaryConfig {
    /// Distinct words to generate.
    pub words: usize,
    /// Exact word length in characters (1..=16; fixed-width keys).
    pub word_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DictionaryConfig {
    fn default() -> Self {
        Self {
            words: 20_000,
            word_len: 8,
            seed: 0xD1C7,
        }
    }
}

impl DictionaryConfig {
    /// The default shape at a chosen word count.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn scaled(words: usize) -> Self {
        assert!(words > 0, "need at least one word");
        Self {
            words,
            ..Self::default()
        }
    }
}

/// English letter frequencies for plausible-looking words (nearest-match
/// behaviour depends only on the keys being distinct).
const LETTER_WEIGHTS: [f64; 26] = [
    8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4, 6.7, 7.5, 1.9, 0.095, 6.0,
    6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074,
];

fn weighted_letter(rng: &mut SmallRng) -> u8 {
    let total: f64 = LETTER_WEIGHTS.iter().sum();
    let mut roll = rng.gen::<f64>() * total;
    for (i, &w) in LETTER_WEIGHTS.iter().enumerate() {
        roll -= w;
        if roll <= 0.0 {
            return b'a' + u8::try_from(i).expect("26 letters");
        }
    }
    b'z'
}

/// Generates `config.words` distinct lowercase words of exactly
/// `config.word_len` characters.
///
/// # Panics
///
/// Panics on a degenerate configuration (zero words, a word length
/// outside `1..=16`, or more words than distinct keys of that length).
#[must_use]
pub fn generate(config: &DictionaryConfig) -> Vec<String> {
    assert!(config.words > 0, "need at least one word");
    assert!(
        (1..=16).contains(&config.word_len),
        "word length must be 1..=16 to pack into a 128-bit key"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut seen: HashSet<u128> = HashSet::with_capacity(config.words * 2);
    let mut out = Vec::with_capacity(config.words);
    let mut attempts: u64 = 0;
    while out.len() < config.words {
        attempts += 1;
        assert!(
            attempts < (config.words as u64).saturating_mul(400).max(1 << 20),
            "generator cannot find enough distinct words; config too tight"
        );
        let word: String = (0..config.word_len)
            .map(|_| char::from(weighted_letter(&mut rng)))
            .collect();
        if seen.insert(pack_word(&word)) {
            out.push(word);
        }
    }
    out
}

/// One entry of a typo lookup trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Typo {
    /// The possibly-misspelled query word.
    pub query: String,
    /// The dictionary word it was derived from.
    pub original: String,
    /// Substituted character count (Hamming distance to `original`).
    pub distance: u32,
}

/// Derives a lookup trace of misspellings: each entry picks a dictionary
/// word and substitutes `0..=max_distance` random character positions with
/// random lowercase letters (re-rolled to differ, so the reported distance
/// is exact). Distances are distributed roughly uniformly over
/// `0..=max_distance`.
///
/// # Panics
///
/// Panics if `words` is empty or contains an empty word.
#[must_use]
pub fn typo_trace(words: &[String], lookups: usize, max_distance: u32, seed: u64) -> Vec<Typo> {
    assert!(!words.is_empty(), "need at least one word");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..lookups)
        .map(|_| {
            let original = &words[rng.gen_range(0..words.len())];
            assert!(!original.is_empty(), "words must be non-empty");
            let mut bytes = original.clone().into_bytes();
            let distance = rng.gen_range(0..=max_distance);
            let mut hit: Vec<usize> = Vec::with_capacity(distance as usize);
            while hit.len() < distance as usize && hit.len() < bytes.len() {
                let pos = rng.gen_range(0..bytes.len());
                if hit.contains(&pos) {
                    continue;
                }
                hit.push(pos);
                let old = bytes[pos];
                loop {
                    let new = b'a' + rng.gen_range(0..26u8);
                    if new != old {
                        bytes[pos] = new;
                        break;
                    }
                }
            }
            Typo {
                query: String::from_utf8(bytes).expect("substitutions stay ASCII"),
                original: original.clone(),
                distance: u32::try_from(hit.len()).expect("distance fits u32"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::key::SearchKey;
    use ca_ram_core::pattern::Pattern;

    #[test]
    fn generator_is_deterministic_and_distinct() {
        let a = generate(&DictionaryConfig::scaled(3_000));
        let b = generate(&DictionaryConfig::scaled(3_000));
        assert_eq!(a, b);
        assert_eq!(a.len(), 3_000);
        let mut keys: Vec<u128> = a.iter().map(|w| pack_word(w)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 3_000);
        assert!(a.iter().all(|w| w.len() == 8));
        assert!(a.iter().all(|w| w.bytes().all(|b| b.is_ascii_lowercase())));
    }

    #[test]
    fn typos_report_exact_hamming_distance() {
        let words = generate(&DictionaryConfig::scaled(200));
        let trace = typo_trace(&words, 500, 2, 9);
        assert_eq!(trace.len(), 500);
        let mut saw = [0usize; 3];
        for t in &trace {
            let d = t
                .query
                .bytes()
                .zip(t.original.bytes())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(d, t.distance as usize, "{t:?}");
            saw[t.distance as usize] += 1;
        }
        assert!(saw.iter().all(|&c| c > 0), "all distances present: {saw:?}");
    }

    #[test]
    fn probe_ladder_finds_the_original_within_distance() {
        let words = generate(&DictionaryConfig::scaled(50));
        let spec = dictionary_spec(8, 2);
        for t in typo_trace(&words, 60, 2, 11) {
            let probes = spec
                .lower_probes(&Pattern::NearestMatch {
                    value: pack_word(&t.query),
                    max_distance: 2,
                })
                .expect("ladder lowers");
            // Some probe in the ladder matches the original word's key.
            let original = pack_word(&t.original);
            assert!(
                probes
                    .iter()
                    .any(|p| (original ^ p.value()) & !p.dont_care() == 0),
                "{t:?}"
            );
            // The exact probe comes first.
            assert_eq!(probes[0], SearchKey::new(pack_word(&t.query), 64));
        }
    }
}
