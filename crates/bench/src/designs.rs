//! The design points of the paper's two application studies, and builders
//! that realize them as `CaRamTable`s over the synthetic workloads.

use ca_ram_core::index::{DjbHash, RangeSelect};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_workloads::prefix::Ipv4Prefix;
use ca_ram_workloads::trigram::text_ternary_key;

/// One row of Table 2 or Table 3: a named CA-RAM design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignPoint {
    /// The paper's design letter.
    pub name: &'static str,
    /// `R`: log2 of rows per slice.
    pub rows_log2: u32,
    /// Keys per slice row (the paper writes `C` as `keys × key_bits`).
    pub keys_per_row: u32,
    /// Number of slices.
    pub slices: u32,
    /// Horizontal or vertical arrangement.
    pub horizontal: bool,
}

impl DesignPoint {
    /// The arrangement of this design.
    #[must_use]
    pub fn arrangement(&self) -> Arrangement {
        if self.horizontal {
            Arrangement::Horizontal(self.slices)
        } else {
            Arrangement::Vertical(self.slices)
        }
    }

    /// Human-readable arrangement label, as printed in the paper's tables.
    #[must_use]
    pub fn arrangement_label(&self) -> &'static str {
        if self.horizontal {
            "horizontal"
        } else {
            "vertical"
        }
    }
}

/// Table 2's six IP-lookup designs A–F.
#[must_use]
pub fn ip_designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint {
            name: "A",
            rows_log2: 11,
            keys_per_row: 32,
            slices: 6,
            horizontal: true,
        },
        DesignPoint {
            name: "B",
            rows_log2: 11,
            keys_per_row: 32,
            slices: 7,
            horizontal: true,
        },
        DesignPoint {
            name: "C",
            rows_log2: 11,
            keys_per_row: 32,
            slices: 8,
            horizontal: true,
        },
        DesignPoint {
            name: "D",
            rows_log2: 12,
            keys_per_row: 64,
            slices: 2,
            horizontal: true,
        },
        DesignPoint {
            name: "E",
            rows_log2: 12,
            keys_per_row: 64,
            slices: 3,
            horizontal: true,
        },
        DesignPoint {
            name: "F",
            rows_log2: 12,
            keys_per_row: 64,
            slices: 2,
            horizontal: false,
        },
    ]
}

/// Table 3's four trigram designs A–D.
#[must_use]
pub fn trigram_designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint {
            name: "A",
            rows_log2: 14,
            keys_per_row: 96,
            slices: 4,
            horizontal: false,
        },
        DesignPoint {
            name: "B",
            rows_log2: 14,
            keys_per_row: 96,
            slices: 5,
            horizontal: false,
        },
        DesignPoint {
            name: "C",
            rows_log2: 14,
            keys_per_row: 96,
            slices: 4,
            horizontal: true,
        },
        DesignPoint {
            name: "D",
            rows_log2: 14,
            keys_per_row: 96,
            slices: 5,
            horizontal: true,
        },
    ]
}

/// The stored-key layout of the IP study: 32 ternary symbols (64 stored
/// bits), key-only rows.
#[must_use]
pub fn ip_layout() -> RecordLayout {
    RecordLayout::new(32, true, 0)
}

/// The stored-key layout of the trigram study: 128 binary bits, key-only.
#[must_use]
pub fn trigram_layout() -> RecordLayout {
    RecordLayout::new(128, false, 0)
}

/// Builds an empty table for an IP design (hash = last `R'` bits of the
/// first 16 address bits, where `R'` covers the logical bucket space).
///
/// # Panics
///
/// Panics if the design point is inconsistent with the layout.
#[must_use]
pub fn build_ip_table(design: &DesignPoint) -> CaRamTable {
    let layout = ip_layout();
    let row_bits = design.keys_per_row * layout.slot_bits();
    let vertical_factor = if design.horizontal { 1 } else { design.slices };
    let index_bits = design.rows_log2 + vertical_factor.next_power_of_two().trailing_zeros();
    let config = TableConfig {
        rows_log2: design.rows_log2,
        row_bits,
        layout,
        arrangement: design.arrangement(),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 4096 },
    };
    CaRamTable::new(config, Box::new(RangeSelect::ip_first16_last(index_bits)))
        .expect("design points are valid configurations")
}

/// Builds an empty table for a trigram design (DJB hash over the 16-byte
/// key, reduced modulo the logical bucket count).
///
/// # Panics
///
/// Panics if the design point is inconsistent with the layout.
#[must_use]
pub fn build_trigram_table(design: &DesignPoint) -> CaRamTable {
    let layout = trigram_layout();
    let row_bits = design.keys_per_row * layout.slot_bits();
    let config = TableConfig {
        rows_log2: design.rows_log2,
        row_bits,
        layout,
        arrangement: design.arrangement(),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 1 << 16 },
    };
    CaRamTable::new(config, Box::new(DjbHash::new(32, 16)))
        .expect("design points are valid configurations")
}

/// Inserts prefixes (already sorted in priority order) with the given
/// access weights. Returns the number inserted; panics on `TableFull`,
/// which would indicate a mis-sized design.
///
/// # Panics
///
/// Panics if an insert fails.
pub fn load_prefixes(table: &mut CaRamTable, prefixes: &[Ipv4Prefix], weights: &[f64]) {
    assert_eq!(prefixes.len(), weights.len(), "one weight per prefix");
    // The Table 2 designs store keys only (C counts 64-bit ternary keys);
    // the prefix length is recoverable from the stored mask. When a layout
    // does carry data, store the next-hop-style prefix length.
    let store_len = table.layout().data_bits() >= 8;
    for (p, &w) in prefixes.iter().zip(weights) {
        let data = if store_len { u64::from(p.len()) } else { 0 };
        let record = Record::new(p.to_ternary_key(), data);
        table
            .insert_weighted(record, w)
            .unwrap_or_else(|e| panic!("inserting {p}: {e}"));
    }
}

/// Inserts trigram entries (binary keys; order is irrelevant for
/// exact-match search).
///
/// # Panics
///
/// Panics if an insert fails.
pub fn load_trigrams(table: &mut CaRamTable, entries: &[String]) {
    // Table 3's designs store keys only (C = 128 x 96 bits of keys); when a
    // layout does carry data, store the entry index (an LM-score handle).
    let store_index = table.layout().data_bits() >= 32;
    for (i, s) in entries.iter().enumerate() {
        let data = if store_index {
            u64::try_from(i).expect("entry count fits u64")
        } else {
            0
        };
        let record = Record::new(text_ternary_key(s), data);
        table
            .insert(record)
            .unwrap_or_else(|e| panic!("inserting {s:?}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::key::SearchKey;
    use ca_ram_workloads::bgp::{generate, BgpConfig};
    use ca_ram_workloads::trigram::{generate as gen_tri, pack_text_key, TrigramConfig};

    #[test]
    fn design_tables_match_paper_capacities() {
        // Table 2 capacities (logical buckets x slots).
        let caps: Vec<(u64, u32)> = ip_designs()
            .iter()
            .map(|d| {
                let t = build_ip_table(d);
                (t.logical_buckets(), t.slots_per_bucket())
            })
            .collect();
        assert_eq!(
            caps,
            vec![
                (2048, 192),
                (2048, 224),
                (2048, 256),
                (4096, 128),
                (4096, 192),
                (8192, 64),
            ]
        );
        // Table 3 capacities.
        let caps: Vec<(u64, u32)> = trigram_designs()
            .iter()
            .map(|d| {
                let t = build_trigram_table(d);
                (t.logical_buckets(), t.slots_per_bucket())
            })
            .collect();
        assert_eq!(
            caps,
            vec![(65_536, 96), (81_920, 96), (16_384, 384), (16_384, 480)]
        );
    }

    #[test]
    fn load_factors_match_paper_at_full_scale() {
        // α = N/(M×S) with N = 186,760: A 0.47, B 0.40, C 0.36, D 0.36,
        // E 0.24, F 0.36 (Table 2) — pure arithmetic, no generation needed.
        let expected = [0.47, 0.40, 0.36, 0.36, 0.24, 0.36];
        for (d, &want) in ip_designs().iter().zip(&expected) {
            let t = build_ip_table(d);
            #[allow(clippy::cast_precision_loss)]
            let alpha = 186_760.0 / (t.logical_buckets() as f64 * f64::from(t.slots_per_bucket()));
            assert!((alpha - want).abs() < 0.01, "design {}: {alpha:.3}", d.name);
        }
    }

    #[test]
    fn ip_end_to_end_small_scale() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let prefixes = generate(&BgpConfig::scaled(3_000));
        let weights = vec![1.0; prefixes.len()];
        let mut t = build_ip_table(&ip_designs()[0]);
        load_prefixes(&mut t, &prefixes, &weights);
        let report = t.load_report();
        assert_eq!(report.original_records, 3_000);
        // Every prefix must be findable by one of its member addresses.
        let mut rng = SmallRng::seed_from_u64(1);
        for p in prefixes.iter().take(300) {
            let addr = p.random_member(&mut rng);
            let got = t.search(&SearchKey::new(u128::from(addr), 32));
            let hit = got.hit.unwrap_or_else(|| panic!("{p} lost"));
            // LPM: the matched prefix is at least as long as p (length =
            // care count of the stored ternary key).
            assert!(hit.record.key.care_count() >= u32::from(p.len()), "{p}");
        }
    }

    #[test]
    fn trigram_end_to_end_small_scale() {
        let entries = gen_tri(&TrigramConfig {
            entries: 4_000,
            vocabulary: 2_000,
            ..TrigramConfig::sphinx_like()
        });
        let mut t = build_trigram_table(&trigram_designs()[0]);
        load_trigrams(&mut t, &entries);
        for s in entries.iter().take(200) {
            let key = pack_text_key(s);
            let got = t.search(&SearchKey::new(key, 128));
            assert_eq!(got.hit.map(|h| h.record.key.value()), Some(key), "{s:?}");
        }
        // An absent trigram misses.
        assert!(t
            .search(&SearchKey::new(pack_text_key("zz zz zz zz zz"), 128))
            .hit
            .is_none());
    }
}
