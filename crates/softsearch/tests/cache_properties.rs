//! Property-based tests of the cache simulator: LRU behaviour must match a
//! straightforward reference model, and the search structures must return
//! reference-correct answers under arbitrary key sets.

use ca_ram_softsearch::cache::{Cache, CacheConfig, Hierarchy, HitLevel};
use ca_ram_softsearch::structures::{
    Arena, BinarySearchTree, ChainedHash, OpenAddressing, SoftIndex, SortedArray,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference LRU cache: a vector of (set, Vec<tag> MRU-first).
struct ReferenceLru {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl ReferenceLru {
    fn new(config: CacheConfig) -> Self {
        let sets = config.size_bytes / (config.ways * config.line_bytes);
        Self {
            sets: vec![Vec::new(); sets],
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = usize::try_from(line & self.set_mask).expect("fits");
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(i) = ways.iter().position(|&t| t == tag) {
            ways.remove(i);
            ways.insert(0, tag);
            true
        } else {
            if ways.len() == self.ways {
                ways.pop();
            }
            ways.insert(0, tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..500),
    ) {
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(config);
        let mut reference = ReferenceLru::new(config);
        for &a in &addrs {
            prop_assert_eq!(cache.access(a), reference.access(a), "addr {:#x}", a);
        }
    }

    #[test]
    fn bigger_cache_never_hits_less_overall(
        addrs in prop::collection::vec(0u64..(1 << 16), 50..400),
    ) {
        // Fully-associative inclusion property proxy: same geometry, double
        // the ways. (Strict per-access inclusion needs full associativity;
        // we assert the aggregate hit count, which LRU set caches satisfy
        // when sets are fixed and ways grow.)
        let small = CacheConfig { size_bytes: 2048, ways: 2, line_bytes: 64 };
        let large = CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 };
        let mut c_small = Cache::new(small);
        let mut c_large = Cache::new(large);
        let mut hits_small = 0u32;
        let mut hits_large = 0u32;
        for &a in &addrs {
            hits_small += u32::from(c_small.access(a));
            hits_large += u32::from(c_large.access(a));
        }
        prop_assert!(hits_large >= hits_small);
    }

    #[test]
    fn hierarchy_stats_add_up(
        addrs in prop::collection::vec(any::<u32>(), 1..300),
    ) {
        let mut h = Hierarchy::typical();
        let mut by_level = HashMap::new();
        for &a in &addrs {
            let level = h.access(u64::from(a));
            *by_level.entry(level).or_insert(0u64) += 1;
        }
        let s = h.stats;
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.l1_hits, by_level.get(&HitLevel::L1).copied().unwrap_or(0));
        prop_assert_eq!(s.l2_hits, by_level.get(&HitLevel::L2).copied().unwrap_or(0));
        prop_assert_eq!(
            s.memory_accesses,
            by_level.get(&HitLevel::Memory).copied().unwrap_or(0)
        );
        prop_assert_eq!(s.accesses, s.l1_hits + s.l2_hits + s.memory_accesses);
    }

    #[test]
    fn all_structures_agree_with_a_hashmap(
        pairs in prop::collection::hash_map(any::<u64>(), any::<u64>(), 1..120),
        probes in prop::collection::vec(any::<u64>(), 40),
    ) {
        let pairs: Vec<(u64, u64)> = pairs.into_iter().collect();
        let model: HashMap<u64, u64> = pairs.iter().copied().collect();
        let mut arena = Arena::new(0);
        let chained = ChainedHash::build(&pairs, 7, &mut arena);
        let open = OpenAddressing::build(&pairs, 9, &mut arena);
        let sorted = SortedArray::build(&pairs, &mut arena);
        let bst = BinarySearchTree::build(&pairs, &mut arena);
        let mut mem = Hierarchy::typical();
        for probe in probes.iter().chain(pairs.iter().map(|(k, _)| k)) {
            let expect = model.get(probe).copied();
            for index in [&chained as &dyn SoftIndex, &open, &sorted, &bst] {
                prop_assert_eq!(
                    index.lookup(*probe, &mut mem).value,
                    expect,
                    "{} on {:#x}",
                    index.name(),
                    probe
                );
            }
        }
    }
}
