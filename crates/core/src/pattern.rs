//! The pattern compiler: lower high-level match patterns onto CA-RAM
//! configurations.
//!
//! The paper configures every CA-RAM by hand — each workload picks a key
//! layout, derives ternary masks, and chooses an index generator on its own.
//! This module inverts that flow, following the architecture of pattern-to-CAM
//! compilers (C4CAM): a workload declares *what* it matches as a
//! [`PatternSpec`], and [`compile`] lowers the spec onto a concrete
//! [`TableConfig`] — record layout, ternary storage decision, and index
//! generator — producing a [`CompiledPlan`] that turns individual
//! [`Pattern`]s into stored entries ([`CompiledPlan::lower_entry`]) and
//! multi-probe query plans ([`CompiledPlan::lower_query`]).
//!
//! ## The pattern IR
//!
//! A spec is a named, ordered list of [`FieldSpec`]s (packed MSB-first:
//! field 0 occupies the most-significant key bits) plus a [`MatchMode`]:
//!
//! * [`MatchMode::Exact`] — binary storage, hashed index;
//! * [`MatchMode::Lpm`] — ternary storage, longest-prefix-match priority,
//!   index bits taken from the top of the key so every prefix long enough
//!   to cover them lands in one home bucket;
//! * [`MatchMode::MultiField`] — ternary storage for rule tables
//!   (packet classification), index bits round-robined across the *top*
//!   bits of every field so a rule that wildcards one whole field still
//!   duplicates into few home buckets;
//! * [`MatchMode::Nearest`] — binary storage of exact words, approximate
//!   queries answered by a distance ladder of unit-masked probes
//!   (the multi-bit approximate search of FeFET-style associative
//!   memories); index bits round-robined one per unit, so a probe that
//!   wildcards one unit touches few buckets.
//!
//! Individual entries and queries are [`Pattern`]s: `Exact`, `Prefix`,
//! `RangeViaPrefixExpansion`, `MaskedMultiField`, and `NearestMatch`.
//!
//! ## Lowering rules and expansion costs
//!
//! * A prefix lowers to one ternary key (host bits don't-care).
//! * An arbitrary range `[lo, hi]` lowers to its minimal aligned-prefix
//!   cover — at most `2·W − 2` ternary entries for a width-`W` field, and
//!   exactly one entry for a single point or the full domain. Every entry
//!   of one expansion carries the *same* data payload, so a multi-entry
//!   range still reports one logical value (the [`crate::oracle`] reference
//!   model pins this: any max-care tie among expansion entries is the same
//!   answer).
//! * A multi-field pattern lowers to the cross product of its per-field
//!   covers. The product is bounded by [`expansion_limit`] (`2·W` for a
//!   `W`-bit key); exceeding it is a typed [`PatternError::ExpansionTooLarge`],
//!   never a silent explosion.
//! * A nearest-match query of distance `d` lowers to an ordered probe
//!   ladder: the exact probe, then every combination of `k = 1..=d`
//!   wildcarded units, in increasing-distance order — so the first hit is a
//!   nearest stored word (in unit-substitution/Hamming distance). The
//!   ladder is bounded by [`MAX_QUERY_PROBES`].

use std::fmt;

use crate::engine::{EngineOutcome, SearchEngine};
use crate::index::{BitSelect, DjbHash, IndexGenerator, RangeSelect};
use crate::key::{SearchKey, TernaryKey, MAX_KEY_BITS};
use crate::layout::{Record, RecordLayout, MAX_DATA_BITS};
use crate::table::{CaRamTable, TableConfig};

/// Worst-case entry count one logical pattern may lower to, for a
/// width-`W`-bit key: `2·W`. A single range's aligned-prefix cover is
/// structurally at most `2·W − 2` entries; multi-field cross products are
/// clamped to this limit with [`PatternError::ExpansionTooLarge`].
#[must_use]
pub const fn expansion_limit(width_bits: u32) -> usize {
    2 * width_bits as usize
}

/// Upper bound on the probes one query plan may contain (the nearest-match
/// distance ladder grows combinatorially; exceeding this is a typed
/// [`PatternError::ProbeBudgetExceeded`]).
pub const MAX_QUERY_PROBES: usize = 256;

/// Mask with the low `bits` bits set (`bits ≤ 128`).
const fn width_mask(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

/// A typed pattern-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// The spec itself is malformed (empty fields, zero-width field, key
    /// wider than 128 bits, bad nearest-match geometry, …).
    BadSpec(String),
    /// A range with `lo > hi` matches nothing; lowering it to zero entries
    /// would silently drop the rule, so it is rejected instead.
    EmptyRange {
        /// Range low bound.
        lo: u128,
        /// Range high bound.
        hi: u128,
    },
    /// A pattern value or bound does not fit the field/key width.
    ValueTooWide {
        /// The width it must fit, in bits.
        bits: u32,
    },
    /// A prefix length exceeds the field/key width.
    PrefixTooLong {
        /// Requested prefix length.
        len: u32,
        /// Field or key width in bits.
        bits: u32,
    },
    /// A multi-field pattern supplied the wrong number of fields.
    FieldCountMismatch {
        /// Fields in the pattern.
        got: usize,
        /// Fields in the spec.
        expected: usize,
    },
    /// The pattern needs ternary (masked) storage or probing, but the spec's
    /// mode compiles to a binary table with an unrouteable hashed index.
    TernaryRequired {
        /// The pattern kind that required ternary support.
        pattern: &'static str,
    },
    /// A `NearestMatch` pattern was used with a spec whose mode is not
    /// [`MatchMode::Nearest`].
    NearestUnsupported,
    /// A nearest-match query asked for more distance than the spec allows.
    DistanceTooFar {
        /// Requested distance.
        requested: u32,
        /// Spec maximum.
        max: u32,
    },
    /// Lowering would exceed [`expansion_limit`] stored entries.
    ExpansionTooLarge {
        /// Entries the lowering would need.
        needed: u128,
        /// The enforced limit.
        limit: usize,
    },
    /// A query plan would exceed [`MAX_QUERY_PROBES`] probes.
    ProbeBudgetExceeded {
        /// Probes the plan would need.
        needed: u128,
        /// The enforced limit.
        limit: usize,
    },
    /// A data payload does not fit the compiled layout's data width.
    DataTooWide {
        /// Layout data width in bits.
        data_bits: u32,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSpec(msg) => write!(f, "bad pattern spec: {msg}"),
            Self::EmptyRange { lo, hi } => {
                write!(f, "empty range [{lo:#x}, {hi:#x}] matches nothing")
            }
            Self::ValueTooWide { bits } => write!(f, "value does not fit in {bits} bits"),
            Self::PrefixTooLong { len, bits } => {
                write!(f, "prefix length {len} exceeds width {bits}")
            }
            Self::FieldCountMismatch { got, expected } => {
                write!(f, "pattern has {got} fields, spec has {expected}")
            }
            Self::TernaryRequired { pattern } => {
                write!(f, "{pattern} pattern requires a ternary-mode spec")
            }
            Self::NearestUnsupported => {
                write!(f, "nearest-match pattern requires a Nearest-mode spec")
            }
            Self::DistanceTooFar { requested, max } => {
                write!(f, "distance {requested} exceeds spec maximum {max}")
            }
            Self::ExpansionTooLarge { needed, limit } => {
                write!(f, "expansion needs {needed} entries, limit is {limit}")
            }
            Self::ProbeBudgetExceeded { needed, limit } => {
                write!(f, "query plan needs {needed} probes, limit is {limit}")
            }
            Self::DataTooWide { data_bits } => {
                write!(f, "data payload does not fit in {data_bits} bits")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// One named field of a [`PatternSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name, for reports and errors.
    pub name: String,
    /// Field width in bits (≥ 1).
    pub bits: u32,
}

impl FieldSpec {
    /// Creates a field spec.
    #[must_use]
    pub fn new(name: &str, bits: u32) -> Self {
        Self {
            name: name.to_owned(),
            bits,
        }
    }
}

/// How a [`PatternSpec`]'s table matches, which drives storage (binary vs.
/// ternary) and index-generator choice at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// Exact match of full keys; binary storage, hashed index.
    Exact,
    /// Longest-prefix match; ternary storage, top-of-key range index.
    Lpm,
    /// Masked multi-field rules; ternary storage, index bits round-robined
    /// over the top bits of every field.
    MultiField,
    /// Nearest-match over fixed-width units (e.g. bytes of a word); binary
    /// storage, index bits round-robined one per unit, approximate queries
    /// via a unit-masked probe ladder.
    Nearest {
        /// Width of one maskable unit in bits (key width must be a
        /// multiple).
        unit_bits: u32,
        /// Largest queryable distance, in substituted units.
        max_distance: u32,
    },
}

/// A high-level entry or query pattern, lowered by a [`PatternSpec`] /
/// [`CompiledPlan`] into ternary keys and probe plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// One exact key value.
    Exact {
        /// Full-width key value.
        value: u128,
    },
    /// A prefix of the whole key: the top `len` bits of `value` care, the
    /// rest are wildcards.
    Prefix {
        /// Full-width value (host bits ignored).
        value: u128,
        /// Prefix length in bits (`0..=key_bits`).
        len: u32,
    },
    /// An inclusive value range, lowered to its minimal aligned-prefix
    /// cover of ternary entries.
    RangeViaPrefixExpansion {
        /// Inclusive low bound.
        lo: u128,
        /// Inclusive high bound.
        hi: u128,
    },
    /// One sub-pattern per spec field (packet-classifier rules).
    MaskedMultiField {
        /// Per-field patterns, in spec field order.
        fields: Vec<FieldPattern>,
    },
    /// All keys within `max_distance` substituted units of `value`
    /// (query-side only: entries store the word exactly).
    NearestMatch {
        /// Full-width reference value.
        value: u128,
        /// Maximum unit-substitution distance.
        max_distance: u32,
    },
}

/// A per-field sub-pattern of [`Pattern::MaskedMultiField`]. Values are
/// field-local (not shifted into key position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldPattern {
    /// The field is a full wildcard.
    Any,
    /// The field must equal this value exactly.
    Exact(u128),
    /// The top `len` bits of the field must match `value`.
    Prefix {
        /// Field-local value (host bits ignored).
        value: u128,
        /// Prefix length within the field.
        len: u32,
    },
    /// The field falls in `[lo, hi]` inclusive (prefix-expanded).
    Range {
        /// Inclusive low bound.
        lo: u128,
        /// Inclusive high bound.
        hi: u128,
    },
}

/// A declarative description of what one table matches: named fields
/// (packed MSB-first) plus a [`MatchMode`]. The compiler's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSpec {
    name: String,
    fields: Vec<FieldSpec>,
    mode: MatchMode,
}

impl PatternSpec {
    fn validate(name: &str, fields: &[FieldSpec], mode: MatchMode) -> Result<(), PatternError> {
        if fields.is_empty() {
            return Err(PatternError::BadSpec(format!(
                "spec {name:?} has no fields"
            )));
        }
        if let Some(f) = fields.iter().find(|f| f.bits == 0) {
            return Err(PatternError::BadSpec(format!(
                "field {:?} of spec {name:?} has zero width",
                f.name
            )));
        }
        let total: u64 = fields.iter().map(|f| u64::from(f.bits)).sum();
        if total > u64::from(MAX_KEY_BITS) {
            return Err(PatternError::BadSpec(format!(
                "spec {name:?} is {total} bits wide, maximum is {MAX_KEY_BITS}"
            )));
        }
        if let MatchMode::Nearest {
            unit_bits,
            max_distance,
        } = mode
        {
            let total = u32::try_from(total).expect("≤ 128");
            if unit_bits == 0 || total % unit_bits != 0 {
                return Err(PatternError::BadSpec(format!(
                    "nearest unit of {unit_bits} bits does not divide the {total}-bit key"
                )));
            }
            let units = total / unit_bits;
            if max_distance == 0 || max_distance > units {
                return Err(PatternError::BadSpec(format!(
                    "nearest max distance {max_distance} outside 1..={units} units"
                )));
            }
        }
        Ok(())
    }

    /// Creates a spec from explicit fields and a mode.
    ///
    /// # Errors
    ///
    /// [`PatternError::BadSpec`] if the fields are empty, any field is
    /// zero-width, the total exceeds 128 bits, or the nearest-match
    /// geometry is inconsistent.
    pub fn new(name: &str, fields: Vec<FieldSpec>, mode: MatchMode) -> Result<Self, PatternError> {
        Self::validate(name, &fields, mode)?;
        Ok(Self {
            name: name.to_owned(),
            fields,
            mode,
        })
    }

    /// A single-field exact-match spec.
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::new`].
    pub fn exact(name: &str, bits: u32) -> Result<Self, PatternError> {
        Self::new(name, vec![FieldSpec::new("key", bits)], MatchMode::Exact)
    }

    /// A single-field longest-prefix-match spec.
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::new`].
    pub fn lpm(name: &str, bits: u32) -> Result<Self, PatternError> {
        Self::new(name, vec![FieldSpec::new("addr", bits)], MatchMode::Lpm)
    }

    /// A masked multi-field spec.
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::new`].
    pub fn multi_field(name: &str, fields: Vec<FieldSpec>) -> Result<Self, PatternError> {
        Self::new(name, fields, MatchMode::MultiField)
    }

    /// A single-field nearest-match spec over `bits / unit_bits` units.
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::new`].
    pub fn nearest(
        name: &str,
        bits: u32,
        unit_bits: u32,
        max_distance: u32,
    ) -> Result<Self, PatternError> {
        Self::new(
            name,
            vec![FieldSpec::new("word", bits)],
            MatchMode::Nearest {
                unit_bits,
                max_distance,
            },
        )
    }

    /// The canonical 5-tuple packet-classification spec: src/dst IPv4
    /// address, src/dst port, protocol, padded to a 128-bit key.
    ///
    /// # Panics
    ///
    /// Never: the shape is statically well-formed.
    #[must_use]
    pub fn five_tuple() -> Self {
        Self::multi_field(
            "packet-5tuple",
            vec![
                FieldSpec::new("src", 32),
                FieldSpec::new("dst", 32),
                FieldSpec::new("sport", 16),
                FieldSpec::new("dport", 16),
                FieldSpec::new("proto", 8),
                FieldSpec::new("pad", 24),
            ],
        )
        .expect("five-tuple spec is well-formed")
    }

    /// The canonical dictionary nearest-match spec: a `word_bytes`-byte
    /// word (≤ 16), byte units, spell-check style.
    ///
    /// # Panics
    ///
    /// Panics if `word_bytes` is 0 or > 16, or `max_distance` is outside
    /// `1..=word_bytes`.
    #[must_use]
    pub fn dictionary(word_bytes: u32, max_distance: u32) -> Self {
        Self::nearest("dictionary", word_bytes * 8, 8, max_distance)
            .expect("dictionary spec is well-formed")
    }

    /// The spec name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields, MSB-first.
    #[must_use]
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// The match mode.
    #[must_use]
    pub fn mode(&self) -> MatchMode {
        self.mode
    }

    /// Total key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.bits).sum()
    }

    /// Whether the compiled table stores ternary (masked) keys.
    #[must_use]
    pub fn is_ternary(&self) -> bool {
        matches!(self.mode, MatchMode::Lpm | MatchMode::MultiField)
    }

    /// Lowest key-bit position of field `i` (fields pack MSB-first).
    fn field_low(&self, i: usize) -> u32 {
        self.fields[i + 1..].iter().map(|f| f.bits).sum()
    }

    /// Packs field-local values (spec field order) into one key value.
    ///
    /// # Errors
    ///
    /// [`PatternError::FieldCountMismatch`] or [`PatternError::ValueTooWide`].
    pub fn pack(&self, values: &[u128]) -> Result<u128, PatternError> {
        if values.len() != self.fields.len() {
            return Err(PatternError::FieldCountMismatch {
                got: values.len(),
                expected: self.fields.len(),
            });
        }
        let mut key = 0u128;
        for (i, (&v, f)) in values.iter().zip(&self.fields).enumerate() {
            if v > width_mask(f.bits) {
                return Err(PatternError::ValueTooWide { bits: f.bits });
            }
            key |= v << self.field_low(i);
        }
        Ok(key)
    }

    /// Lowers an entry pattern to the ternary keys to store. Every key of a
    /// multi-entry expansion represents the *same* logical entry and must be
    /// stored with the same data payload.
    ///
    /// # Errors
    ///
    /// Any [`PatternError`] the lowering rules produce (empty range,
    /// oversized expansion, mode mismatch, …).
    pub fn lower(&self, pattern: &Pattern) -> Result<Vec<TernaryKey>, PatternError> {
        let bits = self.key_bits();
        let masks = self.lower_masks(pattern)?;
        if !self.is_ternary() {
            if let Some((_, dc)) = masks.iter().find(|&&(_, dc)| dc != 0) {
                let _ = dc;
                return Err(PatternError::TernaryRequired {
                    pattern: pattern_kind(pattern),
                });
            }
        }
        Ok(masks
            .into_iter()
            .map(|(v, dc)| TernaryKey::ternary(v, dc, bits))
            .collect())
    }

    /// Lowers a query pattern to its ordered probe list (first hit wins).
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::lower`], plus [`PatternError::ProbeBudgetExceeded`]
    /// and [`PatternError::DistanceTooFar`] for nearest-match ladders. In
    /// [`MatchMode::Exact`] mode the compiled table's hashed index cannot
    /// route masked probes, so only exact patterns are accepted
    /// ([`PatternError::TernaryRequired`] otherwise).
    pub fn lower_probes(&self, pattern: &Pattern) -> Result<Vec<SearchKey>, PatternError> {
        let bits = self.key_bits();
        if let Pattern::NearestMatch {
            value,
            max_distance,
        } = pattern
        {
            return self.nearest_probes(*value, *max_distance);
        }
        let masks = self.lower_masks(pattern)?;
        if matches!(self.mode, MatchMode::Exact) && masks.iter().any(|&(_, dc)| dc != 0) {
            return Err(PatternError::TernaryRequired {
                pattern: pattern_kind(pattern),
            });
        }
        if masks.len() > MAX_QUERY_PROBES {
            return Err(PatternError::ProbeBudgetExceeded {
                needed: masks.len() as u128,
                limit: MAX_QUERY_PROBES,
            });
        }
        Ok(masks
            .into_iter()
            .map(|(v, dc)| SearchKey::with_mask(v, dc, bits))
            .collect())
    }

    /// Shared (value, dont-care) lowering for every pattern kind except the
    /// nearest-match probe ladder.
    fn lower_masks(&self, pattern: &Pattern) -> Result<Vec<(u128, u128)>, PatternError> {
        let bits = self.key_bits();
        match pattern {
            Pattern::Exact { value } => {
                if *value > width_mask(bits) {
                    return Err(PatternError::ValueTooWide { bits });
                }
                Ok(vec![(*value, 0)])
            }
            Pattern::Prefix { value, len } => {
                if *len > bits {
                    return Err(PatternError::PrefixTooLong { len: *len, bits });
                }
                if *value > width_mask(bits) {
                    return Err(PatternError::ValueTooWide { bits });
                }
                Ok(vec![(*value, width_mask(bits - *len))])
            }
            Pattern::RangeViaPrefixExpansion { lo, hi } => prefix_cover(*lo, *hi, bits),
            Pattern::MaskedMultiField { fields } => self.multi_field_masks(fields),
            Pattern::NearestMatch { value, .. } => {
                if !matches!(self.mode, MatchMode::Nearest { .. }) {
                    return Err(PatternError::NearestUnsupported);
                }
                if *value > width_mask(bits) {
                    return Err(PatternError::ValueTooWide { bits });
                }
                // Entry side: the word is stored exactly; approximation is
                // entirely in the query ladder.
                Ok(vec![(*value, 0)])
            }
        }
    }

    /// Cross product of per-field covers, bounded by [`expansion_limit`].
    fn multi_field_masks(
        &self,
        fields: &[FieldPattern],
    ) -> Result<Vec<(u128, u128)>, PatternError> {
        if fields.len() != self.fields.len() {
            return Err(PatternError::FieldCountMismatch {
                got: fields.len(),
                expected: self.fields.len(),
            });
        }
        let limit = expansion_limit(self.key_bits());
        let mut per_field: Vec<Vec<(u128, u128)>> = Vec::with_capacity(fields.len());
        let mut needed: u128 = 1;
        for (i, fp) in fields.iter().enumerate() {
            let w = self.fields[i].bits;
            let cover = match *fp {
                FieldPattern::Any => vec![(0, width_mask(w))],
                FieldPattern::Exact(v) => {
                    if v > width_mask(w) {
                        return Err(PatternError::ValueTooWide { bits: w });
                    }
                    vec![(v, 0)]
                }
                FieldPattern::Prefix { value, len } => {
                    if len > w {
                        return Err(PatternError::PrefixTooLong { len, bits: w });
                    }
                    if value > width_mask(w) {
                        return Err(PatternError::ValueTooWide { bits: w });
                    }
                    vec![(value, width_mask(w - len))]
                }
                FieldPattern::Range { lo, hi } => prefix_cover(lo, hi, w)?,
            };
            needed = needed.saturating_mul(cover.len() as u128);
            if needed > limit as u128 {
                return Err(PatternError::ExpansionTooLarge { needed, limit });
            }
            per_field.push(cover);
        }
        // Cross product, field 0 outermost so entries come out in ascending
        // field-0-major order (deterministic for fixtures and tests).
        let mut out: Vec<(u128, u128)> = vec![(0, 0)];
        for (i, cover) in per_field.iter().enumerate() {
            let low = self.field_low(i);
            let mut next = Vec::with_capacity(out.len() * cover.len());
            for &(v_acc, dc_acc) in &out {
                for &(v, dc) in cover {
                    next.push((v_acc | (v << low), dc_acc | (dc << low)));
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// The nearest-match distance ladder: the exact probe, then every
    /// combination of `k = 1..=distance` wildcarded units in
    /// increasing-distance order.
    fn nearest_probes(&self, value: u128, distance: u32) -> Result<Vec<SearchKey>, PatternError> {
        let MatchMode::Nearest {
            unit_bits,
            max_distance,
        } = self.mode
        else {
            return Err(PatternError::NearestUnsupported);
        };
        let bits = self.key_bits();
        if value > width_mask(bits) {
            return Err(PatternError::ValueTooWide { bits });
        }
        if distance > max_distance {
            return Err(PatternError::DistanceTooFar {
                requested: distance,
                max: max_distance,
            });
        }
        let units = bits / unit_bits;
        let needed: u128 = (0..=distance).map(|k| binomial(units, k)).sum();
        if needed > MAX_QUERY_PROBES as u128 {
            return Err(PatternError::ProbeBudgetExceeded {
                needed,
                limit: MAX_QUERY_PROBES,
            });
        }
        let mut probes = Vec::with_capacity(usize::try_from(needed).expect("≤ 256"));
        probes.push(SearchKey::new(value, bits));
        for k in 1..=distance {
            for_each_combination(units, k, &mut |chosen| {
                let mut dc = 0u128;
                for &u in chosen {
                    dc |= width_mask(unit_bits) << (u * unit_bits);
                }
                probes.push(SearchKey::with_mask(value, dc, bits));
            });
        }
        Ok(probes)
    }
}

/// Short kind name for error reporting.
fn pattern_kind(pattern: &Pattern) -> &'static str {
    match pattern {
        Pattern::Exact { .. } => "exact",
        Pattern::Prefix { .. } => "prefix",
        Pattern::RangeViaPrefixExpansion { .. } => "range",
        Pattern::MaskedMultiField { .. } => "masked-multi-field",
        Pattern::NearestMatch { .. } => "nearest-match",
    }
}

/// `C(n, k)` with saturation (probe budgets are tiny, but the input is
/// caller-controlled).
fn binomial(n: u32, k: u32) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(u128::from(n - i)) / u128::from(i + 1);
    }
    acc
}

/// Calls `f` with every size-`k` subset of `0..n`, in lexicographic order.
fn for_each_combination(n: u32, k: u32, f: &mut impl FnMut(&[u32])) {
    debug_assert!(k >= 1 && k <= n);
    let k = k as usize;
    let mut idx: Vec<u32> = (0..u32::try_from(k).expect("k ≤ 128")).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            let cap = n - u32::try_from(k - 1 - i).expect("fits");
            if idx[i] + 1 < cap {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The minimal aligned-prefix cover of the inclusive range `[lo, hi]` over
/// `bits`-bit values, as `(value, dont_care)` pairs in ascending order.
///
/// Edge cases are explicit: `lo > hi` is a typed [`PatternError::EmptyRange`]
/// (an empty match set would silently drop the rule), a single point lowers
/// to one binary entry, and the full domain lowers to one all-wildcard
/// entry. The cover is structurally at most `2·bits − 2` entries.
///
/// # Errors
///
/// [`PatternError::EmptyRange`] and [`PatternError::ValueTooWide`].
pub fn prefix_cover(lo: u128, hi: u128, bits: u32) -> Result<Vec<(u128, u128)>, PatternError> {
    let full = width_mask(bits);
    if lo > hi {
        return Err(PatternError::EmptyRange { lo, hi });
    }
    if hi > full {
        return Err(PatternError::ValueTooWide { bits });
    }
    if lo == 0 && hi == full {
        return Ok(vec![(0, full)]);
    }
    let mut out = Vec::new();
    let mut cur = lo;
    loop {
        // Largest aligned block starting at `cur` that stays within `hi`.
        let align = if cur == 0 {
            bits
        } else {
            cur.trailing_zeros().min(bits)
        };
        let mut k = align;
        while k > 0 && (cur | width_mask(k)) > hi {
            k -= 1;
        }
        out.push((cur, width_mask(k)));
        debug_assert!(out.len() <= expansion_limit(bits), "cover exceeded 2·W");
        let end = cur | width_mask(k);
        if end >= hi {
            break;
        }
        cur = end + 1;
    }
    Ok(out)
}

/// Table geometry the compiler targets; everything else (layout, index
/// generator, ternary storage) is derived from the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryHint {
    /// log2 of the row (bucket) count.
    pub rows_log2: u32,
    /// Record slots per row.
    pub slots_per_row: u32,
    /// Data payload width in bits (≤ 64).
    pub data_bits: u32,
}

impl Default for GeometryHint {
    fn default() -> Self {
        Self {
            rows_log2: 6,
            slots_per_row: 8,
            data_bits: 32,
        }
    }
}

/// The compiler's index-generator decision, kept as data so plans stay
/// [`Clone`] and fresh [`IndexGenerator`] boxes can be built on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexChoice {
    /// A contiguous [`RangeSelect`] field.
    Range {
        /// Lowest consumed bit.
        low: u32,
        /// Consumed bit count.
        count: u32,
    },
    /// A [`BitSelect`] over explicit positions.
    Bits {
        /// Selected key bit positions (index bit `i` ← key bit
        /// `positions[i]`).
        positions: Vec<u32>,
    },
    /// A [`DjbHash`] over the key bytes.
    Hash {
        /// Index width in bits.
        index_bits: u32,
        /// Hashed key bytes.
        key_bytes: u32,
    },
}

impl IndexChoice {
    /// Builds a fresh generator implementing this choice.
    #[must_use]
    pub fn build(&self) -> Box<dyn IndexGenerator> {
        match self {
            Self::Range { low, count } => Box::new(RangeSelect::new(*low, *count)),
            Self::Bits { positions } => Box::new(BitSelect::new(positions.clone())),
            Self::Hash {
                index_bits,
                key_bytes,
            } => Box::new(DjbHash::new(*index_bits, *key_bytes)),
        }
    }
}

/// A compiled pattern spec: concrete table configuration plus the lowering
/// context needed to turn [`Pattern`]s into entries and query plans.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    spec: PatternSpec,
    index: IndexChoice,
    config: TableConfig,
}

/// Lowers `spec` onto a concrete CA-RAM configuration.
///
/// Storage is ternary exactly when the mode needs masks
/// ([`MatchMode::Lpm`] / [`MatchMode::MultiField`]); the index generator is
/// chosen per mode (see the module docs). `hint.rows_log2` becomes the
/// index width.
///
/// # Errors
///
/// [`PatternError::BadSpec`] when the geometry is unsatisfiable (index
/// wider than the key or > 20 bits, zero slots, data > 64 bits).
pub fn compile(spec: &PatternSpec, hint: &GeometryHint) -> Result<CompiledPlan, PatternError> {
    let bits = spec.key_bits();
    let index_bits = hint.rows_log2;
    if index_bits == 0 || index_bits > bits || index_bits > 20 {
        return Err(PatternError::BadSpec(format!(
            "index width {index_bits} unsatisfiable for a {bits}-bit key"
        )));
    }
    if hint.slots_per_row == 0 {
        return Err(PatternError::BadSpec("zero slots per row".into()));
    }
    if hint.data_bits > MAX_DATA_BITS {
        return Err(PatternError::BadSpec(format!(
            "data width {} exceeds {MAX_DATA_BITS} bits",
            hint.data_bits
        )));
    }
    let index = match spec.mode() {
        MatchMode::Exact => IndexChoice::Hash {
            index_bits,
            key_bytes: bits.div_ceil(8),
        },
        MatchMode::Lpm => IndexChoice::Range {
            low: bits - index_bits,
            count: index_bits,
        },
        MatchMode::MultiField => IndexChoice::Bits {
            positions: multi_field_positions(spec, index_bits),
        },
        MatchMode::Nearest { unit_bits, .. } => IndexChoice::Bits {
            positions: nearest_positions(bits, unit_bits, index_bits),
        },
    };
    let layout = RecordLayout::new(bits, spec.is_ternary(), hint.data_bits);
    let row_bits = hint.slots_per_row * layout.slot_bits();
    let config = TableConfig::single_slice(hint.rows_log2, row_bits, layout);
    Ok(CompiledPlan {
        spec: spec.clone(),
        index,
        config,
    })
}

/// Index positions for multi-field mode: round-robin the most-significant
/// bits of every field, so a rule wildcarding one whole field loses few
/// index bits (duplicates into few home buckets).
fn multi_field_positions(spec: &PatternSpec, index_bits: u32) -> Vec<u32> {
    let n = spec.fields().len();
    let mut positions = Vec::with_capacity(index_bits as usize);
    let mut pass = 0u32;
    while positions.len() < index_bits as usize {
        for i in 0..n {
            let f = &spec.fields()[i];
            if pass < f.bits {
                positions.push(spec.field_low(i) + f.bits - 1 - pass);
                if positions.len() == index_bits as usize {
                    break;
                }
            }
        }
        pass += 1;
    }
    positions
}

/// Index positions for nearest mode: one bit per unit, round-robin, so a
/// probe wildcarding `d` units overlaps at most
/// `d · ceil(index_bits / units)` index bits.
fn nearest_positions(bits: u32, unit_bits: u32, index_bits: u32) -> Vec<u32> {
    let units = bits / unit_bits;
    let mut positions = Vec::with_capacity(index_bits as usize);
    let mut pass = 0u32;
    while positions.len() < index_bits as usize {
        for u in 0..units {
            if pass < unit_bits {
                positions.push(u * unit_bits + unit_bits - 1 - pass);
                if positions.len() == index_bits as usize {
                    break;
                }
            }
        }
        pass += 1;
    }
    positions
}

impl CompiledPlan {
    /// The spec this plan was compiled from.
    #[must_use]
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    /// The compiler's index-generator decision.
    #[must_use]
    pub fn index(&self) -> &IndexChoice {
        &self.index
    }

    /// The concrete table configuration.
    #[must_use]
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Builds a fresh table implementing this plan.
    ///
    /// # Errors
    ///
    /// As [`CaRamTable::new`].
    pub fn build_table(&self) -> crate::error::Result<CaRamTable> {
        CaRamTable::new(self.config.clone(), self.index.build())
    }

    /// Lowers an entry pattern to the records to store, all carrying
    /// `data`. Multi-entry expansions share the one payload by
    /// construction, so the logical entry reports one value no matter
    /// which expansion entry wins a lookup.
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::lower`], plus [`PatternError::DataTooWide`].
    pub fn lower_entry(&self, pattern: &Pattern, data: u64) -> Result<Vec<Record>, PatternError> {
        let data_bits = self.config.layout.data_bits();
        if data_bits < 64 && data >= 1u64 << data_bits {
            return Err(PatternError::DataTooWide { data_bits });
        }
        Ok(self
            .spec
            .lower(pattern)?
            .into_iter()
            .map(|k| Record::new(k, data))
            .collect())
    }

    /// Lowers a query pattern to an executable probe plan.
    ///
    /// # Errors
    ///
    /// As [`PatternSpec::lower_probes`].
    pub fn lower_query(&self, pattern: &Pattern) -> Result<QueryPlan, PatternError> {
        Ok(QueryPlan {
            probes: self.spec.lower_probes(pattern)?,
        })
    }
}

/// An ordered multi-probe query plan; the first probe that hits wins
/// (probes are ordered most-specific / nearest first by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    probes: Vec<SearchKey>,
}

impl QueryPlan {
    /// Wraps explicit probes into a plan (normally built by
    /// [`CompiledPlan::lower_query`]).
    #[must_use]
    pub fn new(probes: Vec<SearchKey>) -> Self {
        Self { probes }
    }

    /// The probes, in priority order.
    #[must_use]
    pub fn probes(&self) -> &[SearchKey] {
        &self.probes
    }

    /// Executes the plan against an engine: probes in order, first hit
    /// wins, memory accesses summed across every probe issued.
    #[must_use]
    pub fn execute(&self, engine: &dyn SearchEngine) -> EngineOutcome {
        let mut accesses = 0u32;
        for probe in &self.probes {
            let o = engine.search(probe);
            accesses = accesses.saturating_add(o.memory_accesses);
            if o.hit.is_some() {
                return EngineOutcome {
                    hit: o.hit,
                    memory_accesses: accesses,
                };
            }
        }
        EngineOutcome::miss(accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(lo: u128, hi: u128, bits: u32) -> Vec<(u128, u128)> {
        prefix_cover(lo, hi, bits).expect("valid range")
    }

    #[test]
    fn empty_range_is_a_typed_error() {
        assert_eq!(
            prefix_cover(5, 4, 16),
            Err(PatternError::EmptyRange { lo: 5, hi: 4 })
        );
    }

    #[test]
    fn single_point_range_is_one_binary_entry() {
        assert_eq!(cover(42, 42, 16), vec![(42, 0)]);
        assert_eq!(cover(0, 0, 16), vec![(0, 0)]);
        assert_eq!(cover(0xFFFF, 0xFFFF, 16), vec![(0xFFFF, 0)]);
    }

    #[test]
    fn full_domain_range_is_one_wildcard_entry() {
        assert_eq!(cover(0, 0xFFFF, 16), vec![(0, 0xFFFF)]);
        assert_eq!(cover(0, u128::MAX, 128), vec![(0, u128::MAX)]);
        assert_eq!(cover(0, 1, 1), vec![(0, 1)]);
    }

    #[test]
    fn out_of_domain_bound_rejected() {
        assert_eq!(
            prefix_cover(0, 0x1_0000, 16),
            Err(PatternError::ValueTooWide { bits: 16 })
        );
    }

    #[test]
    fn cover_is_exact_and_minimal_on_small_domains() {
        // Brute force every range over an 8-bit domain: the cover matches
        // exactly the range members and nothing else.
        for lo in (0u128..256).step_by(7) {
            for hi in (lo..256).step_by(5) {
                let c = cover(lo, hi, 8);
                assert!(c.len() <= expansion_limit(8));
                for v in 0u128..256 {
                    let covered = c.iter().any(|&(val, dc)| v & !dc == val);
                    assert_eq!(covered, (lo..=hi).contains(&v), "[{lo},{hi}] at {v}");
                }
                // Entries are disjoint: each value is covered once.
                for v in lo..=hi {
                    let n = c.iter().filter(|&&(val, dc)| v & !dc == val).count();
                    assert_eq!(n, 1, "[{lo},{hi}] covers {v} {n} times");
                }
            }
        }
    }

    #[test]
    fn worst_case_cover_is_bounded_by_2w() {
        // [1, 2^W - 2] is the classic worst case: 2·W − 2 entries.
        let c = cover(1, 0xFFFE, 16);
        assert_eq!(c.len(), 2 * 16 - 2);
        assert!(c.len() <= expansion_limit(16));
        let c = cover(1, u128::MAX - 1, 128);
        assert_eq!(c.len(), 2 * 128 - 2);
    }

    #[test]
    fn cross_product_explosion_is_a_typed_error() {
        let spec = PatternSpec::multi_field(
            "two-ports",
            vec![FieldSpec::new("a", 16), FieldSpec::new("b", 16)],
        )
        .unwrap();
        // Each range expands to 30 entries; 30 × 30 = 900 > 2·32 = 64.
        let err = spec
            .lower(&Pattern::MaskedMultiField {
                fields: vec![
                    FieldPattern::Range { lo: 1, hi: 0xFFFE },
                    FieldPattern::Range { lo: 1, hi: 0xFFFE },
                ],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PatternError::ExpansionTooLarge { limit: 64, .. }
        ));
    }

    #[test]
    fn multi_field_lowering_places_fields_msb_first() {
        let spec = PatternSpec::multi_field(
            "pair",
            vec![FieldSpec::new("hi", 8), FieldSpec::new("lo", 8)],
        )
        .unwrap();
        let keys = spec
            .lower(&Pattern::MaskedMultiField {
                fields: vec![FieldPattern::Exact(0xAB), FieldPattern::Any],
            })
            .unwrap();
        assert_eq!(keys, vec![TernaryKey::ternary(0xAB00, 0x00FF, 16)]);
        assert_eq!(spec.pack(&[0xAB, 0xCD]).unwrap(), 0xABCD);
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let spec = PatternSpec::five_tuple();
        let err = spec
            .lower(&Pattern::MaskedMultiField {
                fields: vec![FieldPattern::Any],
            })
            .unwrap_err();
        assert_eq!(
            err,
            PatternError::FieldCountMismatch {
                got: 1,
                expected: 6
            }
        );
    }

    #[test]
    fn binary_modes_reject_masked_entries() {
        let spec = PatternSpec::exact("x", 32).unwrap();
        let err = spec
            .lower(&Pattern::Prefix {
                value: 0xA000_0000,
                len: 8,
            })
            .unwrap_err();
        assert_eq!(err, PatternError::TernaryRequired { pattern: "prefix" });
        // A full-care "prefix" is fine: no mask needed.
        let keys = spec
            .lower(&Pattern::Prefix {
                value: 0xA000_0000,
                len: 32,
            })
            .unwrap();
        assert_eq!(keys, vec![TernaryKey::binary(0xA000_0000, 32)]);
    }

    #[test]
    fn lpm_spec_lowers_prefixes_like_the_hand_rolled_path() {
        let spec = PatternSpec::lpm("ipv4", 32).unwrap();
        let keys = spec
            .lower(&Pattern::Prefix {
                value: 0xC0A8_0000,
                len: 16,
            })
            .unwrap();
        assert_eq!(keys, vec![TernaryKey::ternary(0xC0A8_0000, 0xFFFF, 32)]);
        // Degenerate lengths.
        assert_eq!(
            spec.lower(&Pattern::Prefix { value: 0, len: 0 }).unwrap(),
            vec![TernaryKey::ternary(0, 0xFFFF_FFFF, 32)]
        );
        assert_eq!(
            spec.lower(&Pattern::Prefix { value: 7, len: 33 })
                .unwrap_err(),
            PatternError::PrefixTooLong { len: 33, bits: 32 }
        );
    }

    #[test]
    fn nearest_ladder_orders_by_distance_and_bounds_probes() {
        let spec = PatternSpec::dictionary(4, 2);
        let probes = spec
            .lower_probes(&Pattern::NearestMatch {
                value: 0x6162_6364,
                max_distance: 2,
            })
            .unwrap();
        // 1 exact + C(4,1) + C(4,2) = 1 + 4 + 6.
        assert_eq!(probes.len(), 11);
        assert_eq!(probes[0].dont_care(), 0);
        assert!(probes[1..5].iter().all(|p| p.dont_care().count_ones() == 8));
        assert!(probes[5..].iter().all(|p| p.dont_care().count_ones() == 16));
        // Distance ladder respects the spec maximum.
        assert_eq!(
            spec.lower_probes(&Pattern::NearestMatch {
                value: 0,
                max_distance: 3
            })
            .unwrap_err(),
            PatternError::DistanceTooFar {
                requested: 3,
                max: 2
            }
        );
        // A 16-unit key at distance 3 would need 1 + 16 + 120 + 560 probes.
        let wide = PatternSpec::nearest("w", 128, 8, 3).unwrap();
        let err = wide
            .lower_probes(&Pattern::NearestMatch {
                value: 0,
                max_distance: 3,
            })
            .unwrap_err();
        assert!(matches!(err, PatternError::ProbeBudgetExceeded { .. }));
    }

    #[test]
    fn nearest_requires_nearest_mode() {
        let spec = PatternSpec::lpm("ipv4", 32).unwrap();
        assert_eq!(
            spec.lower_probes(&Pattern::NearestMatch {
                value: 0,
                max_distance: 1
            })
            .unwrap_err(),
            PatternError::NearestUnsupported
        );
    }

    #[test]
    fn compile_picks_mode_appropriate_index_generators() {
        let hint = GeometryHint::default();
        let exact = compile(&PatternSpec::exact("e", 64).unwrap(), &hint).unwrap();
        assert_eq!(
            *exact.index(),
            IndexChoice::Hash {
                index_bits: 6,
                key_bytes: 8
            }
        );
        let lpm = compile(&PatternSpec::lpm("l", 32).unwrap(), &hint).unwrap();
        assert_eq!(*lpm.index(), IndexChoice::Range { low: 26, count: 6 });
        let mf = compile(&PatternSpec::five_tuple(), &hint).unwrap();
        // Round-robin over field tops: src, dst, sport, dport, proto, pad.
        assert_eq!(
            *mf.index(),
            IndexChoice::Bits {
                positions: vec![127, 95, 63, 47, 31, 23]
            }
        );
        let near = compile(&PatternSpec::dictionary(4, 1), &hint).unwrap();
        // One bit per byte unit, then wrap: units 0..4 top bits, unit 0/1
        // second bits.
        assert_eq!(
            *near.index(),
            IndexChoice::Bits {
                positions: vec![7, 15, 23, 31, 6, 14]
            }
        );
    }

    #[test]
    fn compile_rejects_unsatisfiable_geometry() {
        let spec = PatternSpec::exact("e", 8).unwrap();
        assert!(compile(
            &spec,
            &GeometryHint {
                rows_log2: 9,
                ..GeometryHint::default()
            }
        )
        .is_err());
        assert!(compile(
            &spec,
            &GeometryHint {
                data_bits: 65,
                ..GeometryHint::default()
            }
        )
        .is_err());
    }

    #[test]
    fn compiled_plan_round_trips_entries_and_queries() {
        let spec = PatternSpec::lpm("ipv4", 32).unwrap();
        let plan = compile(&spec, &GeometryHint::default()).unwrap();
        let mut table = plan.build_table().unwrap();
        let recs = plan
            .lower_entry(
                &Pattern::RangeViaPrefixExpansion {
                    lo: 0x0A00_0003,
                    hi: 0x0A00_0009,
                },
                7,
            )
            .unwrap();
        assert!(recs.len() > 1);
        for r in &recs {
            table.insert_sorted(*r).unwrap();
        }
        for v in 0x0A00_0003u128..=0x0A00_0009 {
            let q = plan.lower_query(&Pattern::Exact { value: v }).unwrap();
            let o = q.execute(&table);
            assert_eq!(o.hit.map(|h| h.data), Some(7), "value {v:#x}");
        }
        let q = plan
            .lower_query(&Pattern::Exact { value: 0x0A00_000A })
            .unwrap();
        assert!(q.execute(&table).hit.is_none());
    }

    #[test]
    fn data_too_wide_rejected() {
        let plan = compile(
            &PatternSpec::exact("e", 32).unwrap(),
            &GeometryHint::default(),
        )
        .unwrap();
        assert_eq!(
            plan.lower_entry(&Pattern::Exact { value: 1 }, 1 << 40)
                .unwrap_err(),
            PatternError::DataTooWide { data_bits: 32 }
        );
    }

    #[test]
    fn spec_validation_rejects_degenerate_shapes() {
        assert!(PatternSpec::exact("z", 0).is_err());
        assert!(PatternSpec::multi_field("none", vec![]).is_err());
        assert!(PatternSpec::new(
            "wide",
            vec![FieldSpec::new("a", 100), FieldSpec::new("b", 29)],
            MatchMode::MultiField
        )
        .is_err());
        assert!(PatternSpec::nearest("n", 64, 7, 1).is_err()); // 7 ∤ 64
        assert!(PatternSpec::nearest("n", 64, 8, 0).is_err());
        assert!(PatternSpec::nearest("n", 64, 8, 9).is_err());
    }

    #[test]
    fn combinations_are_lexicographic_and_complete() {
        let mut seen = Vec::new();
        for_each_combination(5, 3, &mut |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[9], vec![2, 3, 4]);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(binomial(5, 3), 10);
        assert_eq!(binomial(16, 2), 120);
        assert_eq!(binomial(3, 9), 0);
    }
}
