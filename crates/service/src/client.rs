//! Open-loop and closed-loop load generators over a [`SearchService`].
//!
//! * **Open loop** paces submissions at a fixed offered rate regardless of
//!   completions — the arrival process the controller queue model assumes —
//!   so queueing delay, shedding, and rejection become visible past the
//!   saturation knee.
//! * **Closed loop** runs N clients that each wait for their previous reply
//!   before submitting the next request — offered load self-limits to the
//!   service capacity, which is exactly what it measures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ca_ram_core::key::SearchKey;

use crate::request::{AdmissionError, ServiceOp, ServiceReply};
use crate::service::SearchService;

/// Order statistics over a latency sample set, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes `samples` (sorted in place).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn from_samples(samples: &mut [u64]) -> Self {
        samples.sort_unstable();
        let n = samples.len();
        if n == 0 {
            return Self::default();
        }
        Self {
            count: n as u64,
            mean_us: samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64,
            p50_us: samples[n / 2],
            p99_us: samples[(n * 99 / 100).min(n - 1)],
            max_us: samples[n - 1],
        }
    }
}

/// What an open-loop run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Requests offered (submission attempts).
    pub offered: u64,
    /// Offered rate actually achieved by the pacer, requests/s.
    pub offered_rps: f64,
    /// Requests that completed with a real reply.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests shed after admission (deadline/shutdown).
    pub shed: u64,
    /// Completions served via a coalesced probe.
    pub coalesced: u64,
    /// Wall time from first submission to last completion, seconds.
    pub elapsed_secs: f64,
    /// Completions per second of wall time.
    pub achieved_rps: f64,
    /// Full request latency (submission → completion) of completed requests.
    pub latency: LatencySummary,
    /// Queue-wait component (submission → worker pickup) of the same.
    pub queue_wait: LatencySummary,
}

/// What a closed-loop run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests completed across all clients.
    pub completed: u64,
    /// Wall time of the whole run, seconds.
    pub elapsed_secs: f64,
    /// Completions per second — the measured service capacity at this
    /// concurrency.
    pub achieved_rps: f64,
    /// Full request latency distribution.
    pub latency: LatencySummary,
}

/// A load generator bound to one service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceClient<'a> {
    service: &'a SearchService,
}

impl<'a> ServiceClient<'a> {
    /// Binds a client to `service`.
    #[must_use]
    pub fn new(service: &'a SearchService) -> Self {
        Self { service }
    }

    /// Offers `keys` as searches at `target_rps` (non-finite or zero =
    /// unpaced flood), using non-blocking admission so overload surfaces as
    /// rejections, then waits for every admitted request.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn open_loop(&self, keys: &[SearchKey], target_rps: f64) -> OpenLoopReport {
        let interval = (target_rps.is_finite() && target_rps > 0.0)
            .then(|| Duration::from_secs_f64(1.0 / target_rps));
        let mut tickets = Vec::with_capacity(keys.len());
        let mut rejected = 0u64;
        let start = Instant::now();
        for (i, key) in keys.iter().enumerate() {
            if let Some(interval) = interval {
                pace(start + interval.mul_f64(i as f64));
            }
            match self.service.try_submit(ServiceOp::Search(*key)) {
                Ok(ticket) => tickets.push(ticket),
                Err(_) => rejected += 1,
            }
        }
        let submit_elapsed = start.elapsed().as_secs_f64();

        let mut latencies = Vec::with_capacity(tickets.len());
        let mut queue_waits = Vec::with_capacity(tickets.len());
        let mut shed = 0u64;
        let mut coalesced = 0u64;
        for ticket in tickets {
            let completion = ticket.wait();
            if matches!(completion.reply, ServiceReply::Shed(_)) {
                shed += 1;
                continue;
            }
            if completion.coalesced {
                coalesced += 1;
            }
            latencies.push(duration_us(completion.total));
            queue_waits.push(duration_us(completion.queue_wait));
        }
        let elapsed_secs = start.elapsed().as_secs_f64();
        let completed = latencies.len() as u64;
        OpenLoopReport {
            offered: keys.len() as u64,
            offered_rps: if submit_elapsed > 0.0 {
                keys.len() as f64 / submit_elapsed
            } else {
                0.0
            },
            completed,
            rejected,
            shed,
            coalesced,
            elapsed_secs,
            achieved_rps: if elapsed_secs > 0.0 {
                completed as f64 / elapsed_secs
            } else {
                0.0
            },
            latency: LatencySummary::from_samples(&mut latencies),
            queue_wait: LatencySummary::from_samples(&mut queue_waits),
        }
    }

    /// Floods `keys` as batched searches: slices of `batch` keys submitted
    /// through [`SearchService::try_submit_batch`] with up to `window`
    /// batches in flight — one ring entry per involved shard per batch, so
    /// per-key queue traffic disappears. A full queue waits for the oldest
    /// outstanding batch instead of rejecting (the window is the
    /// backpressure), so this measures drain capacity, not rejection speed.
    ///
    /// Latency samples are per batch: `latency` is submission → last
    /// sub-batch completion, `queue_wait` the slowest sub-batch's wait.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `window` is zero.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn flood_batched(&self, keys: &[SearchKey], batch: usize, window: usize) -> OpenLoopReport {
        assert!(batch > 0, "need a batch size");
        assert!(window > 0, "need an in-flight window");
        let mut outstanding = std::collections::VecDeque::with_capacity(window);
        let mut latencies = Vec::with_capacity(keys.len().div_ceil(batch));
        let mut queue_waits = Vec::with_capacity(latencies.capacity());
        let mut completed = 0u64;
        let mut rejected = 0u64;
        let mut shed = 0u64;
        let mut reap = |completion: crate::request::BatchCompletion,
                        latencies: &mut Vec<u64>,
                        queue_waits: &mut Vec<u64>| {
            let batch_shed = completion.shed() as u64;
            shed += batch_shed;
            completed += completion.replies.len() as u64 - batch_shed;
            latencies.push(duration_us(completion.total));
            queue_waits.push(duration_us(completion.queue_wait));
        };
        let start = Instant::now();
        let mut submit_elapsed = 0.0;
        for chunk in keys.chunks(batch) {
            loop {
                match self.service.try_submit_batch(chunk) {
                    Ok(ticket) => {
                        outstanding.push_back(ticket);
                        if outstanding.len() >= window {
                            let ticket: crate::request::BatchTicket =
                                outstanding.pop_front().expect("window is non-empty");
                            reap(ticket.wait(), &mut latencies, &mut queue_waits);
                        }
                        break;
                    }
                    Err(AdmissionError::QueueFull { .. }) => {
                        // Backpressure: retire the oldest batch, try again.
                        match outstanding.pop_front() {
                            Some(ticket) => {
                                reap(ticket.wait(), &mut latencies, &mut queue_waits);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    Err(AdmissionError::ShuttingDown) => {
                        rejected += chunk.len() as u64;
                        break;
                    }
                }
            }
            submit_elapsed = start.elapsed().as_secs_f64();
        }
        for ticket in outstanding {
            reap(ticket.wait(), &mut latencies, &mut queue_waits);
        }
        let elapsed_secs = start.elapsed().as_secs_f64();
        OpenLoopReport {
            offered: keys.len() as u64,
            offered_rps: if submit_elapsed > 0.0 {
                keys.len() as f64 / submit_elapsed
            } else {
                0.0
            },
            completed,
            rejected,
            shed,
            coalesced: 0,
            elapsed_secs,
            achieved_rps: if elapsed_secs > 0.0 {
                completed as f64 / elapsed_secs
            } else {
                0.0
            },
            latency: LatencySummary::from_samples(&mut latencies),
            queue_wait: LatencySummary::from_samples(&mut queue_waits),
        }
    }

    /// Runs `clients` concurrent closed-loop clients, each submitting
    /// `ops_per_client` searches (blocking admission, one in flight per
    /// client) over an interleaved slice of `keys`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or `clients` is zero.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn closed_loop(
        &self,
        keys: &[SearchKey],
        clients: usize,
        ops_per_client: usize,
    ) -> ClosedLoopReport {
        assert!(!keys.is_empty(), "need keys to offer");
        assert!(clients > 0, "need at least one client");
        let completed = AtomicU64::new(0);
        let mut all_latencies: Vec<Vec<u64>> = Vec::with_capacity(clients);
        let start = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let completed = &completed;
                    scope.spawn(move || {
                        let mut latencies = Vec::with_capacity(ops_per_client);
                        for i in 0..ops_per_client {
                            let key = keys[(client + i * clients) % keys.len()];
                            let Ok(ticket) = self.service.submit(ServiceOp::Search(key)) else {
                                break; // shutting down
                            };
                            let completion = ticket.wait();
                            if !matches!(completion.reply, ServiceReply::Shed(_)) {
                                completed.fetch_add(1, Ordering::Relaxed);
                                latencies.push(duration_us(completion.total));
                            }
                        }
                        latencies
                    })
                })
                .collect();
            for handle in handles {
                all_latencies.push(handle.join().expect("client panicked"));
            }
        });
        let elapsed_secs = start.elapsed().as_secs_f64();
        let mut merged: Vec<u64> = all_latencies.into_iter().flatten().collect();
        let completed = completed.load(Ordering::Relaxed);
        ClosedLoopReport {
            clients,
            completed,
            elapsed_secs,
            achieved_rps: if elapsed_secs > 0.0 {
                completed as f64 / elapsed_secs
            } else {
                0.0
            },
            latency: LatencySummary::from_samples(&mut merged),
        }
    }
}

/// Waits until the absolute deadline `due`: coarse sleep while far out,
/// `yield_now` inside the scheduler-jitter window, a busy spin only for the
/// last few microseconds.
///
/// The deadline is absolute (`start + i × interval`), so one late arrival
/// does not push every later arrival back — the pacer catches up instead of
/// accumulating drift. The yield phase matters on small machines: a hard
/// spin here steals the CPU from the shard workers and shows up as
/// queue-wait tail that is pacing artifact, not queue behavior.
fn pace(due: Instant) {
    /// Below this remaining time, yield instead of sleeping: `sleep` wakes
    /// a whole scheduler tick late, which at low load dominated p99.
    const SLEEP_SLACK: Duration = Duration::from_micros(300);
    /// Below this remaining time, spin: a yield could overshoot.
    const SPIN_WINDOW: Duration = Duration::from_micros(5);
    loop {
        let now = Instant::now();
        if now >= due {
            return;
        }
        let remaining = due - now;
        if remaining > SLEEP_SLACK {
            std::thread::sleep(remaining.saturating_sub(SLEEP_SLACK));
        } else if remaining > SPIN_WINDOW {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[allow(clippy::cast_possible_truncation)]
fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_samples_is_zeroed() {
        let summary = LatencySummary::from_samples(&mut Vec::new());
        assert_eq!(summary.count, 0);
        assert_eq!(summary.max_us, 0);
    }

    #[test]
    fn summary_order_statistics() {
        let mut samples: Vec<u64> = (1..=100).rev().collect();
        let summary = LatencySummary::from_samples(&mut samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_us, 51);
        assert_eq!(summary.p99_us, 100);
        assert_eq!(summary.max_us, 100);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
    }
}
