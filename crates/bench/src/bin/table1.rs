//! Reproduces **Table 1**: cell count, area, and delay for each stage of
//! match processing (Sec. 3.3), from the analytical synthesis model
//! calibrated to the paper's 0.16 µm standard-cell prototype (`C = 1600`,
//! key sizes 1–16 bytes, don't-care support).
//!
//! Also prints the fixed-width application-specific variant the paper
//! predicts ("much of this complexity will be removed") and the Synopsys
//! worst-case dynamic power checkpoint.

use ca_ram_bench::rule;
use ca_ram_hwmodel::synth::{MatchProcessorParams, SynthesisModel};
use ca_ram_hwmodel::Nanoseconds;

fn print_report(title: &str, params: &MatchProcessorParams) {
    let report = SynthesisModel::new().synthesize(params);
    println!("{title}");
    println!(
        "{:<26} {:>8} {:>12} {:>10}",
        "Step", "# cells", "Area, um^2", "Delay, ns"
    );
    rule(60);
    for s in report.stages() {
        let delay = if s.stage.is_hidden() {
            format!("({:.2})", s.delay.value())
        } else {
            format!("{:.2}", s.delay.value())
        };
        println!(
            "{:<26} {:>8} {:>12.0} {:>10}",
            s.stage.to_string(),
            s.cells,
            s.area.value(),
            delay
        );
    }
    rule(60);
    println!(
        "{:<26} {:>8} {:>12.0} {:>10.2}",
        "Total",
        report.total_cells(),
        report.total_area().value(),
        report.critical_path().value()
    );
    println!(
        "max single-cycle clock: {:.0} MHz\n",
        report.max_clock().value()
    );
}

fn main() {
    println!("Table 1: Cell count, area, and delay for each stage of match processing\n");
    let proto = MatchProcessorParams::prototype();
    print_report(
        "Prototype (C = 1600, key sizes 1-16 bytes, ternary, 0.16 um):",
        &proto,
    );
    println!("Paper: 3,804 / 5,252 / 899 / 6,037 cells; 66,228 / 10,591 / 1,970 / 21,775 um^2;");
    println!("(0.89) / 0.95 / 1.91 / 1.99 ns; totals 15,992 cells, 100,564 um^2, 4.85 ns.\n");

    let report = SynthesisModel::new().synthesize(&proto);
    let p = report.dynamic_power(1.8, 0.5, Nanoseconds::new(6.0));
    println!(
        "Worst-case dynamic power @ VDD=1.8 V, activity 0.5, Tclk=6 ns: {:.1} (paper: 60.8 mW)\n",
        p
    );

    print_report(
        "Application-specific variant (fixed 64-bit ternary keys, C = 1600):",
        &MatchProcessorParams::fixed_width(1600, 64, true),
    );
    print_report(
        "Application-specific variant (fixed 128-bit binary keys, C = 12288):",
        &MatchProcessorParams::fixed_width(12_288, 128, false),
    );
}
