//! The case runner: deterministic per-test seeding, rejection handling,
//! and failure reporting (without shrinking).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test configuration; only the case count is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's precondition (`prop_assume!`) failed; draw another.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// The result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to derive a per-test seed from the test name so streams
/// are stable across runs and independent across tests.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `case` until `config.cases` cases pass.
///
/// The seed is derived from the test name, or overridden by the
/// `PROPTEST_SEED` environment variable (decimal `u64`) to replay a
/// reported failure.
///
/// # Panics
///
/// Panics when a case fails, or when too many cases in a row are rejected
/// by `prop_assume!`.
pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut SmallRng) -> TestCaseResult,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let reject_budget = config.cases.saturating_mul(20).saturating_add(1_000);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected}, last: {why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} (seed {seed}; \
                     rerun with PROPTEST_SEED={seed}):\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runs_requested_case_count() {
        let mut count = 0;
        run("counting", &ProptestConfig::with_cases(37), |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 37);
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut passes = 0;
        run("rejecting", &ProptestConfig::with_cases(10), |rng| {
            if rng.gen_bool(0.5) {
                return Err(TestCaseError::Reject("coin".into()));
            }
            passes += 1;
            Ok(())
        });
        assert_eq!(passes, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_context() {
        run("failing", &ProptestConfig::with_cases(5), |_rng| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
