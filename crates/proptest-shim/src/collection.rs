//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SampleRange;

/// Length specifications accepted by [`vec()`]: a fixed `usize`, `a..b`, or
/// `a..=b`.
pub trait SizeRange {
    /// Draws a length.
    fn sample_len(&self, rng: &mut SmallRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut SmallRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut SmallRng) -> usize {
        self.clone().sample_single(rng)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut SmallRng) -> usize {
        self.clone().sample_single(rng)
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose elements come from `element` and whose length comes from
/// `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// The strategy returned by [`hash_map`].
#[derive(Debug, Clone)]
pub struct HashMapStrategy<K, V, L> {
    key: K,
    value: V,
    len: L,
}

impl<K, V, L> Strategy for HashMapStrategy<K, V, L>
where
    K: Strategy,
    K::Value: std::hash::Hash + Eq,
    V: Strategy,
    L: SizeRange,
{
    type Value = std::collections::HashMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        let mut map = std::collections::HashMap::with_capacity(n);
        // Duplicate keys collapse; retry a bounded number of times so tiny
        // key domains still terminate.
        let mut attempts = 0usize;
        while map.len() < n && attempts < n * 20 + 100 {
            attempts += 1;
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// A `HashMap` with keys from `key`, values from `value`, and size from
/// `len` (best-effort when the key domain is small).
pub fn hash_map<K, V, L>(key: K, value: V, len: L) -> HashMapStrategy<K, V, L>
where
    K: Strategy,
    K::Value: std::hash::Hash + Eq,
    V: Strategy,
    L: SizeRange,
{
    HashMapStrategy { key, value, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = SmallRng::seed_from_u64(3);
        let fixed = vec(0u32..5, 6usize);
        assert_eq!(fixed.generate(&mut rng).len(), 6);
        let ranged = vec(0u32..5, 1..4usize);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
