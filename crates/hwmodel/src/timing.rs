//! Latency and bandwidth model (Sec. 3.4 "Performance").
//!
//! The paper's two closed-form results:
//!
//! ```text
//! B_CA-RAM = (Nslice / nmem) × fclk        (conservative, non-pipelined memory)
//! B_CAM    = fCAM_clk / cycles_per_search
//! ```
//!
//! and the latency decomposition `T_CA-RAM = Tmem + Tmatch`, where the match
//! step is normally pipelined with the next memory access so only `Tmem`
//! limits throughput. The cycle-level controller in `ca-ram-core` cross-checks
//! these formulas by simulation.

use crate::units::{MegaSearchesPerSecond, Megahertz, Nanoseconds};

/// Timing parameters of a CA-RAM device.
///
/// # Examples
///
/// The paper's headline bandwidth formula:
///
/// ```
/// use ca_ram_hwmodel::CaRamTiming;
///
/// let dram = CaRamTiming::dram_200mhz();
/// // B = Nslice/nmem x fclk = 8/6 x 200 MHz.
/// let b = dram.search_bandwidth(8, 1.0);
/// assert!((b.value() - 8.0 / 6.0 * 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaRamTiming {
    clock: Megahertz,
    access_cycles: u32,
    min_access_interval: u32,
    match_latency: Nanoseconds,
    match_pipelined: bool,
}

impl CaRamTiming {
    /// Creates a timing description.
    ///
    /// * `clock` — operating frequency (`fclk`).
    /// * `access_cycles` — cycles from row-address to data-out (latency).
    /// * `min_access_interval` — minimum cycles between two back-to-back
    ///   accesses to the same slice (`nmem`); ≥ `1`, and for DRAM usually
    ///   equals `access_cycles` when the array is not internally pipelined.
    /// * `match_latency` — combinational delay of the match processors
    ///   (Table 1 critical path).
    /// * `match_pipelined` — whether matching overlaps the next memory
    ///   access (the paper assumes it does when computing bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `access_cycles` or `min_access_interval` is zero.
    #[must_use]
    pub fn new(
        clock: Megahertz,
        access_cycles: u32,
        min_access_interval: u32,
        match_latency: Nanoseconds,
        match_pipelined: bool,
    ) -> Self {
        assert!(access_cycles > 0, "memory access takes at least one cycle");
        assert!(min_access_interval > 0, "nmem must be at least one cycle");
        Self {
            clock,
            access_cycles,
            min_access_interval,
            match_latency,
            match_pipelined,
        }
    }

    /// The paper's DRAM-based configuration for Fig. 8: 200 MHz clock and a
    /// memory access latency of at least 6 cycles.
    #[must_use]
    pub fn dram_200mhz() -> Self {
        Self::new(Megahertz::new(200.0), 6, 6, Nanoseconds::new(4.85), true)
    }

    /// An SRAM-based configuration: single-cycle array at 500 MHz.
    #[must_use]
    pub fn sram_500mhz() -> Self {
        Self::new(Megahertz::new(500.0), 1, 1, Nanoseconds::new(2.0), true)
    }

    /// Operating frequency.
    #[must_use]
    pub fn clock(&self) -> Megahertz {
        self.clock
    }

    /// `nmem`: minimum cycles between back-to-back accesses to one slice.
    #[must_use]
    pub fn min_access_interval(&self) -> u32 {
        self.min_access_interval
    }

    /// Memory access latency in cycles.
    #[must_use]
    pub fn access_cycles(&self) -> u32 {
        self.access_cycles
    }

    /// `Tmem`: one memory access, in nanoseconds.
    #[must_use]
    pub fn memory_latency(&self) -> Nanoseconds {
        self.clock.period() * f64::from(self.access_cycles)
    }

    /// `T_CA-RAM` for a lookup that accesses `buckets_probed` buckets
    /// (AMAL ≥ 1): serialized probes plus one match stage at the end (the
    /// intermediate match stages overlap the following probes when
    /// pipelined).
    ///
    /// # Panics
    ///
    /// Panics if `buckets_probed` is zero — every lookup touches at least
    /// one bucket.
    #[must_use]
    pub fn search_latency(&self, buckets_probed: u32) -> Nanoseconds {
        assert!(buckets_probed > 0, "a lookup accesses at least one bucket");
        let mem = self.memory_latency() * f64::from(buckets_probed);
        if self.match_pipelined {
            mem + self.match_latency
        } else {
            mem + self.match_latency * f64::from(buckets_probed)
        }
    }

    /// `B_CA-RAM = (Nslice / nmem) × fclk`, in million searches per second.
    ///
    /// `amal` (average memory accesses per lookup, ≥ 1.0) derates the
    /// bandwidth for probing overflow buckets; pass `1.0` for the paper's
    /// headline formula.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero or `amal < 1.0`.
    #[must_use]
    pub fn search_bandwidth(&self, slices: u32, amal: f64) -> MegaSearchesPerSecond {
        assert!(slices > 0, "bandwidth of a zero-slice device is undefined");
        assert!(amal >= 1.0, "AMAL is at least one access per lookup");
        let per_slice = self.clock.value() / f64::from(self.min_access_interval);
        MegaSearchesPerSecond::new(per_slice * f64::from(slices) / amal)
    }
}

/// Timing parameters of a CAM/TCAM device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamTiming {
    clock: Megahertz,
    cycles_per_search: u32,
    data_access: Option<Nanoseconds>,
}

impl CamTiming {
    /// Creates a CAM timing description.
    ///
    /// `cycles_per_search` models the multi-cycle lookups of recent
    /// energy-saving CAM devices (Sec. 3.4: "many recent CAM devices require
    /// multiple cycles to finish a lookup"). `data_access` is the latency of
    /// the separate RAM read that follows a CAM lookup to fetch the record's
    /// data — fully exposed in a CAM, hidden in CA-RAM (Sec. 3.4).
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_search` is zero.
    #[must_use]
    pub fn new(clock: Megahertz, cycles_per_search: u32, data_access: Option<Nanoseconds>) -> Self {
        assert!(cycles_per_search > 0, "a search takes at least one cycle");
        Self {
            clock,
            cycles_per_search,
            data_access,
        }
    }

    /// The paper's Fig. 8 TCAM reference: 143 MHz, pipelined (1 search/cycle),
    /// followed by a 30 ns external data-RAM access.
    #[must_use]
    pub fn tcam_143mhz() -> Self {
        Self::new(Megahertz::new(143.0), 1, Some(Nanoseconds::new(30.0)))
    }

    /// Operating frequency.
    #[must_use]
    pub fn clock(&self) -> Megahertz {
        self.clock
    }

    /// Search latency including the exposed data access, if configured.
    #[must_use]
    pub fn search_latency(&self) -> Nanoseconds {
        let t = self.clock.period() * f64::from(self.cycles_per_search);
        match self.data_access {
            Some(d) => t + d,
            None => t,
        }
    }

    /// `B_CAM = fCAM_clk / cycles_per_search`.
    #[must_use]
    pub fn search_bandwidth(&self) -> MegaSearchesPerSecond {
        MegaSearchesPerSecond::new(self.clock.value() / f64::from(self.cycles_per_search))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_formula_matches_paper() {
        // B = Nslice/nmem × fclk: 8 slices, 6-cycle DRAM, 200 MHz
        // → 8/6 × 200 = 266.7 Msearch/s.
        let t = CaRamTiming::dram_200mhz();
        let b = t.search_bandwidth(8, 1.0);
        assert!((b.value() - 8.0 / 6.0 * 200.0).abs() < 1e-9);
    }

    #[test]
    fn amal_derates_bandwidth() {
        let t = CaRamTiming::dram_200mhz();
        let ideal = t.search_bandwidth(8, 1.0);
        let real = t.search_bandwidth(8, 1.159); // Table 2 design D AMALu
        assert!(real.value() < ideal.value());
        assert!((real.value() * 1.159 - ideal.value()).abs() < 1e-9);
    }

    #[test]
    fn caram_beats_tcam_bandwidth_with_enough_slices() {
        // Sec. 3.4: increasing Nslice is straightforward in CA-RAM and makes
        // it bandwidth-competitive with CAM.
        let caram = CaRamTiming::dram_200mhz();
        let tcam = CamTiming::tcam_143mhz();
        assert!(caram.search_bandwidth(1, 1.0).value() < tcam.search_bandwidth().value());
        assert!(caram.search_bandwidth(8, 1.0).value() > tcam.search_bandwidth().value());
    }

    #[test]
    fn latency_single_probe() {
        let t = CaRamTiming::dram_200mhz();
        // 6 cycles at 5 ns + 4.85 ns match = 34.85 ns.
        assert!((t.search_latency(1).value() - 34.85).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_probes() {
        let t = CaRamTiming::dram_200mhz();
        let one = t.search_latency(1);
        let two = t.search_latency(2);
        assert!((two.value() - one.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unpipelined_match_pays_per_probe() {
        let t = CaRamTiming::new(Megahertz::new(200.0), 6, 6, Nanoseconds::new(4.85), false);
        assert!((t.search_latency(2).value() - (60.0 + 2.0 * 4.85)).abs() < 1e-9);
    }

    #[test]
    fn caram_latency_with_data_hidden_beats_cam_plus_data_ram() {
        // Sec. 3.4: once the data access following a CAM lookup is counted,
        // CA-RAM latency is comparable or shorter, because CA-RAM stores data
        // with keys and the data arrives with the row.
        let caram = CaRamTiming::dram_200mhz();
        let cam = CamTiming::tcam_143mhz();
        assert!(caram.search_latency(1).value() < cam.search_latency().value());
    }

    #[test]
    fn cam_bandwidth_divides_by_cycles() {
        let multi = CamTiming::new(Megahertz::new(143.0), 2, None);
        assert!((multi.search_bandwidth().value() - 71.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_probe_latency_rejected() {
        let _ = CaRamTiming::dram_200mhz().search_latency(0);
    }

    #[test]
    #[should_panic(expected = "AMAL is at least one")]
    fn sub_one_amal_rejected() {
        let _ = CaRamTiming::dram_200mhz().search_bandwidth(1, 0.5);
    }
}
