//! Round-trip tests for the optional `serde` feature (report types are
//! data-interchange structures per C-SERDE).
#![cfg(feature = "serde")]

use ca_ram_core::memtest::{MemTestReport, MemoryFault};
use ca_ram_core::stats::LoadReport;

#[test]
fn load_report_round_trips_through_json() {
    let report = LoadReport {
        buckets: 2048,
        slots_per_bucket: 192,
        original_records: 186_760,
        duplicate_records: 13_846,
        spilled_records: 29_105,
        overflowing_buckets: 338,
        amal_uniform: 1.295,
        amal_weighted: 1.156,
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let back: LoadReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, report);
    assert!((back.load_factor() - report.load_factor()).abs() < 1e-12);
}

#[test]
fn memtest_report_round_trips_through_json() {
    let report = MemTestReport {
        test: "march-c-",
        words: 64,
        faults: vec![MemoryFault {
            address: 7,
            expected: u64::MAX,
            observed: 0,
        }],
    };
    let json = serde_json::to_string(&report).expect("serializes");
    // `test` is &'static str; deserialize into an owned shadow via serde_json::Value.
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid json");
    assert_eq!(value["words"], 64);
    assert_eq!(value["faults"][0]["address"], 7);
}
