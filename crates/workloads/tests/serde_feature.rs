//! Round-trip tests for the optional `serde` feature: experiment configs
//! are data-interchange structures (C-SERDE), so sweeps can be driven from
//! JSON files.
#![cfg(feature = "serde")]

use ca_ram_workloads::bgp::BgpConfig;
use ca_ram_workloads::chunks::ChunkConfig;
use ca_ram_workloads::ipv6::Ipv6Config;
use ca_ram_workloads::trigram::TrigramConfig;

#[test]
fn configs_round_trip_through_json() {
    let bgp = BgpConfig::as1103_like();
    let back: BgpConfig = serde_json::from_str(&serde_json::to_string(&bgp).unwrap()).unwrap();
    assert_eq!(back, bgp);

    let tri = TrigramConfig::sphinx_like();
    let back: TrigramConfig =
        serde_json::from_str(&serde_json::to_string(&tri).unwrap()).unwrap();
    assert_eq!(back, tri);

    let v6 = Ipv6Config::default();
    let back: Ipv6Config = serde_json::from_str(&serde_json::to_string(&v6).unwrap()).unwrap();
    assert_eq!(back, v6);

    let ch = ChunkConfig::default();
    let back: ChunkConfig = serde_json::from_str(&serde_json::to_string(&ch).unwrap()).unwrap();
    assert_eq!(back, ch);
}

#[test]
fn config_json_is_human_editable() {
    // The driving use case: a sweep config written by hand.
    let json = r#"{"prefixes": 1000, "blocks": 64, "block_size_cv": 1.5, "seed": 7}"#;
    let config: BgpConfig = serde_json::from_str(json).unwrap();
    assert_eq!(config.prefixes, 1000);
    let table = ca_ram_workloads::bgp::generate(&config);
    assert_eq!(table.len(), 1000);
}
