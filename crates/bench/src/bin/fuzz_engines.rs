//! Differential fuzzing of every search engine against the reference
//! model.
//!
//! For each generation scenario (every supported key width, exact and
//! ternary churn, LPM builds and online updates, a static search-only
//! profile) the seeded stream generator produces one adversarial op
//! stream, and every engine legal for the scenario replays it in lockstep
//! with the oracle. Any disagreement is ddmin-minimized and printed as a
//! checked-in-able fixture; the process exits non-zero so CI fails on a
//! divergence.
//!
//! Usage:
//! `fuzz_engines [--seed N] [--ops N] [--time-box-ms N] [--out PATH]
//!               [--scenario SUBSTR] [--engine SUBSTR]`
//!
//! `--ops` is the stream length per scenario (default 20,000). The time
//! box (default 300,000 ms) truncates *coverage*, never verdicts: cells
//! skipped for time are reported as skipped in the JSON, and a divergence
//! found before the box expires always fails the run.

use std::fmt::Write as _;
use std::time::Instant;

use ca_ram_bench::fleet::{durable_spec, fleet_for, fleet_names};
use ca_ram_bench::{write_text_atomic, BenchError, Cli, Result};
use ca_ram_core::oracle::{run_case, run_kernel_case, standard_scenarios, OpStreamGen, Profile};
use ca_ram_core::storage::{crash_sweep, CrashSweepOptions, CutGranularity};

/// Replays the harness caps minimization at, bounding worst-case runtime.
const MINIMIZE_BUDGET: usize = 400;

/// Stream-prefix length for the per-scenario crash-injection cell; a
/// checkpoint is injected halfway so the sweep covers snapshot-plus-tail
/// recovery, and the cuts land in the post-checkpoint segment.
const CRASH_SWEEP_OPS: usize = 300;

/// The synthetic engine name the crash-injection cells report under
/// (selectable with `--engine`, like any fleet engine).
const CRASH_ENGINE: &str = "ca-ram/durable+crash";

/// The matrix floor for an unfiltered run: every cell must be at least
/// visited (checked or reported skipped). Bump this when scenarios or
/// engines are added, so an accidental fleet or scenario regression
/// (a gating typo silently dropping cells) fails CI instead of shrinking
/// coverage quietly.
const MIN_UNFILTERED_CELLS: usize = 463;

/// Validates a `--scenario`/`--engine` substring filter against the known
/// names: a filter matching nothing is a typo, reported with the full
/// list of valid values rather than silently checking zero cells.
fn check_filter(flag: &str, filter: Option<&str>, names: &[String]) -> Result<()> {
    let Some(f) = filter else { return Ok(()) };
    if names.iter().any(|n| n.contains(f)) {
        return Ok(());
    }
    Err(BenchError::Arg(format!(
        "--{flag} {f:?} matches none of: {}",
        names.join(", ")
    )))
}

struct Cell {
    scenario: String,
    engine: String,
    ops: usize,
    status: &'static str,
    detail: String,
}

/// Records one checked cell: green on agreement, or the printed and
/// counted divergence with its minimized fixture.
fn record_cell(
    cells: &mut Vec<Cell>,
    divergences: &mut usize,
    scenario: &str,
    engine: String,
    ops: usize,
    report: Option<ca_ram_core::oracle::DivergenceReport>,
) {
    match report {
        None => cells.push(Cell {
            scenario: scenario.to_string(),
            engine,
            ops,
            status: "ok",
            detail: String::new(),
        }),
        Some(r) => {
            *divergences += 1;
            println!(
                "DIVERGENCE: {} on {} at op {} — {}",
                r.engine, r.scenario, r.op_index, r.detail
            );
            println!("--- minimized repro ({} ops) ---", r.repro.len());
            print!("{}", r.to_fixture());
            println!("--------------------------------");
            cells.push(Cell {
                scenario: scenario.to_string(),
                engine: r.engine,
                ops,
                status: "divergence",
                detail: r.detail,
            });
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<()> {
    let cli = Cli::from_env();
    let seed: u64 = cli.parse("seed", 0)?;
    let ops: usize = cli.parse("ops", 20_000)?;
    let time_box_ms: u64 = cli.parse("time-box-ms", 300_000)?;
    let out = cli.value("out").unwrap_or("BENCH_fuzz.json").to_string();
    let scenario_filter = cli.value("scenario").map(str::to_string);
    let engine_filter = cli.value("engine").map(str::to_string);
    let scenario_names: Vec<String> = standard_scenarios()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    check_filter("scenario", scenario_filter.as_deref(), &scenario_names)?;
    let mut engine_names: Vec<String> = fleet_names().iter().map(ToString::to_string).collect();
    engine_names.push(CRASH_ENGINE.to_string());
    check_filter("engine", engine_filter.as_deref(), &engine_names)?;

    let started = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    let mut divergences = 0usize;
    let mut skipped = 0usize;

    println!("fuzz_engines: seed {seed}, {ops} ops per scenario, time box {time_box_ms} ms");

    for sc in standard_scenarios() {
        if let Some(f) = &scenario_filter {
            if !sc.name.contains(f.as_str()) {
                continue;
            }
        }
        let mut generator = OpStreamGen::new(&sc, seed);
        let preload = if sc.profile == Profile::SearchOnly {
            generator.preload(sc.max_live)
        } else {
            Vec::new()
        };
        let stream = generator.generate(ops);
        for case in fleet_for(&sc, &preload) {
            if let Some(f) = &engine_filter {
                if !case.name.contains(f.as_str()) {
                    continue;
                }
            }
            if started.elapsed().as_millis() >= u128::from(time_box_ms) {
                // The kernel twin cell is skipped along with its engine,
                // so the matrix floor still accounts for both.
                let mut names = vec![case.name.clone()];
                if case.name.starts_with("ca-ram/") {
                    names.push(format!("{}+kernel", case.name));
                }
                for engine in names {
                    skipped += 1;
                    cells.push(Cell {
                        scenario: sc.name.clone(),
                        engine,
                        ops: 0,
                        status: "skipped",
                        detail: "time box expired".to_string(),
                    });
                }
                continue;
            }
            let report = run_case(&case, &sc.name, seed, sc.key_bits, &stream, MINIMIZE_BUDGET);
            record_cell(
                &mut cells,
                &mut divergences,
                &sc.name,
                case.name.clone(),
                ops,
                report,
            );
            // Scalar-vs-SIMD differential cell: the CA-RAM engines are
            // the ones whose compare runs through the lane kernels, so
            // each replays the stream again as a scalar/SIMD twin pair.
            if case.name.starts_with("ca-ram/") {
                let report =
                    run_kernel_case(&case, &sc.name, seed, sc.key_bits, &stream, MINIMIZE_BUDGET);
                record_cell(
                    &mut cells,
                    &mut divergences,
                    &sc.name,
                    format!("{}+kernel", case.name),
                    ops,
                    report,
                );
            }
        }
        // Durability crash-injection cell: replay a bounded prefix of the
        // same stream through a DurableTable, then cut its WAL at every
        // record boundary (plus an intra-record sample, which models a
        // torn write) and require recovery at each cut to match the
        // serially-replayed reference model.
        let wanted = engine_filter
            .as_deref()
            .is_none_or(|f| CRASH_ENGINE.contains(f));
        if sc.profile != Profile::SearchOnly
            && wanted
            && durable_spec(sc.key_bits, sc.hash_lo).is_some()
        {
            if started.elapsed().as_millis() >= u128::from(time_box_ms) {
                skipped += 1;
                cells.push(Cell {
                    scenario: sc.name.clone(),
                    engine: CRASH_ENGINE.to_string(),
                    ops: 0,
                    status: "skipped",
                    detail: "time box expired".to_string(),
                });
            } else {
                let hash_lo = sc.hash_lo;
                let spec_for = move |bits| durable_spec(bits, hash_lo);
                let sweep = crash_sweep(
                    &sc.name,
                    &spec_for,
                    sc.key_bits,
                    &stream,
                    &CrashSweepOptions {
                        granularity: CutGranularity::Records { intra_samples: 1 },
                        max_ops: CRASH_SWEEP_OPS,
                        checkpoint_at: Some(CRASH_SWEEP_OPS / 2),
                        probes_per_cut: 4,
                    },
                );
                match sweep {
                    Ok(rep) => cells.push(Cell {
                        scenario: sc.name.clone(),
                        engine: CRASH_ENGINE.to_string(),
                        ops: rep.ops_logged,
                        status: "ok",
                        detail: format!(
                            "{} cuts ({} torn), {} probes",
                            rep.cuts_tested, rep.torn_cuts, rep.probes_checked
                        ),
                    }),
                    Err(e) => {
                        divergences += 1;
                        println!("CRASH DIVERGENCE: {} on {} — {e}", CRASH_ENGINE, sc.name);
                        cells.push(Cell {
                            scenario: sc.name.clone(),
                            engine: CRASH_ENGINE.to_string(),
                            ops: CRASH_SWEEP_OPS,
                            status: "divergence",
                            detail: e.to_string(),
                        });
                    }
                }
            }
        }
    }

    let elapsed_ms = started.elapsed().as_millis();
    let checked = cells.iter().filter(|c| c.status != "skipped").count();
    println!(
        "fuzz_engines: {checked} engine x scenario cells checked, {divergences} divergence(s), \
         {skipped} skipped, {elapsed_ms} ms"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"fuzz\",\n");
    let _ = write!(
        json,
        "  \"seed\": {seed},\n  \"ops_per_scenario\": {ops},\n  \
         \"time_box_ms\": {time_box_ms},\n  \"elapsed_ms\": {elapsed_ms},\n  \
         \"cells_checked\": {checked},\n  \"cells_skipped\": {skipped},\n  \
         \"divergences\": {divergences},\n"
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"engine\": \"{}\", \"ops\": {}, \
             \"status\": \"{}\", \"detail\": \"{}\"}}{}",
            c.scenario,
            c.engine,
            c.ops,
            c.status,
            c.detail.replace('\\', "\\\\").replace('"', "\\\""),
            if i + 1 == cells.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    write_text_atomic(&out, &json)?;
    println!("(wrote {out})");

    if scenario_filter.is_none() && engine_filter.is_none() {
        ca_ram_bench::ensure(
            checked + skipped >= MIN_UNFILTERED_CELLS,
            &format!(
                "unfiltered run visited {} cells, below the {MIN_UNFILTERED_CELLS}-cell matrix \
                 floor — a scenario or fleet gating regression dropped coverage",
                checked + skipped
            ),
        )?;
    }
    ca_ram_bench::ensure(
        divergences == 0,
        "differential fuzzing found engine/model divergences",
    )
}
