//! TCAM entry-count reduction by prefix aggregation (Sec. 5.1's theme:
//! "more sophisticated encoding schemes can reduce the number of necessary
//! entries in TCAM", cf. Hanzawa et al. \[7\]).
//!
//! This module implements the classical *sibling merge* optimization: two
//! prefixes `P0/l` and `P1/l` that differ only in bit `l` and carry the same
//! data collapse into `P/(l-1)`, applied to a fixed point. Aggregation is
//! semantics-preserving for LPM **when the shorter merged prefix is not
//! shadowed differently** — the implementation checks covering prefixes and
//! refuses unsafe merges, so the aggregated table computes the same
//! forwarding function.

use std::collections::HashMap;

use ca_ram_core::key::TernaryKey;

/// A (prefix, data) pair to aggregate. The prefix is a ternary key whose
/// don't-care bits form a contiguous low-order run (an IP-style prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixEntry {
    /// The prefix as a ternary key.
    pub key: TernaryKey,
    /// Forwarding data; merges require equal data.
    pub data: u64,
}

/// Result of an aggregation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregated {
    /// The reduced entry set.
    pub entries: Vec<PrefixEntry>,
    /// Entries eliminated.
    pub removed: usize,
}

fn prefix_len(key: &TernaryKey) -> u32 {
    key.care_count()
}

fn is_prefix_shaped(key: &TernaryKey) -> bool {
    // Don't-care bits must be exactly the low (bits - care) positions.
    let dc_len = key.bits() - key.care_count();
    let expected = if dc_len == 0 {
        0
    } else {
        (1u128 << dc_len) - 1
    };
    key.dont_care() == expected
}

/// Aggregates sibling prefixes with identical data, to a fixed point.
///
/// Entries that are not prefix-shaped are passed through untouched. A merge
/// is performed only when no *other* entry lies strictly between the merged
/// parent and the two siblings in specificity over the same address space —
/// with same-data siblings and LPM semantics, the merge is then exact.
///
/// # Panics
///
/// Panics if entries have differing key widths.
#[must_use]
pub fn aggregate(entries: &[PrefixEntry]) -> Aggregated {
    let original = entries.len();
    if entries.is_empty() {
        return Aggregated {
            entries: Vec::new(),
            removed: 0,
        };
    }
    let bits = entries[0].key.bits();
    assert!(
        entries.iter().all(|e| e.key.bits() == bits),
        "mixed key widths cannot be aggregated"
    );
    // Pass through non-prefix-shaped entries untouched; index the rest by
    // (length, value) for O(1) sibling and parent lookups.
    let mut passthrough = Vec::new();
    let mut live: HashMap<(u32, u128), u64> = HashMap::with_capacity(entries.len());
    for e in entries {
        if is_prefix_shaped(&e.key) {
            // First occurrence wins for duplicate keys.
            live.entry((prefix_len(&e.key), e.key.value()))
                .or_insert(e.data);
        } else {
            passthrough.push(*e);
        }
    }
    let dedup_removed = original - passthrough.len() - live.len();

    // Worklist of candidate merge points.
    let mut work: Vec<(u32, u128)> = live.keys().copied().collect();
    while let Some((len, value)) = work.pop() {
        if len == 0 {
            continue;
        }
        let Some(&data) = live.get(&(len, value)) else {
            continue; // already merged away
        };
        let sib_bit = 1u128 << (bits - len);
        let zero_side = value & !sib_bit;
        let sibling = zero_side | sib_bit;
        let other = if value & sib_bit == 0 {
            sibling
        } else {
            zero_side
        };
        let Some(&other_data) = live.get(&(len, other)) else {
            continue;
        };
        if other_data != data {
            continue;
        }
        let parent_len = len - 1;
        let parent_value = zero_side
            & if parent_len == 0 {
                0
            } else {
                !((1u128 << (bits - parent_len)) - 1)
            };
        match live.get(&(parent_len, parent_value)) {
            Some(&pd) if pd == data => {
                // Parent already present with the same data: the children
                // are redundant.
                live.remove(&(len, zero_side));
                live.remove(&(len, sibling));
                work.push((parent_len, parent_value));
            }
            Some(_) => {
                // Parent present with different data: merging would create
                // an ambiguous duplicate; keep the children.
            }
            None => {
                live.remove(&(len, zero_side));
                live.remove(&(len, sibling));
                live.insert((parent_len, parent_value), data);
                work.push((parent_len, parent_value));
            }
        }
    }

    let mut out = passthrough;
    out.extend(live.into_iter().map(|((len, value), data)| {
        let dc = if len == 0 {
            low_mask_for(bits)
        } else if len == bits {
            0
        } else {
            (1u128 << (bits - len)) - 1
        };
        PrefixEntry {
            key: TernaryKey::ternary(value, dc, bits),
            data,
        }
    }));
    // Keep output deterministic.
    out.sort_by(|a, b| {
        b.key
            .care_count()
            .cmp(&a.key.care_count())
            .then(a.key.value().cmp(&b.key.value()))
            .then(a.data.cmp(&b.data))
    });
    let _ = dedup_removed;
    Aggregated {
        removed: original - out.len(),
        entries: out,
    }
}

pub(crate) fn low_mask_for(bits: u32) -> u128 {
    if bits == 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::key::SearchKey;

    fn p(addr: u32, len: u32, data: u64) -> PrefixEntry {
        let dc = if len == 32 {
            0
        } else {
            (1u128 << (32 - len)) - 1
        };
        PrefixEntry {
            key: TernaryKey::ternary(u128::from(addr) & !dc, dc, 32),
            data,
        }
    }

    /// Brute-force LPM over an entry list.
    fn lpm(entries: &[PrefixEntry], addr: u32) -> Option<u64> {
        entries
            .iter()
            .filter(|e| e.key.matches(&SearchKey::new(u128::from(addr), 32)))
            .max_by_key(|e| e.key.care_count())
            .map(|e| e.data)
    }

    #[test]
    fn sibling_pair_merges() {
        let entries = vec![p(0x0A00_0000, 24, 7), p(0x0A00_0100, 24, 7)];
        let agg = aggregate(&entries);
        assert_eq!(agg.entries.len(), 1);
        assert_eq!(agg.removed, 1);
        assert_eq!(agg.entries[0].key.care_count(), 23);
    }

    #[test]
    fn different_data_does_not_merge() {
        let entries = vec![p(0x0A00_0000, 24, 7), p(0x0A00_0100, 24, 8)];
        let agg = aggregate(&entries);
        assert_eq!(agg.removed, 0);
    }

    #[test]
    fn cascading_merges_to_fixed_point() {
        // Four /24 siblings with equal data collapse to one /22.
        let entries = vec![
            p(0x0A00_0000, 24, 5),
            p(0x0A00_0100, 24, 5),
            p(0x0A00_0200, 24, 5),
            p(0x0A00_0300, 24, 5),
        ];
        let agg = aggregate(&entries);
        assert_eq!(agg.entries.len(), 1);
        assert_eq!(agg.entries[0].key.care_count(), 22);
        assert_eq!(agg.removed, 3);
    }

    #[test]
    fn existing_parent_absorbs_children() {
        let entries = vec![
            p(0x0A00_0000, 23, 5),
            p(0x0A00_0000, 24, 5),
            p(0x0A00_0100, 24, 5),
        ];
        let agg = aggregate(&entries);
        assert_eq!(agg.entries.len(), 1);
        assert_eq!(agg.entries[0].key.care_count(), 23);
    }

    #[test]
    fn parent_with_different_data_blocks_merge() {
        let entries = vec![
            p(0x0A00_0000, 23, 9),
            p(0x0A00_0000, 24, 5),
            p(0x0A00_0100, 24, 5),
        ];
        let agg = aggregate(&entries);
        // Merging the /24s into a /23 would collide with the existing /23
        // carrying different data; entries must survive.
        assert_eq!(agg.removed, 0);
    }

    #[test]
    fn aggregation_preserves_the_forwarding_function() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(12);
        // Dense random table over a narrow space to force many merges.
        let mut entries = Vec::new();
        for _ in 0..300 {
            let len = rng.gen_range(20..=26u32);
            let addr = (rng.gen::<u32>() & 0x0000_FFFF) | 0x0A00_0000;
            entries.push(p(addr, len, u64::from(rng.gen_range(0..3u8))));
        }
        // Dedup identical keys (keep first).
        let mut seen = std::collections::HashSet::new();
        entries.retain(|e| seen.insert(e.key));
        let agg = aggregate(&entries);
        for _ in 0..5_000 {
            let addr = (rng.gen::<u32>() & 0x0000_FFFF) | 0x0A00_0000;
            assert_eq!(
                lpm(&entries, addr),
                lpm(&agg.entries, addr),
                "addr {addr:#010x}"
            );
        }
        assert!(agg.removed > 0, "the dense table must produce some merges");
    }
}
