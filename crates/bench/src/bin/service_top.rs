//! `top` for the serving layer: drives a demo [`SearchService`] under
//! paced open-loop load and renders a live terminal view of the
//! observability-v2 surface — per-shard queue depth, degradation-ladder
//! rung, SLO burn rate, and the per-stage latency breakdown recovered
//! from sampled request traces.
//!
//! With `--dump PATH` it instead renders an existing `ca-ram-flight/v1`
//! dump (as written by `SearchService::flight_json` and serve_bench's
//! forced shed storm): the conservation counters, flight-ring event mix,
//! and retained-trace summary.
//!
//! Usage: `service_top [--shards N] [--records N] [--rps N] [--frames N]
//! [--interval-ms N] [--trace-period N] [--seed N]` or
//! `service_top --dump PATH`.

use std::collections::BTreeMap;
use std::time::Duration;

use ca_ram_bench::{ensure, exact_match_workload, rule, BenchError, Cli, Result};
use ca_ram_core::engine::SearchEngine;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_core::telemetry::SpanStage;
use ca_ram_service::{SearchService, ServiceClient, ServiceConfig};

/// Record slots per table row in the demo fleet.
const SLOTS_PER_ROW: u32 = 8;

fn shard_table(per_shard_records: usize) -> Result<CaRamTable> {
    let layout = RecordLayout::new(64, false, 64);
    let buckets = (per_shard_records * 3)
        .div_ceil(SLOTS_PER_ROW as usize)
        .max(16);
    let rows_log2 = buckets.next_power_of_two().trailing_zeros();
    let config = TableConfig {
        rows_log2,
        row_bits: SLOTS_PER_ROW * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(1),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe {
            max_steps: u32::MAX,
        },
    };
    Ok(CaRamTable::new(
        config,
        Box::new(RangeSelect::new(0, rows_log2)),
    )?)
}

/// Extracts the raw text of the first `"key": value` pair after `from`,
/// trimmed of quotes — enough structure to render our own flight dumps
/// without a JSON dependency.
fn field<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let pat = format!("\"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Renders an existing `ca-ram-flight/v1` dump: header, conservation,
/// event mix, and the retained-trace summary.
fn render_dump(path: &str) -> Result<()> {
    let text = std::fs::read_to_string(path).map_err(|source| BenchError::Io {
        path: path.to_string(),
        source,
    })?;
    ensure(
        text.contains("\"schema\": \"ca-ram-flight/v1\""),
        "not a ca-ram-flight/v1 dump",
    )?;
    println!(
        "flight dump {path}: reason \"{}\", trace period {}",
        field(&text, "reason").unwrap_or("?"),
        field(&text, "trace_period").unwrap_or("?"),
    );
    if text.contains("\"slo\": null") {
        println!("slo: (no window ticked)");
    } else {
        println!(
            "slo: p50 {}us  p99 {}us  burn {}  breached {}",
            field(&text, "p50_us").unwrap_or("?"),
            field(&text, "p99_us").unwrap_or("?"),
            field(&text, "burn_rate").unwrap_or("?"),
            field(&text, "breached").unwrap_or("?"),
        );
    }
    let get = |key: &str| -> u64 {
        field(&text, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    };
    let (admitted, rejected) = (get("admitted"), get("rejected"));
    let (completed, shed) = (
        get("completed"),
        get("shed_deadline") + get("shed_shutdown"),
    );
    let balanced = completed + shed + rejected == admitted;
    println!(
        "conservation: admitted {admitted} = completed {completed} + shed {shed} \
         + rejected {rejected}  [{}]",
        if balanced { "ok" } else { "VIOLATED" }
    );
    ensure(balanced, "dump violates request conservation")?;
    print!("events:");
    for kind in [
        "trace_done",
        "ladder",
        "reject",
        "shed_deadline",
        "shed_shutdown",
        "slo_breach",
        "orphan_risk",
    ] {
        let count = text.matches(&format!("\"kind\": \"{kind}\"")).count();
        if count > 0 {
            print!("  {kind}={count}");
        }
    }
    println!();
    let traces = text.matches("\"terminal\": ").count();
    let shed_traces = text.matches("\"terminal\": \"shed\"").count();
    let completed_traces = text.matches("\"terminal\": \"completed\"").count();
    println!(
        "traces: {traces} retained ({completed_traces} completed, {shed_traces} shed, \
         {} other)",
        traces - shed_traces - completed_traces
    );
    for shard in text.split("\"shard\": ").skip(1) {
        // A shard block's next field is its rung; a trace's own shard
        // field is followed by its terminal instead — skip those.
        if !shard[..shard.len().min(48)].contains("\"rung\"") {
            continue;
        }
        let Some(index) = shard.split(',').next() else {
            continue;
        };
        let Some(rung) = field(shard, "rung") else {
            continue;
        };
        println!(
            "shard {index}: rung {rung}, depth {}, {} ladder transitions, \
             ring {} recorded / {} overwritten",
            field(shard, "depth").unwrap_or("?"),
            field(shard, "transitions").unwrap_or("?"),
            field(shard, "recorded").unwrap_or("?"),
            field(shard, "overwritten").unwrap_or("?"),
        );
    }
    Ok(())
}

/// Sums each completed trace's per-stage gaps, keyed by stage name in
/// pipeline order, so a frame can show where the latency went.
fn stage_breakdown(service: &SearchService) -> Vec<(&'static str, f64)> {
    let mut sums: BTreeMap<u8, (SpanStage, u64)> = BTreeMap::new();
    let mut completions = 0u64;
    for trace in service.retained_traces() {
        if trace.terminal() != Some(SpanStage::Completed) {
            continue;
        }
        completions += 1;
        for (stage, gap_ns) in trace.stage_gaps() {
            let entry = sums.entry(stage.rank()).or_insert((stage, 0));
            entry.1 += gap_ns;
        }
    }
    if completions == 0 {
        return Vec::new();
    }
    #[allow(clippy::cast_precision_loss)]
    sums.values()
        .map(|&(stage, total_ns)| (stage.name(), total_ns as f64 / completions as f64 / 1000.0))
        .collect()
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() -> Result<()> {
    let cli = Cli::from_env();
    if let Some(path) = cli.value("dump") {
        return render_dump(path);
    }

    let shards = cli.parse("shards", 2usize)?;
    let records = cli.parse("records", 4_000usize)?;
    let rps = cli.parse("rps", 50_000f64)?;
    let frames = cli.parse("frames", 5usize)?;
    let interval_ms = cli.parse("interval-ms", 200u64)?;
    let trace_period = cli.parse("trace-period", 8u64)?;
    let seed = cli.parse("seed", 0x709u64)?;
    ensure(shards > 0, "--shards must be > 0")?;
    ensure(records > 0, "--records must be > 0")?;
    ensure(rps > 0.0, "--rps must be > 0")?;
    ensure(frames > 0, "--frames must be > 0")?;

    let config = ServiceConfig {
        shards,
        trace_sample_period: trace_period,
        ..ServiceConfig::default()
    };
    let engines = (0..shards)
        .map(|_| {
            shard_table(records.div_ceil(shards)).map(|t| Box::new(t) as Box<dyn SearchEngine>)
        })
        .collect::<Result<Vec<_>>>()?;
    let service = SearchService::new(config, engines)?;
    let workload = exact_match_workload(records, records * 2, seed);
    for &(key, value) in &workload.pairs {
        service.insert_sync(Record::new(TernaryKey::binary(u128::from(key), 64), value))?;
    }

    // Size the trace so the paced driver outlasts every frame.
    let wall_secs = (frames as u64 * interval_ms) as f64 / 1000.0;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let wanted = ((rps * wall_secs * 1.5) as usize).max(1_000);
    let mut keys: Vec<SearchKey> = Vec::with_capacity(wanted);
    while keys.len() < wanted {
        keys.extend(
            workload
                .trace
                .iter()
                .map(|&i| SearchKey::new(u128::from(workload.keys[i]), 64)),
        );
    }
    keys.truncate(wanted);

    println!(
        "service_top: {records} records, {shards} shards, {rps:.0} req/s paced, \
         trace 1/{trace_period}, {frames} frames every {interval_ms}ms"
    );
    let policy = service.slo_policy();
    println!(
        "slo policy: target p99 {}us, error budget {:.2}%",
        policy.target_us,
        policy.error_budget * 100.0
    );

    std::thread::scope(|scope| -> Result<()> {
        let client = ServiceClient::new(&service);
        let driver = scope.spawn(move || client.open_loop(&keys, rps));
        for frame in 1..=frames {
            std::thread::sleep(Duration::from_millis(interval_ms));
            let slo = service.slo_tick();
            let depths = service.queue_depths();
            let rungs = service.ladder_rungs();
            let transitions = service.take_ladder_transitions();
            let snapshot = service.snapshot();
            rule(72);
            println!(
                "frame {frame}/{frames}  t={:.1}s",
                (frame as u64 * interval_ms) as f64 / 1000.0
            );
            println!("shard   depth  rung      accepted  rejected      shed  coalesced");
            for (index, shard) in snapshot.shards.iter().enumerate() {
                println!(
                    "{index:>5}  {:>6}  {:<8} {:>9}  {:>8}  {:>8}  {:>9}",
                    depths.get(index).copied().unwrap_or(0),
                    rungs.get(index).map_or("?", |r| r.name()),
                    shard.accepted,
                    shard.rejected,
                    shard.shed_deadline + shard.shed_shutdown,
                    shard.coalesced,
                );
            }
            println!(
                "slo: window n={}  p50 {}us  p99 {}us  burn {:.3}  {}  \
                 ({} ladder transitions this frame)",
                slo.window_count,
                slo.p50_us,
                slo.p99_us,
                slo.burn_rate,
                if slo.breached { "BREACHED" } else { "ok" },
                transitions.len(),
            );
            let breakdown = stage_breakdown(&service);
            if !breakdown.is_empty() {
                print!("stages (us, mean over sampled completions):");
                for (name, us) in &breakdown {
                    print!("  {name} {us:.1}");
                }
                println!();
            }
        }
        let report = driver.join().map_err(|_| {
            BenchError::Arg("the load driver panicked under service_top".to_string())
        })?;
        rule(72);
        let (ticks, breaches) = service.slo_windows();
        println!(
            "driver: offered {} at {:.0} req/s, completed {}, rejected {}, shed {}; \
             {breaches} of {ticks} slo windows breached",
            report.offered, report.offered_rps, report.completed, report.rejected, report.shed,
        );
        Ok(())
    })?;
    service.shutdown();
    Ok(())
}
