//! End-to-end telemetry integration: sink events emitted by the table,
//! subsystem, and controller must agree with the untraced search results,
//! and the registry export must round-trip through its own validator.

use std::sync::Arc;

use ca_ram_core::controller::{simulate_with_sink, QueueModelConfig};
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::table::{CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_core::telemetry::{
    parse_json, to_json, to_prometheus, validate_json, HistogramSink, JsonValue, MetricsRegistry,
    Stage, TraceBuffer, TraceEvent,
};
use ca_ram_core::CaRamSubsystem;

/// A small probing table with 40 records over 4 buckets of 4 slots.
fn table() -> CaRamTable {
    let layout = RecordLayout::new(16, false, 16);
    let mut config = TableConfig::single_slice(4, 4 * layout.slot_bits(), layout);
    config.overflow = OverflowPolicy::Probe { max_steps: 16 };
    let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(0, 4))).unwrap();
    for i in 0..40u64 {
        let key = TernaryKey::binary(u128::from(i) | 0x100, 16);
        t.insert(Record::new(key, i * 10)).unwrap();
    }
    t
}

fn probe_keys() -> Vec<SearchKey> {
    // Present keys, plus misses below and above the stored range.
    (0..48u64)
        .map(|i| SearchKey::new(u128::from(i) | 0x100, 16))
        .chain((0..8u64).map(|i| SearchKey::new(u128::from(i), 16)))
        .collect()
}

#[test]
fn traced_outcomes_match_untraced_for_both_sink_depths() {
    let plain = table();
    let expected: Vec<_> = probe_keys().iter().map(|k| plain.search(k)).collect();

    for deep in [false, true] {
        let mut traced = table();
        let sink = Arc::new(if deep {
            HistogramSink::deep()
        } else {
            HistogramSink::new()
        });
        traced.set_telemetry_sink(Arc::clone(&sink) as _);
        let got: Vec<_> = probe_keys().iter().map(|k| traced.search(k)).collect();
        assert_eq!(got, expected, "deep={deep}");

        let snap = sink.snapshot();
        assert_eq!(snap.stats.searches, expected.len() as u64, "deep={deep}");
        let hits = expected.iter().filter(|o| o.hit.is_some()).count() as u64;
        assert_eq!(snap.stats.hits, hits, "deep={deep}");
        assert_eq!(snap.probe_length.count(), expected.len() as u64);
        assert_eq!(snap.row_fetches.count(), expected.len() as u64);
        // Every search fetches at least one row.
        assert!(snap.stats.memory_accesses >= expected.len() as u64);
        if deep {
            // Deep mode fires hash + row-fetch stages for every search and
            // match popcounts for every fetched row.
            assert_eq!(
                snap.stage_counts[Stage::Hash.index()],
                expected.len() as u64
            );
            assert_eq!(
                snap.stage_counts[Stage::RowFetch.index()],
                snap.stats.memory_accesses
            );
            assert!(!snap.match_popcount.is_empty());
            assert_eq!(snap.stage_counts[Stage::Extract.index()], hits);
        } else {
            assert_eq!(snap.stage_counts, [0; 5]);
            assert!(snap.match_popcount.is_empty());
        }

        // Clearing the sink restores the untraced path.
        traced.clear_telemetry_sink();
        let after: Vec<_> = probe_keys().iter().map(|k| traced.search(k)).collect();
        assert_eq!(after, expected);
        assert_eq!(sink.snapshot().stats.searches, expected.len() as u64);
    }
}

#[test]
fn insert_emits_occupancy_events() {
    let layout = RecordLayout::new(16, false, 16);
    let mut config = TableConfig::single_slice(4, 4 * layout.slot_bits(), layout);
    config.overflow = OverflowPolicy::Probe { max_steps: 16 };
    let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(0, 4))).unwrap();
    let buffer = Arc::new(TraceBuffer::new(1024));
    t.set_telemetry_sink(Arc::clone(&buffer) as _);

    // All twelve keys share the low index bits, so they pile into the
    // same home bucket and spill to probed neighbours.
    for i in 0..12u64 {
        let key = TernaryKey::binary(u128::from(i) << 4 | 0x3, 16);
        t.insert(Record::new(key, i)).unwrap();
    }
    let occupancies: Vec<u32> = buffer
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::InsertOccupancy(o) => Some(o),
            _ => None,
        })
        .collect();
    assert_eq!(occupancies.len(), 12);
    // Occupancy observed at insert counts the record just placed.
    assert!(occupancies.iter().all(|&o| o >= 1));
    assert!(occupancies.iter().any(|&o| o > 1));
}

#[test]
fn subsystem_pump_reports_queue_depth() {
    let mut sub = CaRamSubsystem::new();
    let id = sub.add_database("t", table());
    let sink = HistogramSink::shared();
    sub.set_telemetry_sink(id, Arc::clone(&sink) as _);

    let port = sub.request_port(id);
    for key in probe_keys().into_iter().take(6) {
        sub.store_request(port, key).unwrap();
    }
    sub.pump();

    let snap = sink.snapshot();
    assert_eq!(snap.stats.searches, 6);
    // The controller samples the backlog once per pump per database; the
    // single sample is the full six-request backlog (histogram sums are
    // exact even though bucket bounds are powers of two).
    assert_eq!(snap.queue_depth.count(), 1);
    assert_eq!(snap.queue_depth.sum(), 6);
}

#[test]
fn controller_simulation_feeds_queue_histograms() {
    let sink = HistogramSink::shared();
    let requests = (0..512u32).map(|i| i % 8);
    let report = simulate_with_sink(QueueModelConfig::fig8_ip_lookup(), requests, sink.as_ref())
        .expect("valid config");
    assert_eq!(report.completed, 512);

    let snap = sink.snapshot();
    assert!(snap.queue_depth.count() > 0);
    assert_eq!(snap.queue_wait.count(), 512);
}

#[test]
fn registry_export_round_trips_through_validator() {
    let mut traced = table();
    let sink = Arc::new(HistogramSink::deep());
    traced.set_telemetry_sink(Arc::clone(&sink) as _);
    for key in probe_keys() {
        let _ = traced.search(&key);
    }

    let mut registry = MetricsRegistry::new();
    registry.record_snapshot("test-table", &sink.snapshot());

    let json = to_json(&registry);
    let scopes = validate_json(&json).expect("export must satisfy its own schema");
    assert_eq!(scopes, 1);

    let parsed = parse_json(&json).expect("export must parse");
    let schema = parsed.get("schema").and_then(JsonValue::as_str);
    assert_eq!(schema, Some(ca_ram_core::telemetry::SCHEMA));

    let prom = to_prometheus(&registry);
    assert!(prom.contains("caram_probe_length_bucket"));
    assert!(prom.contains("le=\"+Inf\""));
    assert!(prom.contains("caram_searches"));
}
