//! The shared experiment driver: workload feeds, warmup/timing of
//! [`SearchEngine`] batch paths, stats snapshots, and JSON emission.
//!
//! Every reproduction binary used to carry its own copy of these loops;
//! they now differ only in what they print. The driver works in terms of
//! the unified [`SearchEngine`] interface, so the same timing and
//! equivalence checks apply to a `CaRamTable`, a CAM device, or a software
//! baseline.

use std::time::Instant;

use ca_ram_core::engine::SearchEngine;
use ca_ram_core::key::SearchKey;
use ca_ram_core::stats::SearchStats;
use ca_ram_workloads::bgp::BgpConfig;
use ca_ram_workloads::prefix::Ipv4Prefix;
use ca_ram_workloads::trigram::TrigramConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cli::{write_text_atomic, Result};

/// The paper's AS1103 prefix count; asking for exactly this many prefixes
/// selects the calibrated snapshot configuration.
pub const AS1103_PREFIXES: usize = 186_760;

/// The BGP workload for `prefixes` entries: the calibrated AS1103-like
/// snapshot at full scale, a scaled synthetic table otherwise. `seed`
/// overrides the generator seed when given.
#[must_use]
pub fn bgp_config(prefixes: usize, seed: Option<u64>) -> BgpConfig {
    let mut config = if prefixes == AS1103_PREFIXES {
        BgpConfig::as1103_like()
    } else {
        BgpConfig::scaled(prefixes)
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }
    config
}

/// The trigram workload for `entries` entries, optionally reseeded.
#[must_use]
pub fn trigram_config(entries: usize, seed: Option<u64>) -> TrigramConfig {
    let mut config = TrigramConfig::scaled(entries);
    if let Some(seed) = seed {
        config.seed = seed;
    }
    config
}

/// An address trace of `lookups` member addresses of the given prefixes
/// (round-robin over prefixes, random member of each), so every lookup
/// hits — the paper measures successful-search cost.
#[must_use]
pub fn member_trace(prefixes: &[Ipv4Prefix], lookups: usize, seed: u64) -> Vec<SearchKey> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..lookups)
        .map(|i| {
            let p = &prefixes[i % prefixes.len()];
            SearchKey::new(u128::from(p.random_member(&mut rng)), 32)
        })
        .collect()
}

/// An exact-match dictionary workload: deduplicated random keys with
/// derived values, build order shuffled (a BST built from sorted keys
/// degenerates into a linked list), and a uniform lookup trace.
#[derive(Debug, Clone)]
pub struct ExactMatchWorkload {
    /// `(key, value)` pairs in build order.
    pub pairs: Vec<(u64, u64)>,
    /// The sorted, deduplicated key set.
    pub keys: Vec<u64>,
    /// Uniform lookup trace, as indices into `keys`.
    pub trace: Vec<usize>,
}

/// Generates an [`ExactMatchWorkload`] of up to `records` keys and
/// `lookups` trace entries from `seed`.
#[must_use]
pub fn exact_match_workload(records: usize, lookups: usize, seed: u64) -> ExactMatchWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..records).map(|_| rng.gen()).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 0xFF)).collect();
    pairs.shuffle(&mut rng);
    let trace: Vec<usize> = (0..lookups).map(|_| rng.gen_range(0..keys.len())).collect();
    ExactMatchWorkload { pairs, keys, trace }
}

/// Runs `f` and returns its result with the elapsed wall-clock seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Keys per second for `n` lookups in `secs` (infinite below timer
/// resolution).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn keys_per_sec(n: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        n as f64 / secs
    } else {
        f64::INFINITY
    }
}

/// Timed measurements of one engine's serial and parallel batch paths
/// over a fixed key trace.
#[derive(Debug, Clone, Copy)]
pub struct BatchTiming {
    /// Seconds for the serial `search_batch` pass.
    pub serial_secs: f64,
    /// Seconds for the `search_batch_parallel` pass.
    pub parallel_secs: f64,
    /// Search statistics of the trace (shard-exact; identical for both
    /// paths by the engine's bit-equivalence contract).
    pub stats: SearchStats,
}

/// Warms up an engine on `keys`, asserts the serial and parallel batch
/// paths agree bit-for-bit, then times each path once.
///
/// # Panics
///
/// Panics if the engine's serial and parallel outcomes disagree — a
/// conformance violation, not a recoverable condition.
#[must_use]
pub fn time_engine_batch(
    engine: &dyn SearchEngine,
    keys: &[SearchKey],
    threads: usize,
) -> BatchTiming {
    let warm_serial = engine.search_batch(keys);
    let (warm_parallel, stats) = engine.search_batch_parallel_stats(keys, threads);
    assert_eq!(
        warm_serial,
        warm_parallel,
        "engine {}: serial and parallel batch paths disagree",
        engine.name()
    );
    let (_, serial_secs) = time(|| engine.search_batch(keys));
    let (_, parallel_secs) = time(|| engine.search_batch_parallel(keys, threads));
    BatchTiming {
        serial_secs,
        parallel_secs,
        stats,
    }
}

/// Throughput of one design point under the three search paths.
#[derive(Debug, Clone)]
pub struct DesignThroughput {
    /// Design letter.
    pub name: &'static str,
    /// Keys/s of the pre-optimization reference loop.
    pub baseline_kps: f64,
    /// Keys/s of the serial batch with a scalar-kernel twin of the table.
    pub scalar_kps: f64,
    /// Keys/s of the allocation-free serial batch.
    pub serial_kps: f64,
    /// Keys/s of the sharded parallel batch.
    pub parallel_kps: f64,
    /// Serial-batch speedup of the active compare kernel over the
    /// scalar-kernel twin: the median per-round ratio of the interleaved
    /// paired timing (robust to load spikes; 1.0 by construction when
    /// scalar is active).
    pub simd_speedup: f64,
    /// Mean memory accesses per search (measured AMAL).
    pub mean_accesses: f64,
}

impl DesignThroughput {
    /// Serial speedup over the baseline loop.
    #[must_use]
    pub fn serial_speedup(&self) -> f64 {
        self.serial_kps / self.baseline_kps
    }

    /// Parallel speedup over the baseline loop.
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        self.parallel_kps / self.baseline_kps
    }
}

/// Throughput of one pattern-compiled workload: a table built by
/// [`ca_ram_core::pattern::compile`], loaded through lowered entries and
/// queried through lowered probe ladders.
#[derive(Debug, Clone)]
pub struct PatternThroughput {
    /// Workload name (e.g. `packet-class`, `dictionary-d2`).
    pub scenario: &'static str,
    /// Logical rules/words loaded (before ternary expansion).
    pub entries: usize,
    /// Queries in the trace.
    pub lookups: usize,
    /// Queries per second through the compiled query plans.
    pub keys_per_sec: f64,
    /// Mean engine probes issued per query (ladder length actually
    /// walked; 1.0 = every query resolved on its first probe).
    pub probes_per_query: f64,
    /// Fraction of queries that found a match.
    pub hit_rate: f64,
}

/// The `BENCH_search.json` report: simulator throughput per design.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Prefix count of the workload.
    pub prefixes: usize,
    /// Lookup count of the trace.
    pub lookups: usize,
    /// Requested parallel thread count (0 = auto).
    pub threads: usize,
    /// Name of the active compare kernel the tables captured
    /// (`scalar`, `128`, or `256`).
    pub kernel: String,
    /// Measured slowdown of the serial batch path with a shallow
    /// telemetry sink installed, in percent (negative = noise).
    pub telemetry_overhead_pct: f64,
    /// Per-design measurements.
    pub designs: Vec<DesignThroughput>,
    /// Pattern-compiled workload measurements.
    pub patterns: Vec<PatternThroughput>,
}

impl SearchReport {
    /// The smallest serial speedup across designs — the regression gate.
    #[must_use]
    pub fn min_serial_speedup(&self) -> f64 {
        self.designs
            .iter()
            .map(DesignThroughput::serial_speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest scalar-vs-active-kernel speedup across designs — the
    /// SIMD regression gate (only meaningful when `kernel != "scalar"`).
    #[must_use]
    pub fn min_simd_speedup(&self) -> f64 {
        self.designs
            .iter()
            .map(|d| d.simd_speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the report as JSON (hand-rolled: the workspace carries no
    /// serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut json = String::from("{\n");
        json.push_str("  \"benchmark\": \"search\",\n");
        let _ = write!(
            json,
            "  \"prefixes\": {},\n  \"lookups\": {},\n  \"threads\": {},\n  \
             \"kernel\": \"{}\",\n  \"min_serial_speedup\": {:.4},\n  \
             \"min_simd_speedup\": {:.4},\n  \"telemetry_overhead_pct\": {:.4},\n",
            self.prefixes,
            self.lookups,
            self.threads,
            self.kernel,
            self.min_serial_speedup(),
            self.min_simd_speedup(),
            self.telemetry_overhead_pct
        );
        json.push_str("  \"designs\": [\n");
        for (i, r) in self.designs.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"baseline_keys_per_sec\": {:.1}, \
                 \"scalar_keys_per_sec\": {:.1}, \"serial_keys_per_sec\": {:.1}, \
                 \"parallel_keys_per_sec\": {:.1}, \"serial_speedup\": {:.4}, \
                 \"parallel_speedup\": {:.4}, \"simd_speedup\": {:.4}, \
                 \"mean_memory_accesses\": {:.4}}}{}",
                r.name,
                r.baseline_kps,
                r.scalar_kps,
                r.serial_kps,
                r.parallel_kps,
                r.serial_speedup(),
                r.parallel_speedup(),
                r.simd_speedup,
                r.mean_accesses,
                if i + 1 == self.designs.len() { "" } else { "," },
            );
        }
        json.push_str("  ],\n");
        json.push_str("  \"patterns\": [\n");
        for (i, r) in self.patterns.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"scenario\": \"{}\", \"entries\": {}, \"lookups\": {}, \
                 \"keys_per_sec\": {:.1}, \"probes_per_query\": {:.4}, \
                 \"hit_rate\": {:.4}}}{}",
                r.scenario,
                r.entries,
                r.lookups,
                r.keys_per_sec,
                r.probes_per_query,
                r.hit_rate,
                if i + 1 == self.patterns.len() {
                    ""
                } else {
                    ","
                },
            );
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BenchError::Io`] when the write fails.
    pub fn write(&self, path: &str) -> Result<()> {
        write_text_atomic(path, &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_feeds_are_deterministic() {
        let a = exact_match_workload(1_000, 100, 0xBEEF);
        let b = exact_match_workload(1_000, 100, 0xBEEF);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.trace, b.trace);
        assert!(a.keys.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");

        let prefixes = ca_ram_workloads::bgp::generate(&bgp_config(500, Some(7)));
        let t1 = member_trace(&prefixes, 64, 42);
        let t2 = member_trace(&prefixes, 64, 42);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 64);
    }

    #[test]
    fn bgp_config_selects_snapshot_at_full_scale() {
        assert_eq!(
            bgp_config(AS1103_PREFIXES, None).prefixes,
            BgpConfig::as1103_like().prefixes
        );
        assert_eq!(bgp_config(1_234, None).prefixes, 1_234);
        assert_eq!(bgp_config(1_234, Some(9)).seed, 9);
    }

    #[test]
    fn search_report_json_shape() {
        let report = SearchReport {
            prefixes: 10,
            lookups: 20,
            threads: 0,
            kernel: "256".to_string(),
            telemetry_overhead_pct: 1.25,
            designs: vec![DesignThroughput {
                name: "A",
                baseline_kps: 100.0,
                scalar_kps: 200.0,
                serial_kps: 250.0,
                parallel_kps: 500.0,
                simd_speedup: 1.25,
                mean_accesses: 1.25,
            }],
            patterns: vec![PatternThroughput {
                scenario: "packet-class",
                entries: 500,
                lookups: 1_000,
                keys_per_sec: 1_234.5,
                probes_per_query: 2.5,
                hit_rate: 0.875,
            }],
        };
        assert!((report.min_serial_speedup() - 2.5).abs() < 1e-12);
        assert!((report.min_simd_speedup() - 1.25).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"benchmark\": \"search\",\n"));
        assert!(json.contains("\"kernel\": \"256\""));
        assert!(json.contains("\"min_serial_speedup\": 2.5000"));
        assert!(json.contains("\"min_simd_speedup\": 1.2500"));
        assert!(json.contains("\"scalar_keys_per_sec\": 200.0"));
        assert!(json.contains("\"simd_speedup\": 1.2500"));
        assert!(json.contains("\"telemetry_overhead_pct\": 1.2500"));
        assert!(json.contains("\"mean_memory_accesses\": 1.2500"));
        assert!(json.contains("\"scenario\": \"packet-class\""));
        assert!(json.contains("\"probes_per_query\": 2.5000"));
        assert!(json.contains("\"hit_rate\": 0.8750"));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn engine_timing_checks_equivalence() {
        use ca_ram_bench_engine_fixture::small_table;
        let (table, keys) = small_table();
        let timing = time_engine_batch(&table, &keys, 3);
        assert_eq!(timing.stats.searches, keys.len() as u64);
    }
}

#[cfg(test)]
mod ca_ram_bench_engine_fixture {
    use ca_ram_core::index::RangeSelect;
    use ca_ram_core::key::{SearchKey, TernaryKey};
    use ca_ram_core::layout::{Record, RecordLayout};
    use ca_ram_core::probe::ProbePolicy;
    use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};

    pub fn small_table() -> (CaRamTable, Vec<SearchKey>) {
        let layout = RecordLayout::new(32, false, 32);
        let config = TableConfig {
            rows_log2: 4,
            row_bits: 8 * layout.slot_bits(),
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 16 },
        };
        let mut table =
            CaRamTable::new(config, Box::new(RangeSelect::new(0, 4))).expect("valid config");
        let mut keys = Vec::new();
        for i in 0..64u64 {
            let key = TernaryKey::binary(u128::from(i) * 97, 32);
            table
                .insert(Record::new(key, i))
                .expect("table sized for the fixture");
            keys.push(SearchKey::new(u128::from(i) * 97, 32));
        }
        (table, keys)
    }
}
