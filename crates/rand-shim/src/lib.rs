//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no reliable registry access, so the workspace
//! aliases the `rand` dependency name to this crate (see the root
//! `Cargo.toml`). Only the surface actually exercised by the simulator,
//! workloads, tests and benches is provided:
//!
//! - [`rngs::SmallRng`] — a xoshiro256++ generator seeded via SplitMix64
//!   (`SeedableRng::seed_from_u64`), deterministic across platforms;
//! - [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//!   ranges, half-open float ranges), [`Rng::gen_bool`];
//! - [`seq::SliceRandom`] (`shuffle`, `choose`);
//! - [`distributions::WeightedIndex`] over non-negative `f64`-convertible
//!   weights, via [`distributions::Distribution`].
//!
//! The streams differ from upstream `rand` (no attempt is made to match its
//! exact output), but every consumer in this workspace seeds explicitly and
//! only requires determinism, not a particular stream.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The core source of randomness: a 64-bit word generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers and `bool`, uniform in
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method on a
/// 128-bit widening multiply; the rejection loop terminates almost surely).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Uniform draw from `[0, span)` for 128-bit spans. A span of 0 means the
/// full `[0, 2^128)` range.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    if span == 0 {
        return u128::sample_standard(rng);
    }
    if let Ok(narrow) = u64::try_from(span) {
        return u128::from(uniform_u64_below(rng, narrow));
    }
    // Rejection sampling over the smallest covering power of two.
    let mask = u128::MAX >> span.leading_zeros();
    loop {
        let draw = u128::sample_standard(rng) & mask;
        if draw < span {
            return draw;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end as u128 - self.start as u128;
                self.start + uniform_u128_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128 - start as u128).wrapping_add(1);
                start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for core::ops::Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_u128_below(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for core::ops::RangeInclusive<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start.wrapping_add(uniform_u128_below(rng, (end - start).wrapping_add(1)))
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_u128_below(rng, span as u128) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u128).wrapping_add(1);
                start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(4..=28u8);
            assert!((4..=28).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
