//! Device geometries shared by the area, power, and timing models.
//!
//! A [`CaRamGeometry`] describes a CA-RAM built from one or more identical
//! slices (Sec. 3.2); a [`CamGeometry`] describes a monolithic CAM/TCAM array
//! of `entries` rows × `symbols_per_entry` cells. The cost models consume
//! these descriptions so that the same geometry can be priced for area,
//! power, and timing consistently.

use crate::cells::CellKind;

/// Geometry of a CA-RAM device (Sec. 3.1–3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaRamGeometry {
    /// Number of independently accessible slices (`Nslice` in Sec. 3.4).
    pub slices: u32,
    /// Rows (buckets) per slice; `2^R` in the paper's notation.
    pub rows_per_slice: u64,
    /// Bits per row (`C` in the paper's notation).
    pub row_bits: u32,
    /// Storage cell the memory array is built from (must be a RAM cell).
    pub storage: CellKind,
    /// Number of match processors per slice (`P`).
    pub match_processors: u32,
}

impl CaRamGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or if `storage` embeds match logic
    /// (a CA-RAM array must use a plain RAM cell; Sec. 3.1).
    #[must_use]
    pub fn new(
        slices: u32,
        rows_per_slice: u64,
        row_bits: u32,
        storage: CellKind,
        match_processors: u32,
    ) -> Self {
        assert!(slices > 0, "a CA-RAM needs at least one slice");
        assert!(rows_per_slice > 0, "a slice needs at least one row");
        assert!(row_bits > 0, "a row needs at least one bit");
        assert!(
            match_processors > 0,
            "a slice needs at least one match processor"
        );
        assert!(
            !storage.has_embedded_match_logic(),
            "CA-RAM decouples storage from match logic; use a RAM cell, not {storage}"
        );
        Self {
            slices,
            rows_per_slice,
            row_bits,
            storage,
            match_processors,
        }
    }

    /// Total storage bits across all slices.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        u64::from(self.slices) * self.rows_per_slice * u64::from(self.row_bits)
    }

    /// Total rows across all slices.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        u64::from(self.slices) * self.rows_per_slice
    }
}

/// Geometry of a conventional CAM or TCAM array (Sec. 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CamGeometry {
    /// Number of stored entries (`w` in the Sec. 3.4 power equations).
    pub entries: u64,
    /// Cells per entry: ternary symbols for a TCAM, bits for a binary CAM
    /// (`n` in the Sec. 3.4 power equations).
    pub symbols_per_entry: u32,
    /// CAM cell circuit the array is built from.
    pub cell: CellKind,
}

impl CamGeometry {
    /// Creates a CAM geometry.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `cell` does not embed match logic.
    #[must_use]
    pub fn new(entries: u64, symbols_per_entry: u32, cell: CellKind) -> Self {
        assert!(entries > 0, "a CAM needs at least one entry");
        assert!(symbols_per_entry > 0, "an entry needs at least one symbol");
        assert!(
            cell.has_embedded_match_logic(),
            "a CAM array must use a CAM/TCAM cell, not {cell}"
        );
        Self {
            entries,
            symbols_per_entry,
            cell,
        }
    }

    /// Total cells in the array.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.entries * u64::from(self.symbols_per_entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caram_totals() {
        let g = CaRamGeometry::new(6, 2048, 2048, CellKind::EmbeddedDram, 32);
        assert_eq!(g.total_bits(), 6 * 2048 * 2048);
        assert_eq!(g.total_rows(), 6 * 2048);
    }

    #[test]
    fn cam_totals() {
        let g = CamGeometry::new(186_760, 32, CellKind::TcamDynamic6T);
        assert_eq!(g.total_cells(), 186_760 * 32);
    }

    #[test]
    #[should_panic(expected = "use a RAM cell")]
    fn caram_rejects_cam_cells() {
        let _ = CaRamGeometry::new(1, 1, 1, CellKind::TcamDynamic6T, 1);
    }

    #[test]
    #[should_panic(expected = "must use a CAM/TCAM cell")]
    fn cam_rejects_ram_cells() {
        let _ = CamGeometry::new(1, 1, CellKind::EmbeddedDram);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_slices_rejected() {
        let _ = CaRamGeometry::new(0, 1, 1, CellKind::EmbeddedDram, 1);
    }
}
