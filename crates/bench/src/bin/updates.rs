//! Route-update study: online LPM table maintenance on CA-RAM vs TCAM.
//!
//! The paper cites fast TCAM update algorithms (Shah & Gupta \[29\]) because
//! keeping a TCAM prefix-length-sorted costs entry *moves* on every route
//! change. CA-RAM's analogue is `insert_sorted`: priority order is
//! maintained per bucket chain, so an update touches a handful of rows
//! instead of shifting a global array. This harness replays a BGP-like
//! churn stream (announce/withdraw mix) against both engines and reports
//! the update costs side by side, then verifies the two tables still
//! compute the same forwarding function.
//!
//! Usage: `updates [--prefixes N] [--events N]`

use ca_ram_bench::{rule, Cli, Result};
use ca_ram_cam::SortedTcam;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::SearchKey;
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_workloads::bgp::{generate, BgpConfig};
use ca_ram_workloads::prefix::Ipv4Prefix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let prefixes_n: usize = cli.parse("prefixes", 30_000)?;
    let events: usize = cli.parse("events", 20_000)?;
    let config = BgpConfig::scaled(prefixes_n);
    let all = generate(&config);
    // Start with 80% of the table installed; churn announces/withdraws the
    // rest in a random interleaving.
    let split = all.len() * 4 / 5;
    let (installed, pool) = all.split_at(split);

    println!(
        "Route-update study: {} installed prefixes, {} update events\n",
        installed.len(),
        events
    );

    // CA-RAM: design-D-like geometry sized for the table.
    let layout = RecordLayout::new(32, true, 0);
    let rows_log2 = 9;
    let table_config = TableConfig {
        rows_log2,
        row_bits: 64 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(2),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe {
            max_steps: 1 << rows_log2,
        },
    };
    let mut caram = CaRamTable::new(
        table_config,
        Box::new(RangeSelect::ip_first16_last(rows_log2)),
    )
    .expect("valid config");
    let mut tcam = SortedTcam::new(all.len() + 8, 32);

    for p in installed {
        caram
            .insert_sorted(Record::new(p.to_ternary_key(), 0))
            .expect("sized for the table");
        tcam.insert(p.to_ternary_key(), 0).expect("capacity");
    }

    // Churn.
    let mut rng = SmallRng::seed_from_u64(0xBEE);
    let mut live: Vec<Ipv4Prefix> = installed.to_vec();
    let mut spare: Vec<Ipv4Prefix> = pool.to_vec();
    let mut caram_probes: u64 = 0;
    let mut tcam_moves: u64 = 0;
    let mut announces = 0u64;
    let mut withdraws = 0u64;
    for _ in 0..events {
        if !spare.is_empty() && (live.is_empty() || rng.gen_bool(0.5)) {
            // Announce.
            let p = spare.swap_remove(rng.gen_range(0..spare.len()));
            let out = caram
                .insert_sorted(Record::new(p.to_ternary_key(), 0))
                .expect("capacity");
            caram_probes += out
                .placements
                .iter()
                .map(|pl| u64::from(pl.displacement) + 1)
                .sum::<u64>();
            let receipt = tcam.insert(p.to_ternary_key(), 0).expect("capacity");
            tcam_moves += u64::from(receipt.moves);
            live.push(p);
            announces += 1;
        } else if !live.is_empty() {
            // Withdraw.
            let p = live.swap_remove(rng.gen_range(0..live.len()));
            let removed = caram.delete(&p.to_ternary_key());
            assert!(removed >= 1, "{p} missing from CA-RAM");
            caram_probes += u64::from(removed); // one bucket rewrite per copy
            let receipt = tcam.delete(&p.to_ternary_key()).expect("present");
            tcam_moves += u64::from(receipt.moves);
            spare.push(p);
            withdraws += 1;
        }
    }

    println!("{:<34} {:>14} {:>14}", "", "CA-RAM", "sorted TCAM");
    rule(64);
    println!(
        "{:<34} {:>14} {:>14}",
        "update events",
        announces + withdraws,
        announces + withdraws
    );
    #[allow(clippy::cast_precision_loss)]
    let ca = caram_probes as f64 / (announces + withdraws) as f64;
    #[allow(clippy::cast_precision_loss)]
    let tm = tcam_moves as f64 / (announces + withdraws) as f64;
    println!(
        "{:<34} {:>14.2} {:>14.2}",
        "bucket writes / entry moves per op", ca, tm
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "records after churn",
        caram.record_count(),
        tcam.len()
    );
    rule(64);

    // Equivalence audit.
    assert!(tcam.invariant_holds(), "TCAM ordering broken by churn");
    let mut checked = 0u32;
    for _ in 0..10_000 {
        let addr = if rng.gen_bool(0.7) && !live.is_empty() {
            live[rng.gen_range(0..live.len())].random_member(&mut rng)
        } else {
            rng.gen::<u32>()
        };
        let key = SearchKey::new(u128::from(addr), 32);
        let a = caram.search(&key).hit.map(|h| h.record.key.care_count());
        let b = tcam.search(&key).map(|m| m.entry.key.care_count());
        if a != b {
            // Diagnose: where does every matching record live, and what is
            // the reach of its home bucket?
            caram.for_each_record(|bucket, slot, r| {
                if r.key.matches(&key) {
                    let home = caram.home_bucket(&key);
                    eprintln!(
                        "match care={} at bucket={bucket} slot={slot}; search home={home} disp={}",
                        r.key.care_count(),
                        (bucket + caram.logical_buckets() - home) % caram.logical_buckets(),
                    );
                }
            });
            eprintln!("search accesses: {}", caram.search(&key).memory_accesses);
            panic!("divergence on {addr:#010x}: caram {a:?} tcam {b:?}");
        }
        checked += u32::from(a.is_some());
    }
    println!("\nequivalence audit: 10,000 lookups, {checked} hits, zero divergences.");
    println!("(CA-RAM updates touch O(chain) buckets; TCAM updates move O(lengths) entries)");
    Ok(())
}
