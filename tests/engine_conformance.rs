//! Instantiates the `SearchEngine` conformance suite against every backend
//! in the workspace: the CA-RAM table, the subsystem database adapter, the
//! six CAM baselines, the software-index bridge, and the concurrent
//! serving layer wrapped back into an engine.
//!
//! The suite (in `ca_ram::core::engine::conformance`) checks the full trait
//! contract: insert→search round-trip, miss behavior, batch ≡ serial ≡
//! parallel bit-equivalence, stats-snapshot consistency, and delete→miss.

use ca_ram::cam::{BankedTcam, BinaryCam, PreclassifiedCam, PrecomputedBcam, SortedTcam, Tcam};
use ca_ram::core::engine::conformance::{check_engine, check_loaded, Probe};
use ca_ram::core::engine::SearchEngine;
use ca_ram::core::error::CaRamError;
use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::subsystem::CaRamSubsystem;
use ca_ram::core::table::{CaRamTable, TableConfig};
use ca_ram::service::ServiceEngine;
use ca_ram::softsearch::structures::{Arena, ChainedHash, SortedArray};
use ca_ram::softsearch::{Hierarchy, SoftEngine};

/// Exact-match probes over disjoint 32-bit values.
fn exact_probes() -> Vec<Probe> {
    (0..24u128)
        .map(|i| Probe::exact(0x1000_0000 + i * 0x101, 32, 1000 + i as u64))
        .collect()
}

/// Keys guaranteed to miss the [`exact_probes`] set.
fn exact_misses() -> Vec<SearchKey> {
    (0..8u128)
        .map(|i| SearchKey::new(0x3000_0000 + i * 0x777, 32))
        .collect()
}

/// Ternary (prefix-style) probes with disjoint top bytes, probed with a
/// member address of each pattern.
fn ternary_probes() -> Vec<Probe> {
    (0..12u128)
        .map(|i| {
            let value = (0x40 + i) << 24;
            // Low 8 bits are don't-care; probe with a nonzero member.
            Probe::ternary(value, 0xFF, 32, value | 0x5A, 2000 + i as u64)
        })
        .collect()
}

fn ternary_misses() -> Vec<SearchKey> {
    (0..6u128)
        .map(|i| SearchKey::new((0x80 + i) << 24, 32))
        .collect()
}

/// A small single-slice CA-RAM table: 16 buckets of 8 ternary-capable
/// slots, hashed on key bits [24, 28) — above every don't-care bit the
/// probes use, so no record is duplicated across buckets.
fn small_table() -> CaRamTable {
    let layout = RecordLayout::new(32, true, 16);
    let config = TableConfig::single_slice(4, 8 * layout.slot_bits(), layout);
    CaRamTable::new(config, Box::new(RangeSelect::new(24, 4))).expect("valid config")
}

#[test]
fn caram_table_conforms_exact() {
    let mut table = small_table();
    check_engine(&mut table, &exact_probes()[..12], &exact_misses());
}

#[test]
fn caram_table_conforms_ternary() {
    let mut table = small_table();
    check_engine(&mut table, &ternary_probes(), &ternary_misses());
}

#[test]
fn subsystem_adapter_conforms_and_counts() {
    let mut subsystem = CaRamSubsystem::new();
    let id = subsystem.add_database("ipv4", small_table());
    {
        let mut engine = subsystem.engine(id);
        assert_eq!(engine.name(), "ipv4");
        check_engine(&mut engine, &ternary_probes(), &ternary_misses());
    }
    // Every search the conformance suite issued went through the shared
    // per-database instrumentation.
    let counters = subsystem.counters(id);
    assert!(counters.searches > 0, "adapter searches were not counted");
    assert!(counters.hits > 0, "adapter hits were not counted");
    assert!(counters.memory_accesses >= counters.searches);
}

#[test]
fn service_engine_conforms_exact() {
    // The whole serving layer — admission, bounded queue, worker thread,
    // batcher — behind the trait: every conformance op is a synchronous
    // round trip through the concurrent path.
    let mut engine = ServiceEngine::single_shard(Box::new(small_table())).expect("valid service");
    check_engine(&mut engine, &exact_probes()[..12], &exact_misses());
}

#[test]
fn service_engine_conforms_ternary() {
    let mut engine = ServiceEngine::single_shard(Box::new(small_table())).expect("valid service");
    check_engine(&mut engine, &ternary_probes(), &ternary_misses());
}

#[test]
fn tcam_conforms() {
    let mut tcam = Tcam::new(64, 32);
    check_engine(&mut tcam, &ternary_probes(), &ternary_misses());
}

#[test]
fn sorted_tcam_conforms() {
    let mut tcam = SortedTcam::new(64, 32);
    check_engine(&mut tcam, &ternary_probes(), &ternary_misses());
}

#[test]
fn binary_cam_conforms() {
    let mut bcam = BinaryCam::new(64, 32);
    check_engine(&mut bcam, &exact_probes(), &exact_misses());
}

#[test]
fn banked_tcam_conforms() {
    // 4 banks selected by the low 2 key bits. The probes are fully
    // specified, so no entry is duplicated across banks and occupancy
    // counts match the insert count.
    let mut banked = BankedTcam::new(Box::new(RangeSelect::new(0, 2)), 32, 32);
    check_engine(&mut banked, &exact_probes(), &exact_misses());
}

#[test]
fn preclassified_cam_conforms() {
    // 4 categories keyed by the control code in key bits [8, 10).
    let mut cam = PreclassifiedCam::new(4, 32, 32, 8, 2);
    check_engine(&mut cam, &exact_probes(), &exact_misses());
}

#[test]
fn precomputed_bcam_conforms() {
    let mut cam = PrecomputedBcam::new(64, 32);
    check_engine(&mut cam, &exact_probes(), &exact_misses());
}

#[test]
fn soft_engine_bridges_conform() {
    let pairs: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 2_654_435_761, i + 7)).collect();
    let probes: Vec<Probe> = pairs
        .iter()
        .map(|&(k, v)| Probe::exact(u128::from(k), 64, v))
        .collect();
    let misses: Vec<SearchKey> = (1..64u128)
        .map(|i| SearchKey::new(i * 13 + 5, 64))
        .collect();

    let mut arena = Arena::new(0);
    let chained = SoftEngine::new(
        ChainedHash::build(&pairs, 6, &mut arena),
        Hierarchy::typical(),
    );
    check_loaded(&chained, &probes, &misses);

    let sorted = SoftEngine::new(SortedArray::build(&pairs, &mut arena), Hierarchy::typical());
    check_loaded(&sorted, &probes, &misses);
}

#[test]
fn soft_engine_rejects_dynamic_updates() {
    let pairs = [(1u64, 2u64), (3, 4)];
    let mut arena = Arena::new(0);
    let mut engine = SoftEngine::new(SortedArray::build(&pairs, &mut arena), Hierarchy::typical());
    let err = engine
        .insert(Record::new(TernaryKey::binary(9, 64), 9))
        .expect_err("software indexes are static");
    assert!(matches!(err, CaRamError::Unsupported(_)));
    assert_eq!(engine.delete(&TernaryKey::binary(1, 64)), 0);
}

#[test]
fn engines_are_usable_as_trait_objects() {
    // The trait is object-safe: a heterogeneous fleet behind one interface.
    let engines: Vec<Box<dyn SearchEngine>> = vec![
        Box::new(Tcam::new(16, 32)),
        Box::new(BinaryCam::new(16, 32)),
        Box::new(PrecomputedBcam::new(16, 32)),
        Box::new(small_table()),
    ];
    for engine in &engines {
        assert_eq!(engine.key_bits(), 32, "{}", engine.name());
        assert!(engine
            .search(&SearchKey::new(0xDEAD_BEEF, 32))
            .hit
            .is_none());
    }
}
