//! Reproduces the paper's **motivating claim** (Sec. 1, 2.1, 4.1): software
//! search over a large database costs several main-memory accesses per
//! lookup — "software-based approaches usually require at least 4 to 6
//! memory accesses for forwarding one packet" — while CA-RAM needs ≈1.
//!
//! Runs the software structures over a simulated 32 KiB L1 + 2 MiB L2
//! hierarchy with a routing-table-sized key set, then prints the CA-RAM
//! AMAL for the same record count alongside.
//!
//! Usage: `software_baseline [--records N] [--lookups N]`

use ca_ram_bench::designs::{build_ip_table, ip_designs, load_prefixes};
use ca_ram_bench::{exact_match_workload, rule, Cli, ExactMatchWorkload, Result};
use ca_ram_softsearch::cache::Hierarchy;
use ca_ram_softsearch::harness::measure;
use ca_ram_softsearch::structures::{
    Arena, BinarySearchTree, ChainedHash, OpenAddressing, SoftIndex, SortedArray,
};
use ca_ram_softsearch::trie::MultibitTrie;
use ca_ram_workloads::bgp::{generate, BgpConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let records: usize = cli.parse("records", 1_000_000)?;
    let lookups: usize = cli.parse("lookups", 50_000)?;

    println!("Software search cost vs CA-RAM (records: {records}, lookups: {lookups})\n");

    let ExactMatchWorkload { pairs, keys, trace } = exact_match_workload(records, lookups, 0xBEEF);

    let mut arena = Arena::new(0);
    let chained = ChainedHash::build(&pairs, 18, &mut arena); // ~4 per chain
    let open = OpenAddressing::build(&pairs, 21, &mut arena); // alpha ~0.5
    let sorted = SortedArray::build(&pairs, &mut arena);
    let bst = BinarySearchTree::build(&pairs, &mut arena);

    println!(
        "{:<22} {:>10} {:>12} {:>9} {:>9} {:>13}",
        "structure", "loads/op", "DRAM/op", "L1 hit", "L2 hit", "cycles/op"
    );
    rule(80);
    let mut mem = Hierarchy::typical();
    for index in [&chained as &dyn SoftIndex, &open, &sorted, &bst] {
        mem.reset();
        let r = measure(index, &keys, &trace, &mut mem);
        println!(
            "{:<22} {:>10.2} {:>12.2} {:>8.1}% {:>8.1}% {:>13.1}",
            r.structure,
            r.avg_loads,
            r.avg_memory_accesses,
            100.0 * r.l1_hit_rate,
            100.0 * r.l2_hit_rate,
            r.avg_latency_cycles
        );
    }
    rule(80);

    // The software LPM structure the paper's 4-6 figure refers to: a
    // multibit trie over the synthetic BGP table, looked up with member
    // addresses (true LPM traffic, not exact-match).
    println!("\nSoftware LPM (multibit trie, 8-bit stride) on the BGP table:");
    {
        let config = BgpConfig::scaled(records.min(186_760));
        let table = generate(&config);
        let entries: Vec<(u32, u8, u64)> = table
            .iter()
            .map(|p| (p.addr(), p.len(), u64::from(p.len())))
            .collect();
        let mut arena = Arena::new(1 << 40);
        let trie = MultibitTrie::build(&entries, 8, &mut arena);
        let mut mem = Hierarchy::typical();
        let mut rng2 = SmallRng::seed_from_u64(0xF00D);
        // Warm up, then measure.
        for _ in 0..10_000 {
            let p = table[rng2.gen_range(0..table.len())];
            let _ = trie.lookup(p.random_member(&mut rng2), &mut mem);
        }
        mem.stats = ca_ram_softsearch::cache::AccessStats::default();
        let mut loads: u64 = 0;
        let n = 50_000;
        for _ in 0..n {
            let p = table[rng2.gen_range(0..table.len())];
            let got = trie.lookup(p.random_member(&mut rng2), &mut mem);
            assert!(got.value.is_some());
            loads += u64::from(got.loads);
        }
        #[allow(clippy::cast_precision_loss)]
        let (l, d) = (
            loads as f64 / f64::from(n),
            mem.stats.memory_accesses as f64 / f64::from(n),
        );
        println!(
            "  {} prefixes, {} trie nodes: {l:.2} loads/lookup, {d:.2} DRAM accesses/lookup",
            table.len(),
            trie.node_count()
        );
        println!("  (3-4 dependent loads per lookup at 8-bit stride; finer strides and");
        println!("   trie variants reach the paper's 4-6; caches absorb the top levels)");
    }

    // CA-RAM on a comparable record count: design A of Table 2 scaled.
    let config = BgpConfig::scaled(records.min(186_760));
    let prefixes = generate(&config);
    let mut t = build_ip_table(&ip_designs()[0]);
    load_prefixes(&mut t, &prefixes, &vec![1.0; prefixes.len()]);
    let report = t.load_report();
    println!(
        "{:<22} {:>10} {:>12.3}   (one row fetch + parallel match)",
        "CA-RAM (design A)", "1 probe", report.amal_uniform
    );
    println!("\nPaper: software needs >=4-6 memory accesses per lookup; CA-RAM needs ~1.");
    Ok(())
}
