//! Greedy hash-bit selection (Zane et al. \[32\], used in Sec. 4.1).
//!
//! "Our hash function is based on the bit selection scheme by Zane et al.,
//! which simply uses a selected set of bits from IP addresses. ... we apply
//! the algorithm in \[32\] to find the best set of R bits which distributes
//! the prefixes most evenly to buckets."
//!
//! The greedy algorithm repeatedly adds the candidate bit that minimizes
//! the maximum bucket load. Candidates are restricted to the first 16
//! address bits (bit positions 16..32, LSB-numbered) because ≥98% of
//! prefixes are at least 16 bits long, so those bits are defined for almost
//! every prefix.

use crate::prefix::Ipv4Prefix;

/// Result of a bit-selection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSelection {
    /// Chosen bit positions (LSB-numbered within the 32-bit address),
    /// sorted ascending. Bit `i` of the bucket index is the address bit at
    /// `positions[i]`.
    pub positions: Vec<u32>,
    /// Maximum bucket load achieved over the evaluation set.
    pub max_load: u32,
}

/// Greedily selects `r` hash bits from `candidates` minimizing the maximum
/// bucket load over `prefixes`. Prefixes shorter than the highest candidate
/// position cannot be bucketed by it and are skipped for evaluation (they
/// are the duplicated minority).
///
/// # Panics
///
/// Panics if `r` is zero or larger than the candidate set, or if
/// `prefixes` is empty.
#[must_use]
pub fn greedy_bit_selection(prefixes: &[Ipv4Prefix], r: u32, candidates: &[u32]) -> BitSelection {
    assert!(!prefixes.is_empty(), "need at least one prefix");
    assert!(
        r > 0 && (r as usize) <= candidates.len(),
        "cannot pick {r} bits from {} candidates",
        candidates.len()
    );
    // Evaluation set: prefixes for which every candidate bit is defined.
    let needed_len = candidates
        .iter()
        .map(|&p| 32 - p)
        .max()
        .expect("candidates non-empty");
    let addrs: Vec<u32> = prefixes
        .iter()
        .filter(|p| u32::from(p.len()) >= needed_len)
        .map(Ipv4Prefix::addr)
        .collect();
    assert!(
        !addrs.is_empty(),
        "no prefix is long enough for the candidate bits"
    );

    let mut chosen: Vec<u32> = Vec::with_capacity(r as usize);
    // Bucket id per address under the currently chosen bits.
    let mut groups: Vec<u32> = vec![0; addrs.len()];
    let mut best_max = u32::try_from(addrs.len()).expect("fits");
    for _ in 0..r {
        let mut best: Option<(u32, u32)> = None; // (bit, resulting max load)
        for &bit in candidates {
            if chosen.contains(&bit) {
                continue;
            }
            let mut loads = vec![0u32; 1usize << (chosen.len() + 1)];
            for (i, &addr) in addrs.iter().enumerate() {
                let g = (groups[i] << 1) | ((addr >> bit) & 1);
                loads[g as usize] += 1;
            }
            let max = loads.into_iter().max().expect("non-empty");
            if best.is_none_or(|(_, m)| max < m) {
                best = Some((bit, max));
            }
        }
        let (bit, max) = best.expect("candidates remain");
        for (i, &addr) in addrs.iter().enumerate() {
            groups[i] = (groups[i] << 1) | ((addr >> bit) & 1);
        }
        chosen.push(bit);
        best_max = max;
    }
    chosen.sort_unstable();
    BitSelection {
        positions: chosen,
        max_load: best_max,
    }
}

/// The paper's final choice for comparison: the last `r` bits of the first
/// 16 address bits, i.e. positions `16..16+r`.
#[must_use]
pub fn last_of_first16(r: u32) -> Vec<u32> {
    (16..16 + r).collect()
}

/// Maximum bucket load of `prefixes` under an explicit set of hash bits
/// (skipping prefixes too short for the bits, as in the greedy evaluator).
///
/// # Panics
///
/// Panics if `positions` is empty or no prefix is long enough.
#[must_use]
pub fn max_load(prefixes: &[Ipv4Prefix], positions: &[u32]) -> u32 {
    assert!(!positions.is_empty(), "need at least one hash bit");
    let needed_len = positions.iter().map(|&p| 32 - p).max().expect("non-empty");
    let mut loads = vec![0u32; 1usize << positions.len()];
    let mut any = false;
    for p in prefixes {
        if u32::from(p.len()) < needed_len {
            continue;
        }
        any = true;
        let mut g = 0u32;
        for (i, &bit) in positions.iter().enumerate() {
            g |= ((p.addr() >> bit) & 1) << i;
        }
        loads[g as usize] += 1;
    }
    assert!(any, "no prefix is long enough for the hash bits");
    loads.into_iter().max().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{generate, BgpConfig};

    #[test]
    fn greedy_beats_or_matches_naive_contiguous_selection() {
        let table = generate(&BgpConfig::scaled(10_000));
        let candidates: Vec<u32> = (16..32).collect();
        let greedy = greedy_bit_selection(&table, 8, &candidates);
        let naive = max_load(&table, &last_of_first16(8));
        // Greedy is not globally optimal, so allow a small regression band;
        // it must at least be competitive with the fixed contiguous choice.
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let bound = (f64::from(naive) * 1.10).ceil() as u32;
        assert!(
            greedy.max_load <= bound,
            "greedy {} vs naive {naive}",
            greedy.max_load
        );
        assert_eq!(greedy.positions.len(), 8);
        assert!(greedy.positions.iter().all(|&p| (16..32).contains(&p)));
    }

    #[test]
    fn greedy_consistent_with_max_load_evaluator() {
        let table = generate(&BgpConfig::scaled(5_000));
        let candidates: Vec<u32> = (16..28).collect();
        let sel = greedy_bit_selection(&table, 6, &candidates);
        // Positions ≤ 25 ⇒ every /16+ prefix participates in both
        // evaluations, but max_load also skips the same short prefixes —
        // loads must agree when the needed length matches.
        if sel.positions.iter().map(|&p| 32 - p).max() == Some(16) {
            assert_eq!(max_load(&table, &sel.positions), sel.max_load);
        }
    }

    #[test]
    fn perfect_split_on_structured_input() {
        // Addresses 0..64 shifted to the top: bits 26..32 split perfectly.
        let table: Vec<Ipv4Prefix> = (0u32..64).map(|i| Ipv4Prefix::new(i << 26, 16)).collect();
        let candidates: Vec<u32> = (16..32).collect();
        let sel = greedy_bit_selection(&table, 6, &candidates);
        assert_eq!(sel.max_load, 1);
    }

    #[test]
    fn more_bits_never_hurt() {
        let table = generate(&BgpConfig::scaled(8_000));
        let candidates: Vec<u32> = (16..32).collect();
        let a = greedy_bit_selection(&table, 4, &candidates);
        let b = greedy_bit_selection(&table, 8, &candidates);
        assert!(b.max_load <= a.max_load);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn too_many_bits_rejected() {
        let table = generate(&BgpConfig::scaled(100));
        let _ = greedy_bit_selection(&table, 5, &[16, 17]);
    }
}
