//! ACT-R-style declarative-memory chunks (the paper's future-work
//! application, Sec. 6).
//!
//! "A large-scale system implementing a cognitive model such as ACT-R will
//! benefit from employing CA-RAM, as it requires much search and data
//! evaluation capabilities." An ACT-R *chunk* is a typed record with a
//! small set of slot values; a *retrieval* presents a partial pattern (the
//! cue: the type plus any subset of slots) and asks for a matching chunk —
//! exactly CA-RAM's masked search.
//!
//! A chunk packs into a 128-bit key:
//!
//! ```text
//! [ type: 8 bits | slot3: 30 | slot2: 30 | slot1: 30 | slot0: 30 ]
//!   bits 120..128   90..120     60..90      30..60      0..30
//! ```
//!
//! Retrieval cues leave unspecified slots don't-care. Hash functions should
//! select bits from the type field and `slot0` (cues conventionally bind
//! the first slot); cues that leave `slot0` open hash to several buckets —
//! the multi-bucket masked-search cost of Sec. 4 surfaces naturally.

use ca_ram_core::key::SearchKey;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of value slots in a chunk.
pub const SLOTS: usize = 4;
/// Bits per slot value.
pub const SLOT_BITS: u32 = 30;
/// Bits for the chunk type.
pub const TYPE_BITS: u32 = 8;
/// Bit position of the type field.
#[allow(clippy::cast_possible_truncation)] // SLOTS = 4
pub const TYPE_LOW: u32 = SLOT_BITS * SLOTS as u32;

/// A declarative-memory chunk: a type and [`SLOTS`] slot values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chunk {
    /// Chunk type (e.g. `addition-fact`), 8 bits.
    pub ctype: u8,
    /// Slot values (symbol ids), 30 bits each.
    pub slots: [u32; SLOTS],
}

impl Chunk {
    /// Creates a chunk.
    ///
    /// # Panics
    ///
    /// Panics if a slot value exceeds [`SLOT_BITS`] bits.
    #[must_use]
    pub fn new(ctype: u8, slots: [u32; SLOTS]) -> Self {
        for (i, &v) in slots.iter().enumerate() {
            assert!(
                v < (1 << SLOT_BITS),
                "slot {i} value {v} exceeds {SLOT_BITS} bits"
            );
        }
        Self { ctype, slots }
    }

    /// Packs the chunk into its 128-bit stored key.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // internal expect: 4 slots
    pub fn to_key(&self) -> u128 {
        let mut key = u128::from(self.ctype) << TYPE_LOW;
        for (i, &v) in self.slots.iter().enumerate() {
            key |= u128::from(v) << (SLOT_BITS * u32::try_from(i).expect("few slots"));
        }
        key
    }

    /// Unpacks a stored key back into a chunk.
    #[must_use]
    pub fn from_key(key: u128) -> Self {
        let mut slots = [0u32; SLOTS];
        for (i, slot) in slots.iter_mut().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            {
                *slot = ((key >> (SLOT_BITS * i as u32)) & ((1 << SLOT_BITS) - 1)) as u32;
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        let ctype = ((key >> TYPE_LOW) & 0xFF) as u8;
        Self { ctype, slots }
    }
}

/// A retrieval cue: a chunk type plus any subset of bound slots.
///
/// # Examples
///
/// ```
/// use ca_ram_workloads::chunks::{Chunk, Cue};
///
/// let fact = Chunk::new(3, [4, 7, 11, 0]); // e.g. 4 + 7 = 11
/// let cue = Cue::of_type(3).bind(0, 4).bind(1, 7); // "what is 4 + 7?"
/// assert!(cue.matches(&fact));
/// // The cue compiles to a masked CA-RAM search key.
/// let key = cue.to_search_key();
/// assert!(key.is_masked());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cue {
    /// Required chunk type.
    pub ctype: u8,
    /// Per-slot binding: `Some(v)` constrains the slot, `None` is open.
    pub bindings: [Option<u32>; SLOTS],
}

impl Cue {
    /// A cue for `ctype` with all slots open.
    #[must_use]
    pub fn of_type(ctype: u8) -> Self {
        Self {
            ctype,
            bindings: [None; SLOTS],
        }
    }

    /// Returns the cue with slot `i` bound to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `v` exceeds [`SLOT_BITS`] bits.
    #[must_use]
    pub fn bind(mut self, i: usize, v: u32) -> Self {
        assert!(i < SLOTS, "slot {i} out of range");
        assert!(
            v < (1 << SLOT_BITS),
            "slot value {v} exceeds {SLOT_BITS} bits"
        );
        self.bindings[i] = Some(v);
        self
    }

    /// The masked search key implementing this cue: the type and bound
    /// slots are care bits; open slots are don't-care.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // internal expect: 4 slots
    pub fn to_search_key(&self) -> SearchKey {
        let mut value = u128::from(self.ctype) << TYPE_LOW;
        let mut dont_care: u128 = 0;
        for (i, binding) in self.bindings.iter().enumerate() {
            let low = SLOT_BITS * u32::try_from(i).expect("few slots");
            match binding {
                Some(v) => value |= u128::from(*v) << low,
                None => dont_care |= (((1u128) << SLOT_BITS) - 1) << low,
            }
        }
        SearchKey::with_mask(value, dont_care, 128)
    }

    /// Whether `chunk` satisfies the cue.
    #[must_use]
    pub fn matches(&self, chunk: &Chunk) -> bool {
        self.ctype == chunk.ctype
            && self
                .bindings
                .iter()
                .zip(&chunk.slots)
                .all(|(b, &s)| b.is_none_or(|v| v == s))
    }
}

/// Configuration of the synthetic declarative-memory generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Unique chunks to generate.
    pub chunks: usize,
    /// Number of distinct chunk types.
    pub types: u8,
    /// Symbol-space size per slot.
    pub symbols: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self {
            chunks: 100_000,
            types: 12,
            symbols: 5_000,
            seed: 0xAC7,
        }
    }
}

/// Generates a deterministic set of unique chunks.
///
/// # Panics
///
/// Panics if the configuration cannot produce enough unique chunks.
#[must_use]
pub fn generate(config: &ChunkConfig) -> Vec<Chunk> {
    assert!(config.chunks > 0, "need at least one chunk");
    assert!(config.types > 0, "need at least one type");
    assert!(config.symbols > 0, "need at least one symbol");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut seen = std::collections::HashSet::with_capacity(config.chunks * 2);
    let mut out = Vec::with_capacity(config.chunks);
    let mut attempts: u64 = 0;
    while out.len() < config.chunks {
        attempts += 1;
        assert!(
            attempts < (config.chunks as u64) * 100 + 1024,
            "symbol space too small for the requested chunk count"
        );
        let chunk = Chunk::new(
            rng.gen_range(0..config.types),
            [
                rng.gen_range(0..config.symbols),
                rng.gen_range(0..config.symbols),
                rng.gen_range(0..config.symbols),
                rng.gen_range(0..config.symbols),
            ],
        );
        if seen.insert(chunk.to_key()) {
            out.push(chunk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trip() {
        let c = Chunk::new(7, [1, 2, 3, (1 << SLOT_BITS) - 1]);
        assert_eq!(Chunk::from_key(c.to_key()), c);
    }

    #[test]
    fn cue_matches_bound_slots_only() {
        let c = Chunk::new(3, [10, 20, 30, 40]);
        assert!(Cue::of_type(3).matches(&c));
        assert!(Cue::of_type(3).bind(0, 10).bind(2, 30).matches(&c));
        assert!(!Cue::of_type(3).bind(0, 11).matches(&c));
        assert!(!Cue::of_type(4).matches(&c));
    }

    #[test]
    fn search_key_agrees_with_cue_semantics() {
        let chunks = generate(&ChunkConfig {
            chunks: 500,
            types: 4,
            symbols: 30,
            seed: 5,
        });
        let cue = Cue::of_type(2).bind(1, chunks[0].slots[1] % 30);
        let key = cue.to_search_key();
        for c in &chunks {
            let stored = ca_ram_core::key::TernaryKey::binary(c.to_key(), 128);
            assert_eq!(stored.matches(&key), cue.matches(c), "{c:?}");
        }
    }

    #[test]
    fn fully_bound_cue_is_exact() {
        let c = Chunk::new(1, [5, 6, 7, 8]);
        let cue = Cue::of_type(1).bind(0, 5).bind(1, 6).bind(2, 7).bind(3, 8);
        let key = cue.to_search_key();
        assert!(!key.is_masked());
        assert_eq!(key.value(), c.to_key());
    }

    #[test]
    fn generator_is_deterministic_and_unique() {
        let config = ChunkConfig {
            chunks: 2_000,
            ..ChunkConfig::default()
        };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        let mut keys: Vec<u128> = a.iter().map(Chunk::to_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 2_000);
    }

    #[test]
    #[should_panic(expected = "exceeds 30 bits")]
    fn oversized_slot_rejected() {
        let _ = Chunk::new(0, [1 << SLOT_BITS, 0, 0, 0]);
    }
}
