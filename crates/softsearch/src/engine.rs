//! Bridges [`SoftIndex`] structures into the unified
//! [`SearchEngine`] interface of `ca-ram-core`.
//!
//! A [`SoftEngine`] pairs a statically built software index with the
//! simulated cache [`Hierarchy`] its loads run through, so the software
//! baselines can be driven by the same benches, conformance tests, and
//! comparison tables as CA-RAM and the CAM devices.
//!
//! Two properties of the software model shape the bridge:
//!
//! * A lookup's `loads` count is a function of the structure and the key
//!   alone — the cache state only decides how *fast* each load is, never
//!   how many there are. `memory_accesses` therefore stays deterministic
//!   and the batch/parallel bit-equivalence contract holds even though the
//!   hierarchy is stateful.
//! * All loads thread through one stateful hierarchy, so execution is
//!   inherently serial. The parallel provided method is overridden to run
//!   the serial batch: sharding a single cache simulator across threads
//!   would serialize on the lock anyway and perturb the modeled hit rates.
//!
//! The structures are built statically (e.g. [`ChainedHash::build`]), so
//! [`SearchEngine::insert`] returns [`CaRamError::Unsupported`] and
//! [`SearchEngine::delete`] removes nothing.
//!
//! [`ChainedHash::build`]: crate::structures::ChainedHash::build

use std::sync::Mutex;

use ca_ram_core::engine::{EngineHit, EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::{CaRamError, Result};
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;
use ca_ram_core::stats::SearchStats;

use crate::cache::{AccessStats, Hierarchy};
use crate::structures::{Lookup, SoftIndex};

/// Key width of every [`SoftEngine`]: the software structures index
/// `u64 -> u64`.
pub const SOFT_KEY_BITS: u32 = 64;

/// A [`SoftIndex`] plus its cache hierarchy, viewed as a [`SearchEngine`].
#[derive(Debug)]
pub struct SoftEngine<I> {
    index: I,
    mem: Mutex<Hierarchy>,
}

impl<I: SoftIndex> SoftEngine<I> {
    /// Wraps a built index with the hierarchy its loads run through.
    pub fn new(index: I, mem: Hierarchy) -> Self {
        Self {
            index,
            mem: Mutex::new(mem),
        }
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// A snapshot of the hierarchy's cache access statistics.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the internal lock.
    pub fn cache_stats(&self) -> AccessStats {
        self.mem.lock().expect("hierarchy lock poisoned").stats
    }

    /// Resets the hierarchy's cache contents and statistics.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the internal lock.
    pub fn reset_cache(&self) {
        self.mem.lock().expect("hierarchy lock poisoned").reset();
    }

    /// Unwraps into the index and the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the internal lock.
    pub fn into_parts(self) -> (I, Hierarchy) {
        (
            self.index,
            self.mem.into_inner().expect("hierarchy lock poisoned"),
        )
    }
}

fn to_outcome(l: Lookup) -> EngineOutcome {
    EngineOutcome {
        hit: l.value.map(|data| EngineHit {
            // The matched key is not part of a software lookup result; the
            // hit carries only the data payload.
            key: TernaryKey::binary(u128::from(data), SOFT_KEY_BITS),
            data,
        }),
        memory_accesses: l.loads,
    }
}

#[allow(clippy::cast_possible_truncation)]
fn to_u64_key(key: &SearchKey) -> u64 {
    key.value() as u64
}

impl<I: SoftIndex + Send + Sync> SearchEngine for SoftEngine<I> {
    fn name(&self) -> &str {
        self.index.name()
    }

    fn key_bits(&self) -> u32 {
        SOFT_KEY_BITS
    }

    /// # Panics
    ///
    /// Panics on a masked or non-64-bit search key — the software
    /// structures are exact-match dictionaries over `u64`.
    fn search(&self, key: &SearchKey) -> EngineOutcome {
        assert_eq!(key.bits(), SOFT_KEY_BITS, "search key width mismatch");
        assert!(
            !key.is_masked(),
            "software indexes cannot search with don't-care bits"
        );
        let mut mem = self.mem.lock().expect("hierarchy lock poisoned");
        to_outcome(self.index.lookup(to_u64_key(key), &mut mem))
    }

    fn insert(&mut self, _record: Record) -> Result<()> {
        Err(CaRamError::Unsupported(
            "software indexes are built statically",
        ))
    }

    fn delete(&mut self, _key: &TernaryKey) -> u32 {
        0
    }

    fn occupancy(&self) -> EngineReport {
        EngineReport::default()
    }

    /// Batched lookup holding the hierarchy lock once for the whole batch.
    ///
    /// # Panics
    ///
    /// As [`SoftEngine::search`], per key.
    fn search_batch(&self, keys: &[SearchKey]) -> Vec<EngineOutcome> {
        let mut u64_keys = Vec::with_capacity(keys.len());
        for key in keys {
            assert_eq!(key.bits(), SOFT_KEY_BITS, "search key width mismatch");
            assert!(
                !key.is_masked(),
                "software indexes cannot search with don't-care bits"
            );
            u64_keys.push(to_u64_key(key));
        }
        let mut lookups = Vec::new();
        {
            let mut mem = self.mem.lock().expect("hierarchy lock poisoned");
            self.index.lookup_batch(&u64_keys, &mut mem, &mut lookups);
        }
        lookups.into_iter().map(to_outcome).collect()
    }

    /// The software model is inherently serial (one stateful cache
    /// hierarchy), so the "parallel" path runs the serial batch; the
    /// statistics are accumulated identically.
    fn search_batch_parallel_stats(
        &self,
        keys: &[SearchKey],
        _threads: usize,
    ) -> (Vec<EngineOutcome>, SearchStats) {
        let outcomes = self.search_batch(keys);
        let mut stats = SearchStats::new();
        for o in &outcomes {
            stats.record(o.hit.is_some(), o.memory_accesses);
        }
        (outcomes, stats)
    }
}
