//! One engine shard: a lock-free mailbox ring, its worker loop, the
//! batching coalescer, and the degradation ladder.
//!
//! Nothing on the steady-state search path takes a lock:
//!
//! * **Admission** is a relaxed occupancy reservation (`fetch_add` against
//!   the configured depth) followed by a lock-free ring push.
//! * **The worker** drains the ring with plain loads/stores (it is the
//!   single consumer), parks only on the empty↔non-empty edge, and owns
//!   the engine outright through an [`EngineCell`] — read-only searches
//!   borrow the engine with zero atomic operations, writes bump a seqlock
//!   epoch and republish the occupancy report.
//! * **Completion** fills an atomic slot and unparks at most one waiter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use ca_ram_core::engine::{EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::key::SearchKey;
use ca_ram_core::telemetry::{HistogramSink, RequestTrace, SpanStage, TelemetrySink};

use crate::config::ServiceConfig;
use crate::request::{
    AdmissionError, PendingRequest, PendingSubBatch, RingEntry, ServiceOp, ServiceReply,
    ShedReason, Slot, Ticket,
};
use crate::ring::{Parker, Ring};
use crate::trace::{FlightEventKind, ShardTracer};

/// Sentinel for "the engine does not report this" in the published
/// occupancy atomics.
const UNKNOWN: u64 = u64::MAX;

/// Iterations the worker polls the ring before advertising `PARKED`. Kept
/// small: a long spin would starve producers on saturated machines.
const WORKER_SPINS: u32 = 64;

/// Lock-free per-shard counters; read by snapshots while the worker runs.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Requests admitted into the ring (batch entries count their keys).
    pub accepted: AtomicU64,
    /// Requests refused at admission (queue full).
    pub rejected: AtomicU64,
    /// Requests shed because their deadline expired while queued.
    pub shed_deadline: AtomicU64,
    /// Requests shed because the service shut down with them queued.
    pub shed_shutdown: AtomicU64,
    /// Searches answered by a coalesced duplicate's engine probe.
    pub coalesced: AtomicU64,
    /// Completions whose deep telemetry was shed (ladder rung 1).
    pub telemetry_shed: AtomicU64,
    /// Worker drain cycles.
    pub batches: AtomicU64,
    /// Largest single drain observed, in requests.
    pub max_batch: AtomicU64,
    /// Engine search calls issued (post-coalescing, pre-dedup counts once).
    pub searches: AtomicU64,
    /// Engine `insert`/`insert_sorted` calls issued.
    pub inserts: AtomicU64,
    /// Engine delete calls issued.
    pub deletes: AtomicU64,
    /// Batch ring entries admitted (`submit_batch` sub-batches).
    pub batch_entries: AtomicU64,
    /// Keys carried by those batch entries.
    pub batch_keys: AtomicU64,
    /// Times the worker blocked in `park` (empty→non-empty edges).
    pub parks: AtomicU64,
    /// Unpark syscalls issued by producers (should track `parks`).
    pub unparks: AtomicU64,
}

impl ShardStats {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// Limits copied out of [`ServiceConfig`] so the worker never re-derives
/// thresholds per drain.
#[derive(Debug, Clone, Copy)]
struct ShardLimits {
    queue_depth: usize,
    batch_max: usize,
    batch_threads: usize,
    telemetry_shed_threshold: usize,
    coalesce_threshold: usize,
}

/// Single-writer seqlock cell around the shard's engine.
///
/// The worker thread is the only code that ever touches the engine, so
/// read-only access needs no synchronization at all (a plain reborrow) and
/// writes only bump an epoch counter — odd while a mutation is in
/// progress, even when quiescent — and republish the occupancy report into
/// plain atomics. [`EngineCell::occupancy`] is a genuine seqlock read: it
/// validates the epoch before and after loading the report and retries
/// across an in-flight write, so the pair it returns always comes from one
/// write generation. The engine pointer itself is never shared outside the
/// worker.
struct EngineCell {
    engine: std::cell::UnsafeCell<Box<dyn SearchEngine>>,
    /// Mutation epoch: `2 × writes` when quiescent, odd mid-write.
    epoch: AtomicU64,
    records: AtomicU64,
    capacity: AtomicU64,
}

// SAFETY: the boxed engine is accessed only from the worker thread
// (`engine`/`write` are `unsafe fn` with that contract); the atomics carry
// everything that crosses threads.
unsafe impl Sync for EngineCell {}

impl EngineCell {
    fn new(engine: Box<dyn SearchEngine>) -> Self {
        let report = engine.occupancy();
        Self {
            engine: std::cell::UnsafeCell::new(engine),
            epoch: AtomicU64::new(0),
            records: AtomicU64::new(report.records.unwrap_or(UNKNOWN)),
            capacity: AtomicU64::new(report.capacity.unwrap_or(UNKNOWN)),
        }
    }

    /// Borrows the engine read-only — zero atomics, wait-free.
    ///
    /// # Safety
    ///
    /// Must only be called from the shard worker thread (the single owner);
    /// the returned borrow must not outlive the enclosing drain step.
    unsafe fn engine(&self) -> &dyn SearchEngine {
        unsafe { &**self.engine.get() }
    }

    /// Runs a mutation under the epoch protocol and republishes occupancy.
    ///
    /// # Safety
    ///
    /// Must only be called from the shard worker thread.
    unsafe fn write<R>(&self, f: impl FnOnce(&mut dyn SearchEngine) -> R) -> R {
        // Seqlock writer: the odd store must be visible before any report
        // store (release fence), and the closing even store releases the
        // report to readers whose first epoch load acquires it.
        self.epoch.fetch_add(1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        let engine = unsafe { &mut **self.engine.get() };
        let result = f(engine);
        let report = engine.occupancy();
        self.records
            .store(report.records.unwrap_or(UNKNOWN), Ordering::Relaxed);
        self.capacity
            .store(report.capacity.unwrap_or(UNKNOWN), Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        result
    }

    /// The last published occupancy, callable from any thread. A seqlock
    /// read: retries while a write is in flight (epoch odd or changed), so
    /// `records`/`capacity` always come from the same write generation.
    /// Writes are rare and short, so the retry loop is effectively bounded.
    fn occupancy(&self) -> EngineReport {
        let decode = |v: u64| (v != UNKNOWN).then_some(v);
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 0 {
                let records = self.records.load(Ordering::Relaxed);
                let capacity = self.capacity.load(Ordering::Relaxed);
                // Pairs with the writer's release fence: if either load
                // above saw a mid-write store, the epoch re-read below is
                // guaranteed to see the odd (or later) epoch and retry.
                std::sync::atomic::fence(Ordering::Acquire);
                if self.epoch.load(Ordering::Relaxed) == before {
                    return EngineReport {
                        records: decode(records),
                        capacity: decode(capacity),
                    };
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Completed write generations (epoch / 2).
    fn write_epochs(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed) / 2
    }
}

/// One member of a pending search run, after deadline filtering.
enum SearchItem {
    Single(PendingRequest),
    Sub(PendingSubBatch),
}

impl SearchItem {
    /// The sampled lifecycle trace, if this item carries one.
    fn trace_mut(&mut self) -> Option<&mut RequestTrace> {
        match self {
            SearchItem::Single(request) => request.trace.as_deref_mut(),
            SearchItem::Sub(sub) => sub.trace.as_deref_mut(),
        }
    }
}

/// Worker-local scratch reused across drains so the steady-state path
/// allocates nothing.
struct Scratch {
    entries: Vec<RingEntry>,
    run: Vec<SearchItem>,
    live: Vec<SearchItem>,
    keys: Vec<SearchKey>,
    outcomes: Vec<EngineOutcome>,
    /// Probe index per (item, key), flattened in `live` order.
    key_of: Vec<u32>,
    seen: HashMap<SearchKey, u32>,
    /// Writes applied this drain, awaiting the group commit before their
    /// replies are delivered (ack-after-commit).
    writes: Vec<FinishedWrite>,
}

impl Scratch {
    fn new(batch_max: usize) -> Self {
        Self {
            entries: Vec::with_capacity(batch_max),
            run: Vec::with_capacity(batch_max),
            live: Vec::with_capacity(batch_max),
            keys: Vec::with_capacity(batch_max),
            outcomes: Vec::with_capacity(batch_max),
            key_of: Vec::with_capacity(batch_max),
            seen: HashMap::new(),
            writes: Vec::new(),
        }
    }
}

/// A write whose engine mutation has been applied but whose reply is held
/// back until the drain's single group commit succeeds.
struct FinishedWrite {
    request: PendingRequest,
    reply: ServiceReply,
}

/// One shard: a lock-free bounded MPSC ring in front of an exclusively
/// owned engine.
///
/// Submitters are the many producers; exactly one worker thread drains the
/// ring, so per-shard operation order is the admission order — a search
/// submitted after an insert to the same shard observes it.
pub(crate) struct Shard {
    index: usize,
    ring: Ring<RingEntry>,
    parker: Parker,
    /// Ring entries currently reserved or queued; admission bound.
    len: AtomicUsize,
    /// Requests currently queued in the ring — batch entries weighted by
    /// their key count, reserved-but-unpushed entries excluded. Drives the
    /// degradation ladder in the same per-request units the config's fill
    /// fractions are written in; `len` stays the admission bound.
    queued_requests: AtomicUsize,
    /// In-flight submitters (reserve→push window); the shutdown drain
    /// waits for this to quiesce before shedding leftovers.
    submitters: AtomicUsize,
    engine: EngineCell,
    limits: ShardLimits,
    pub(crate) stats: ShardStats,
    /// Queue-depth (per drain) and queue-wait (per request, microseconds)
    /// histograms; the wait histogram is rung 1 of the degradation ladder.
    pub(crate) sink: HistogramSink,
    /// Observability v2: trace sampling, the flight-event ring, ladder
    /// transitions, and the SLO latency histogram.
    pub(crate) tracer: ShardTracer,
}

impl Shard {
    pub(crate) fn new(index: usize, engine: Box<dyn SearchEngine>, config: &ServiceConfig) -> Self {
        Self {
            index,
            ring: Ring::new(config.queue_depth),
            parker: Parker::new(),
            len: AtomicUsize::new(0),
            queued_requests: AtomicUsize::new(0),
            submitters: AtomicUsize::new(0),
            engine: EngineCell::new(engine),
            limits: ShardLimits {
                queue_depth: config.queue_depth,
                batch_max: config.batch_max,
                batch_threads: config.batch_threads,
                telemetry_shed_threshold: config.telemetry_shed_threshold(),
                coalesce_threshold: config.coalesce_threshold(),
            },
            stats: ShardStats::default(),
            sink: HistogramSink::new(),
            #[allow(clippy::cast_possible_truncation)]
            tracer: ShardTracer::new(index as u32, config),
        }
    }

    // ---- admission primitives (shared by singles and batches) ----------

    /// Enters the submit window; `false` means the shard is closed.
    pub(crate) fn enter(&self) -> bool {
        self.submitters.fetch_add(1, Ordering::SeqCst);
        if self.parker.is_closed() {
            self.exit();
            return false;
        }
        true
    }

    /// Leaves the submit window.
    pub(crate) fn exit(&self) {
        self.submitters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Reserves one ring entry against the admission bound.
    pub(crate) fn try_reserve(&self) -> bool {
        if self.len.fetch_add(1, Ordering::Relaxed) >= self.limits.queue_depth {
            self.release();
            return false;
        }
        true
    }

    /// Releases an unused reservation.
    pub(crate) fn release(&self) {
        self.len.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes a reserved entry and wakes the worker if it sleeps.
    /// Caller must hold the submit window and a reservation.
    pub(crate) fn push_reserved(&self, entry: RingEntry) {
        let requests = entry.requests();
        if let RingEntry::Batch(sub) = &entry {
            ShardStats::bump(&self.stats.batch_entries, 1);
            ShardStats::bump(&self.stats.batch_keys, sub.keys.len() as u64);
        }
        // Counted before the publish so the consumer (which decrements
        // only after popping the published entry) can never underflow it.
        self.queued_requests
            .fetch_add(entry.request_count(), Ordering::Relaxed);
        self.ring
            .push(entry)
            .unwrap_or_else(|_| unreachable!("reservation bounds ring occupancy"));
        ShardStats::bump(&self.stats.accepted, requests);
        if self.parker.wake() {
            ShardStats::bump(&self.stats.unparks, 1);
        }
    }

    /// The configured admission bound, for error reporting.
    pub(crate) fn depth(&self) -> usize {
        self.limits.queue_depth
    }

    /// The request-weighted queue depth right now (telemetry).
    pub(crate) fn queued_depth(&self) -> usize {
        self.queued_requests.load(Ordering::Relaxed)
    }

    /// Bumps the rejected counter by `n` requests and records the refusal
    /// in the flight ring (plus a minimal trace when sampled).
    pub(crate) fn note_rejected(&self, n: u64) {
        ShardStats::bump(&self.stats.rejected, n);
        self.tracer.note_reject(n);
    }

    /// Admission control: enqueue or refuse, never block.
    pub(crate) fn try_submit(
        &self,
        op: ServiceOp,
        deadline: Option<Instant>,
    ) -> Result<Ticket, AdmissionError> {
        if !self.enter() {
            return Err(AdmissionError::ShuttingDown);
        }
        if !self.try_reserve() {
            self.exit();
            self.note_rejected(1);
            return Err(AdmissionError::QueueFull {
                shard: self.index,
                depth: self.limits.queue_depth,
            });
        }
        let ticket = self.enqueue(op, deadline);
        self.exit();
        Ok(ticket)
    }

    /// Backpressure: wait for queue space instead of refusing.
    pub(crate) fn submit_blocking(
        &self,
        op: ServiceOp,
        deadline: Option<Instant>,
    ) -> Result<Ticket, AdmissionError> {
        let mut backoff = 0u32;
        loop {
            if !self.enter() {
                return Err(AdmissionError::ShuttingDown);
            }
            if self.try_reserve() {
                let ticket = self.enqueue(op, deadline);
                self.exit();
                return Ok(ticket);
            }
            self.exit();
            // No condvar to sleep on: poll with a yield-then-sleep backoff.
            // Backpressure is the closed-loop/test path, not the hot one.
            backoff = (backoff + 1).min(16);
            if backoff < 8 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    fn enqueue(&self, op: ServiceOp, deadline: Option<Instant>) -> Ticket {
        let slot = Slot::new();
        // Head sampling: one relaxed load when tracing is off, one
        // fetch_add-and-mask when on; the unsampled path carries `None`.
        let mut trace = self.tracer.start_trace();
        if let Some(t) = trace.as_deref_mut() {
            t.record(SpanStage::Enqueued);
        }
        self.push_reserved(RingEntry::Single(PendingRequest {
            op,
            enqueued: Instant::now(),
            deadline,
            slot: std::sync::Arc::clone(&slot),
            trace,
        }));
        Ticket::new(slot)
    }

    /// Marks the shard closed and wakes the worker; it drains what is
    /// already queued, then exits.
    pub(crate) fn close(&self) {
        self.parker.close();
    }

    /// Sheds anything still ringed after the worker exited. A gracefully
    /// exiting worker leaves nothing behind (it waits for admission to
    /// quiesce and the ring to drain), so this is the backstop for a
    /// worker that panicked mid-service. Callers must first join the
    /// worker (making this thread the ring's consumer) and let the submit
    /// windows quiesce via [`Shard::await_submitters`].
    pub(crate) fn drain_after_join(&self) {
        let now = Instant::now();
        let mut orphaned_entries = 0u64;
        let mut shed_requests = 0u64;
        while let Some(entry) = self.ring.pop() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.queued_requests
                .fetch_sub(entry.request_count(), Ordering::Relaxed);
            ShardStats::bump(&self.stats.shed_shutdown, entry.requests());
            orphaned_entries += 1;
            shed_requests += entry.requests();
            match entry {
                RingEntry::Single(mut request) => {
                    self.finish_shed(request.trace.take(), now);
                    request.complete(ServiceReply::Shed(ShedReason::Shutdown), now, false);
                }
                RingEntry::Batch(mut sub) => {
                    self.finish_shed(sub.trace.take(), now);
                    sub.shed(ShedReason::Shutdown);
                }
            }
        }
        if orphaned_entries > 0 {
            // The worker exited with work still ringed — either it
            // panicked or the shutdown protocol raced. Both are dump-worthy.
            self.tracer
                .event(FlightEventKind::ShedShutdown, shed_requests, 0);
            self.tracer
                .event(FlightEventKind::OrphanRisk, orphaned_entries, 0);
        }
    }

    /// Terminates a sampled trace as shed and hands it to tail retention.
    fn finish_shed(&self, trace: Option<Box<RequestTrace>>, now: Instant) {
        if let Some(mut t) = trace {
            t.record_at(SpanStage::Shed, now, 0);
            self.tracer.finish(*t);
        }
    }

    /// Spins until no submitter is inside the reserve→push window. Only
    /// meaningful after [`Shard::close`]: new submitters bounce off the
    /// closed check, so the count can only drain.
    pub(crate) fn await_submitters(&self) {
        while self.submitters.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// The last published occupancy report — seqlock-consistent (never
    /// torn across write generations).
    pub(crate) fn occupancy(&self) -> EngineReport {
        self.engine.occupancy()
    }

    /// Completed engine write generations (telemetry).
    pub(crate) fn write_epochs(&self) -> u64 {
        self.engine.write_epochs()
    }

    /// The worker loop: drain up to `batch_max` ring entries, serve them,
    /// repeat until closed, admission-quiescent, *and* empty — shutdown is
    /// graceful, queued work finishes, and a request admitted in the
    /// close race is still served rather than orphaned. Parks (after a
    /// short spin) only when the ring is empty.
    pub(crate) fn worker_loop(&self) {
        self.parker.register_worker();
        let mut scratch = Scratch::new(self.limits.batch_max);
        loop {
            // Request-weighted (a queued sub-batch counts each of its
            // keys), so the degradation ladder's fill fractions keep the
            // per-request meaning they had under the per-request queue.
            let depth_at_drain = self.queued_requests.load(Ordering::Relaxed);
            while scratch.entries.len() < self.limits.batch_max {
                match self.ring.pop() {
                    Some(entry) => {
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        self.queued_requests
                            .fetch_sub(entry.request_count(), Ordering::Relaxed);
                        scratch.entries.push(entry);
                    }
                    None => break,
                }
            }
            if scratch.entries.is_empty() {
                if self.parker.is_closed() {
                    // Exit only once admission has quiesced: a submitter
                    // that passed `enter`'s closed check just before
                    // `close` may still be inside the reserve→push window,
                    // and returning now would orphan its entry (an
                    // `Ok(Ticket)` nobody ever completes until shutdown's
                    // drain). `enter` bounces new submitters after close,
                    // so the count only drains; the SeqCst `exit` after a
                    // guarded push guarantees this thread then observes
                    // the pushed entry on the next `pop`.
                    if self.submitters.load(Ordering::SeqCst) == 0 && self.ring.is_empty() {
                        return;
                    }
                    std::thread::yield_now();
                    continue;
                }
                let mut found = false;
                for _ in 0..WORKER_SPINS {
                    if !self.ring.is_empty() {
                        found = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                if !found {
                    let ring = &self.ring;
                    if self.parker.sleep(|| !ring.is_empty()) {
                        ShardStats::bump(&self.stats.parks, 1);
                    }
                }
                continue;
            }
            let requests: u64 = scratch.entries.iter().map(RingEntry::requests).sum();
            self.sink.queue_depth((depth_at_drain as u64).max(requests));
            ShardStats::bump(&self.stats.batches, 1);
            self.stats.max_batch.fetch_max(requests, Ordering::Relaxed);
            self.process(&mut scratch, depth_at_drain.max(1));
        }
    }

    /// Serves one drained set of entries in admission order: consecutive
    /// searches (singles and batch slices alike) merge into one engine
    /// batch call; writes are applied one at a time by the owning worker.
    fn process(&self, scratch: &mut Scratch, depth_at_drain: usize) {
        let deep_telemetry = depth_at_drain < self.limits.telemetry_shed_threshold;
        let coalesce = depth_at_drain >= self.limits.coalesce_threshold;
        self.tracer.note_drain(
            depth_at_drain as u64,
            self.stats.rejected.load(Ordering::Relaxed),
            deep_telemetry,
            coalesce,
        );
        let picked_up = Instant::now();

        let mut entries = std::mem::take(&mut scratch.entries);
        for mut entry in entries.drain(..) {
            if let Some(t) = entry.trace_mut() {
                t.record_at(SpanStage::PickedUp, picked_up, 0);
            }
            match entry {
                RingEntry::Single(request) if request.op.is_write() => {
                    if !scratch.run.is_empty() {
                        self.serve_search_run(scratch, picked_up, deep_telemetry, coalesce);
                    }
                    self.serve_write(scratch, request, picked_up, deep_telemetry);
                }
                RingEntry::Single(request) => scratch.run.push(SearchItem::Single(request)),
                RingEntry::Batch(sub) => scratch.run.push(SearchItem::Sub(sub)),
            }
        }
        scratch.entries = entries;
        if !scratch.run.is_empty() {
            self.serve_search_run(scratch, picked_up, deep_telemetry, coalesce);
        }
        self.complete_writes(scratch, picked_up);
    }

    /// One consecutive run of searches: shed expired deadlines, optionally
    /// dedup identical keys, and answer the rest through one batch call.
    #[allow(clippy::too_many_lines)]
    fn serve_search_run(
        &self,
        scratch: &mut Scratch,
        picked_up: Instant,
        deep_telemetry: bool,
        coalesce: bool,
    ) {
        // Deadline filter.
        scratch.live.clear();
        let mut shed_deadline = 0u64;
        let mut any_traced = false;
        for item in scratch.run.drain(..) {
            match item {
                SearchItem::Single(mut request)
                    if request.deadline.is_some_and(|d| d <= picked_up) =>
                {
                    ShardStats::bump(&self.stats.shed_deadline, 1);
                    shed_deadline += 1;
                    self.finish_shed(request.trace.take(), picked_up);
                    request.complete(
                        ServiceReply::Shed(ShedReason::DeadlineExpired),
                        picked_up,
                        false,
                    );
                }
                SearchItem::Sub(mut sub) if sub.deadline.is_some_and(|d| d <= picked_up) => {
                    ShardStats::bump(&self.stats.shed_deadline, sub.keys.len() as u64);
                    shed_deadline += sub.keys.len() as u64;
                    self.finish_shed(sub.trace.take(), picked_up);
                    sub.shed(ShedReason::DeadlineExpired);
                }
                mut live => {
                    any_traced |= live.trace_mut().is_some();
                    scratch.live.push(live);
                }
            }
        }
        if shed_deadline > 0 {
            self.tracer
                .event(FlightEventKind::ShedDeadline, shed_deadline, 0);
        }
        if scratch.live.is_empty() {
            return;
        }

        // Map every live key onto a (possibly shared) probe slot.
        scratch.keys.clear();
        scratch.key_of.clear();
        let mut total_keys = 0u64;
        {
            let keys = &mut scratch.keys;
            let key_of = &mut scratch.key_of;
            let mut map_key = |key: SearchKey| {
                total_keys += 1;
                if coalesce {
                    let slot = *scratch.seen.entry(key).or_insert_with(|| {
                        keys.push(key);
                        u32::try_from(keys.len() - 1).expect("batch fits u32")
                    });
                    key_of.push(slot);
                } else {
                    keys.push(key);
                    key_of.push(u32::try_from(keys.len() - 1).expect("batch fits u32"));
                }
            };
            for item in &scratch.live {
                match item {
                    SearchItem::Single(request) => {
                        let ServiceOp::Search(key) = request.op else {
                            unreachable!("search run contains only searches");
                        };
                        map_key(key);
                    }
                    SearchItem::Sub(sub) => {
                        for &key in &sub.keys {
                            map_key(key);
                        }
                    }
                }
            }
        }
        if coalesce {
            scratch.seen.clear();
            ShardStats::bump(
                &self.stats.coalesced,
                total_keys - scratch.keys.len() as u64,
            );
        }
        ShardStats::bump(&self.stats.searches, scratch.keys.len() as u64);

        // Stamp the merge and engine-start boundary once for every traced
        // member of the run; unsampled runs skip the scan entirely.
        if any_traced {
            let engine_start = Instant::now();
            let merged = scratch.keys.len() as u64;
            for item in &mut scratch.live {
                if let Some(t) = item.trace_mut() {
                    t.record_at(SpanStage::Merged, engine_start, merged);
                    t.record_at(SpanStage::EngineStart, engine_start, 0);
                }
            }
        }

        // One engine call for the whole run — the worker owns the engine,
        // so the read path is free of atomics and locks.
        // SAFETY: this is the shard worker thread, the engine's sole owner.
        let engine = unsafe { self.engine.engine() };
        if scratch.keys.len() > 1 && self.limits.batch_threads != 1 {
            scratch.outcomes =
                engine.search_batch_parallel(&scratch.keys, self.limits.batch_threads);
        } else {
            engine.search_batch_into(&scratch.keys, &mut scratch.outcomes);
        }
        // One clock read per run serves both the traced engine-done stamp
        // and the (always-on) SLO latency histogram.
        let engine_done = Instant::now();
        if any_traced {
            for item in &mut scratch.live {
                if let Some(t) = item.trace_mut() {
                    t.record_at(SpanStage::EngineDone, engine_done, 0);
                }
            }
        }

        // Distribute outcomes back, in admission order.
        let shared = total_keys > scratch.keys.len() as u64;
        let mut cursor = 0usize;
        for item in scratch.live.drain(..) {
            match item {
                SearchItem::Single(mut request) => {
                    let outcome = scratch.outcomes[scratch.key_of[cursor] as usize];
                    cursor += 1;
                    if deep_telemetry {
                        let wait_us = picked_up
                            .saturating_duration_since(request.enqueued)
                            .as_micros()
                            .min(u128::from(u64::MAX));
                        #[allow(clippy::cast_possible_truncation)]
                        self.sink.queue_wait(wait_us as u64);
                    } else {
                        ShardStats::bump(&self.stats.telemetry_shed, 1);
                    }
                    let total_us = engine_done
                        .saturating_duration_since(request.enqueued)
                        .as_micros()
                        .min(u128::from(u64::MAX));
                    #[allow(clippy::cast_possible_truncation)]
                    self.tracer.latency_us.record(total_us as u64);
                    let trace = request.trace.take();
                    request.complete(ServiceReply::Search(outcome), picked_up, shared);
                    if let Some(mut t) = trace {
                        t.record(SpanStage::Completed);
                        self.tracer.finish(*t);
                    }
                }
                SearchItem::Sub(mut sub) => {
                    for &position in &sub.positions {
                        let outcome = scratch.outcomes[scratch.key_of[cursor] as usize];
                        cursor += 1;
                        sub.slot
                            .write_reply(position, ServiceReply::Search(outcome));
                    }
                    let wait = picked_up.saturating_duration_since(sub.slot.enqueued());
                    sub.slot.note_queue_wait(wait);
                    if deep_telemetry {
                        let wait_us = wait.as_micros().min(u128::from(u64::MAX));
                        #[allow(clippy::cast_possible_truncation)]
                        self.sink.queue_wait(wait_us as u64);
                    } else {
                        ShardStats::bump(&self.stats.telemetry_shed, sub.keys.len() as u64);
                    }
                    let total_us = engine_done
                        .saturating_duration_since(sub.slot.enqueued())
                        .as_micros()
                        .min(u128::from(u64::MAX));
                    #[allow(clippy::cast_possible_truncation)]
                    self.tracer
                        .latency_us
                        .record_n(total_us as u64, sub.keys.len() as u64);
                    let trace = sub.trace.take();
                    sub.slot.finish_sub();
                    if let Some(mut t) = trace {
                        t.record(SpanStage::Completed);
                        self.tracer.finish(*t);
                    }
                }
            }
        }
    }

    /// One write, applied in admission order by the engine-owning worker.
    /// The engine mutation happens here (so later searches in the same
    /// drain observe it), but the reply is parked in `scratch.writes`
    /// until [`Shard::complete_writes`] runs the drain's group commit.
    fn serve_write(
        &self,
        scratch: &mut Scratch,
        mut request: PendingRequest,
        picked_up: Instant,
        deep_telemetry: bool,
    ) {
        if request.deadline.is_some_and(|d| d <= picked_up) {
            ShardStats::bump(&self.stats.shed_deadline, 1);
            self.tracer.event(FlightEventKind::ShedDeadline, 1, 0);
            self.finish_shed(request.trace.take(), picked_up);
            request.complete(
                ServiceReply::Shed(ShedReason::DeadlineExpired),
                picked_up,
                false,
            );
            return;
        }
        if let Some(t) = request.trace.as_deref_mut() {
            // A write is its own single-request "batch".
            let now = Instant::now();
            t.record_at(SpanStage::Merged, now, 1);
            t.record_at(SpanStage::EngineStart, now, 0);
        }
        // SAFETY: this is the shard worker thread, the engine's sole owner.
        let reply = unsafe {
            self.engine.write(|engine| match request.op {
                ServiceOp::Insert(record) => {
                    ShardStats::bump(&self.stats.inserts, 1);
                    ServiceReply::Insert(engine.insert(record))
                }
                ServiceOp::InsertSorted(record) => {
                    ShardStats::bump(&self.stats.inserts, 1);
                    ServiceReply::Insert(engine.insert_sorted(record))
                }
                ServiceOp::Delete(key) => {
                    ShardStats::bump(&self.stats.deletes, 1);
                    ServiceReply::Delete(engine.delete(&key))
                }
                ServiceOp::Search(_) => unreachable!("writes only"),
            })
        };
        if let Some(t) = request.trace.as_deref_mut() {
            t.record(SpanStage::EngineDone);
        }
        if deep_telemetry {
            let wait_us = picked_up
                .saturating_duration_since(request.enqueued)
                .as_micros()
                .min(u128::from(u64::MAX));
            #[allow(clippy::cast_possible_truncation)]
            self.sink.queue_wait(wait_us as u64);
        } else {
            ShardStats::bump(&self.stats.telemetry_shed, 1);
        }
        scratch.writes.push(FinishedWrite { request, reply });
    }

    /// The drain's group commit: one durability barrier for every write
    /// applied since the last drain, then their replies. A single
    /// `commit` covers the whole batch — on a plain in-memory engine it is
    /// a no-op, on a durable engine it is one WAL write (and optional
    /// fsync) amortized over the batch.
    fn complete_writes(&self, scratch: &mut Scratch, picked_up: Instant) {
        if scratch.writes.is_empty() {
            return;
        }
        // SAFETY: this is the shard worker thread, the engine's sole owner.
        let committed = unsafe { self.engine.write(|engine| engine.commit()) };
        for FinishedWrite { mut request, reply } in scratch.writes.drain(..) {
            let reply = match (&committed, reply) {
                // An insert the engine accepted but the backend failed to
                // persist must not be acked as durable.
                (Err(e), ServiceReply::Insert(Ok(()))) => ServiceReply::Insert(Err(e.clone())),
                (_, reply) => reply,
            };
            let total_us = request
                .enqueued
                .elapsed()
                .as_micros()
                .min(u128::from(u64::MAX));
            #[allow(clippy::cast_possible_truncation)]
            self.tracer.latency_us.record(total_us as u64);
            let trace = request.trace.take();
            request.complete(reply, picked_up, false);
            if let Some(mut t) = trace {
                t.record(SpanStage::Completed);
                self.tracer.finish(*t);
            }
        }
    }
}
