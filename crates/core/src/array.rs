//! The dense memory array of a CA-RAM slice (SRAM or DRAM).
//!
//! The array is a plain `2^R × C`-bit random access memory — completely
//! decoupled from the match logic, which is the source of CA-RAM's density
//! advantage (Sec. 3.1). Rows are exposed both as whole-row accesses (what a
//! search performs) and as word-addressable RAM-mode accesses (Sec. 3.2).

use crate::error::{CaRamError, Result};

/// A `rows × row_bits` bit-accurate memory array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryArray {
    rows: u64,
    row_bits: u32,
    row_words: u32,
    data: Vec<u64>,
}

impl MemoryArray {
    /// Allocates a zeroed array of `rows` rows of `row_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: u64, row_bits: u32) -> Self {
        assert!(rows > 0, "array needs at least one row");
        assert!(row_bits > 0, "rows need at least one bit");
        let row_words = row_bits.div_ceil(64);
        let words = usize::try_from(rows * u64::from(row_words))
            .expect("array size exceeds the address space");
        Self {
            rows,
            row_bits,
            row_words,
            data: vec![0; words],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bits per row (`C`).
    #[must_use]
    pub fn row_bits(&self) -> u32 {
        self.row_bits
    }

    /// 64-bit words per row.
    #[must_use]
    pub fn row_words(&self) -> u32 {
        self.row_words
    }

    /// Total addressable words (RAM mode).
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.rows * u64::from(self.row_words)
    }

    fn row_range(&self, row: u64) -> core::ops::Range<usize> {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        let start = usize::try_from(row * u64::from(self.row_words)).expect("checked at new");
        start..start + self.row_words as usize
    }

    /// The words of `row` — what one memory access fetches.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn row(&self, row: u64) -> &[u64] {
        let r = self.row_range(row);
        &self.data[r]
    }

    /// Mutable access to the words of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_mut(&mut self, row: u64) -> &mut [u64] {
        let r = self.row_range(row);
        &mut self.data[r]
    }

    /// RAM-mode word read (Sec. 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for addresses past the end.
    pub fn read_word(&self, address: u64) -> Result<u64> {
        let idx = usize::try_from(address).map_err(|_| CaRamError::AddressOutOfRange {
            address,
            words: self.total_words(),
        })?;
        self.data
            .get(idx)
            .copied()
            .ok_or(CaRamError::AddressOutOfRange {
                address,
                words: self.total_words(),
            })
    }

    /// RAM-mode word write (Sec. 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for addresses past the end.
    pub fn write_word(&mut self, address: u64, value: u64) -> Result<()> {
        let words = self.total_words();
        let idx = usize::try_from(address)
            .ok()
            .filter(|&i| i < self.data.len())
            .ok_or(CaRamError::AddressOutOfRange { address, words })?;
        self.data[idx] = value;
        Ok(())
    }

    /// Zeroes the whole array (a hardware-style bulk clear).
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let a = MemoryArray::new(2048, 2048);
        assert_eq!(a.rows(), 2048);
        assert_eq!(a.row_bits(), 2048);
        assert_eq!(a.row_words(), 32);
        assert_eq!(a.total_words(), 2048 * 32);
    }

    #[test]
    fn row_width_rounds_up_to_words() {
        let a = MemoryArray::new(4, 65);
        assert_eq!(a.row_words(), 2);
        assert_eq!(a.row(0).len(), 2);
    }

    #[test]
    fn rows_are_independent() {
        let mut a = MemoryArray::new(4, 128);
        a.row_mut(1)[0] = 0xAAAA;
        a.row_mut(2)[1] = 0xBBBB;
        assert_eq!(a.row(0), &[0, 0]);
        assert_eq!(a.row(1), &[0xAAAA, 0]);
        assert_eq!(a.row(2), &[0, 0xBBBB]);
        assert_eq!(a.row(3), &[0, 0]);
    }

    #[test]
    fn ram_mode_addresses_row_major() {
        let mut a = MemoryArray::new(2, 128);
        a.row_mut(1)[1] = 77;
        assert_eq!(a.read_word(3).unwrap(), 77);
        a.write_word(0, 11).unwrap();
        assert_eq!(a.row(0)[0], 11);
    }

    #[test]
    fn ram_mode_out_of_range() {
        let mut a = MemoryArray::new(2, 64);
        assert!(matches!(
            a.read_word(2),
            Err(CaRamError::AddressOutOfRange {
                address: 2,
                words: 2
            })
        ));
        assert!(a.write_word(100, 0).is_err());
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut a = MemoryArray::new(2, 64);
        a.write_word(0, 5).unwrap();
        a.write_word(1, 6).unwrap();
        a.clear();
        assert_eq!(a.read_word(0).unwrap(), 0);
        assert_eq!(a.read_word(1).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "row 9 out of range")]
    fn row_out_of_range_panics() {
        let a = MemoryArray::new(9, 64);
        let _ = a.row(9);
    }
}
