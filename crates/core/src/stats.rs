//! Placement and lookup statistics: load factor, overflow, AMAL
//! (Sec. 2.1, Tables 2–3, Fig. 7).
//!
//! The paper's main cost/performance metrics:
//!
//! * **load factor** `α = N / (M × S)` over *original* records (duplicates
//!   created for don't-care hash bits are reported separately, matching the
//!   Table 2 convention);
//! * **overflowing buckets** — buckets from which at least one home record
//!   spilled;
//! * **spilled records** — records placed outside their home bucket;
//! * **AMAL** — average number of memory accesses per lookup, uniform
//!   (`AMALu`) or weighted by access frequency (`AMALs`).

/// Running placement statistics maintained by a table during construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementStats {
    original_records: u64,
    duplicate_records: u64,
    spilled_records: u64,
    /// Per-bucket count of *home* records that spilled (indexed lazily).
    sum_accesses: f64,
    weighted_accesses: f64,
    total_weight: f64,
    placed_records: u64,
}

impl PlacementStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the insertion of one original record that expanded into
    /// `placements` placed copies (1 unless don't-care hash bits forced
    /// duplication), each with the given probe displacement. `weight` is the
    /// record's access frequency (1.0 for the uniform model).
    ///
    /// # Panics
    ///
    /// Panics if `displacements` is empty or `weight` is negative.
    pub fn record_insert(&mut self, displacements: &[u32], weight: f64) {
        assert!(
            !displacements.is_empty(),
            "an insert places at least one copy"
        );
        assert!(weight >= 0.0, "access weight must be non-negative");
        self.original_records += 1;
        self.duplicate_records += displacements.len() as u64 - 1;
        for &d in displacements {
            self.placed_records += 1;
            if d > 0 {
                self.spilled_records += 1;
            }
        }
        // A lookup of this record costs displacement+1 accesses. For a
        // duplicated record the cost depends on which duplicate the search
        // key selects; we charge the mean over duplicates.
        #[allow(clippy::cast_precision_loss)]
        let mean_accesses = displacements
            .iter()
            .map(|&d| f64::from(d) + 1.0)
            .sum::<f64>()
            / displacements.len() as f64;
        self.sum_accesses += mean_accesses;
        self.weighted_accesses += mean_accesses * weight;
        self.total_weight += weight;
    }

    /// Number of original records inserted.
    #[must_use]
    pub fn original_records(&self) -> u64 {
        self.original_records
    }

    /// Extra copies created for don't-care hash bits.
    #[must_use]
    pub fn duplicate_records(&self) -> u64 {
        self.duplicate_records
    }

    /// Placed copies (original + duplicates).
    #[must_use]
    pub fn placed_records(&self) -> u64 {
        self.placed_records
    }

    /// Copies placed outside their home bucket.
    #[must_use]
    pub fn spilled_records(&self) -> u64 {
        self.spilled_records
    }

    /// Fraction of placed copies that spilled.
    #[must_use]
    pub fn spilled_fraction(&self) -> f64 {
        if self.placed_records == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.spilled_records as f64 / self.placed_records as f64
            }
        }
    }

    /// `AMALu`: mean accesses per lookup, uniform over records.
    #[must_use]
    pub fn amal_uniform(&self) -> f64 {
        if self.original_records == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum_accesses / self.original_records as f64
            }
        }
    }

    /// `AMALs`: mean accesses per lookup, weighted by access frequency.
    #[must_use]
    pub fn amal_weighted(&self) -> f64 {
        if self.total_weight == 0.0 {
            0.0
        } else {
            self.weighted_accesses / self.total_weight
        }
    }
}

/// Aggregate statistics over a stream of searches — the unit the batched
/// pipeline accumulates per worker shard and merges afterwards, so the
/// parallel path reports exactly what the serial path would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Searches performed.
    pub searches: u64,
    /// Searches that produced a hit.
    pub hits: u64,
    /// Total bucket fetches performed.
    pub memory_accesses: u64,
}

impl SearchStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one search outcome.
    pub fn record(&mut self, hit: bool, memory_accesses: u32) {
        self.searches += 1;
        self.hits += u64::from(hit);
        self.memory_accesses += u64::from(memory_accesses);
    }

    /// Folds another shard's statistics into this one. Merging is
    /// order-independent: all fields are sums.
    pub fn merge(&mut self, other: &SearchStats) {
        self.searches += other.searches;
        self.hits += other.hits;
        self.memory_accesses += other.memory_accesses;
    }

    /// Hit rate over the counted searches.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / self.searches as f64
            }
        }
    }

    /// Measured mean memory accesses per lookup (the live AMAL).
    #[must_use]
    pub fn measured_amal(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.memory_accesses as f64 / self.searches as f64
            }
        }
    }
}

/// Thread-safe search counters: the shared instrumentation cell behind
/// every [`crate::engine::SearchEngine`] and the subsystem's per-database
/// activity counters.
///
/// Recording is a relaxed atomic add (cheap enough for the hot path);
/// [`AtomicSearchStats::snapshot`] materialises a plain [`SearchStats`] for
/// reporting. Serial and parallel search paths use the same cell — a
/// parallel shard accumulates a local [`SearchStats`] and folds it in once
/// via [`AtomicSearchStats::merge`], so the totals are exactly what the
/// serial path would have recorded.
///
/// Counter reads are independent relaxed loads: a snapshot taken *while*
/// writers are recording may mix counts from different moments (each total
/// is still exact once writers finish).
#[derive(Debug, Default)]
pub struct AtomicSearchStats {
    searches: core::sync::atomic::AtomicU64,
    hits: core::sync::atomic::AtomicU64,
    memory_accesses: core::sync::atomic::AtomicU64,
}

impl AtomicSearchStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one search outcome.
    pub fn record(&self, hit: bool, memory_accesses: u32) {
        use core::sync::atomic::Ordering::Relaxed;
        self.searches.fetch_add(1, Relaxed);
        self.hits.fetch_add(u64::from(hit), Relaxed);
        self.memory_accesses
            .fetch_add(u64::from(memory_accesses), Relaxed);
    }

    /// Folds a shard's locally accumulated statistics into the cell.
    pub fn merge(&self, shard: &SearchStats) {
        use core::sync::atomic::Ordering::Relaxed;
        self.searches.fetch_add(shard.searches, Relaxed);
        self.hits.fetch_add(shard.hits, Relaxed);
        self.memory_accesses
            .fetch_add(shard.memory_accesses, Relaxed);
    }

    /// A plain-value copy of the current counters.
    #[must_use]
    pub fn snapshot(&self) -> SearchStats {
        use core::sync::atomic::Ordering::Relaxed;
        SearchStats {
            searches: self.searches.load(Relaxed),
            hits: self.hits.load(Relaxed),
            memory_accesses: self.memory_accesses.load(Relaxed),
        }
    }

    /// Zeroes the counters (e.g. per measurement epoch).
    pub fn reset(&self) {
        use core::sync::atomic::Ordering::Relaxed;
        self.searches.store(0, Relaxed);
        self.hits.store(0, Relaxed);
        self.memory_accesses.store(0, Relaxed);
    }
}

impl Clone for AtomicSearchStats {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        let out = Self::new();
        out.merge(&s);
        out
    }
}

impl From<SearchStats> for AtomicSearchStats {
    fn from(s: SearchStats) -> Self {
        let out = Self::new();
        out.merge(&s);
        out
    }
}

/// A snapshot report of a built table, in the shape of a Table 2 / Table 3
/// row.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Logical buckets (`M`).
    pub buckets: u64,
    /// Slots per logical bucket (`S`).
    pub slots_per_bucket: u32,
    /// Original records (`N`).
    pub original_records: u64,
    /// Duplicates created for don't-care hash bits.
    pub duplicate_records: u64,
    /// Copies placed outside their home bucket.
    pub spilled_records: u64,
    /// Buckets from which at least one home record spilled.
    pub overflowing_buckets: u64,
    /// `AMALu` over the built placement.
    pub amal_uniform: f64,
    /// `AMALs` over the built placement (equals `amal_uniform` when all
    /// weights were 1).
    pub amal_weighted: f64,
}

impl LoadReport {
    /// Load factor `α = N / (M × S)` over original records, the paper's
    /// convention. 0.0 (never NaN) for a degenerate zero-capacity table.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        let capacity = self.buckets * u64::from(self.slots_per_bucket);
        if capacity == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.original_records as f64 / capacity as f64
        }
    }

    /// Percentage of buckets that overflow (0.0, never NaN, for a
    /// zero-bucket table).
    #[must_use]
    pub fn overflowing_buckets_pct(&self) -> f64 {
        if self.buckets == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            100.0 * self.overflowing_buckets as f64 / self.buckets as f64
        }
    }

    /// Percentage of placed records that spilled.
    #[must_use]
    pub fn spilled_records_pct(&self) -> f64 {
        let placed = self.original_records + self.duplicate_records;
        if placed == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            100.0 * self.spilled_records as f64 / placed as f64
        }
    }
}

/// Histogram of bucket occupancies — the Fig. 7 artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyHistogram {
    counts: Vec<u64>,
}

impl OccupancyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from per-bucket record counts.
    #[must_use]
    pub fn from_counts<I: IntoIterator<Item = u32>>(counts: I) -> Self {
        let mut h = Self::new();
        for c in counts {
            h.record(c);
        }
        h
    }

    /// Adds one bucket with `records` records.
    pub fn record(&mut self, records: u32) {
        let idx = records as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of buckets holding exactly `records` records.
    #[must_use]
    pub fn buckets_with(&self, records: u32) -> u64 {
        self.counts.get(records as usize).copied().unwrap_or(0)
    }

    /// Total buckets recorded.
    #[must_use]
    pub fn total_buckets(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Largest per-bucket record count observed.
    #[must_use]
    pub fn max_records(&self) -> u32 {
        u32::try_from(self.counts.len().saturating_sub(1)).unwrap_or(u32::MAX)
    }

    /// Mean records per bucket.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.total_buckets();
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(records, &buckets)| records as f64 * buckets as f64)
            .sum();
        #[allow(clippy::cast_precision_loss)]
        {
            sum / total as f64
        }
    }

    /// Fraction of buckets holding more than `threshold` records — the
    /// "non-overflowing region" boundary of Fig. 7.
    #[must_use]
    pub fn fraction_above(&self, threshold: u32) -> f64 {
        let total = self.total_buckets();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = self
            .counts
            .iter()
            .enumerate()
            .skip(threshold as usize + 1)
            .map(|(_, &b)| b)
            .sum();
        #[allow(clippy::cast_precision_loss)]
        {
            above as f64 / total as f64
        }
    }

    /// `(records, buckets)` pairs in increasing record order, including
    /// zero-bucket gaps — the Fig. 7 series.
    #[allow(clippy::missing_panics_doc)] // indices bounded by u32 by `record`
    pub fn series(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(r, &b)| (u32::try_from(r).expect("histogram index fits u32"), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_stats_basic() {
        let mut s = PlacementStats::new();
        s.record_insert(&[0], 1.0);
        s.record_insert(&[2], 1.0);
        s.record_insert(&[0, 1], 1.0); // duplicated record
        assert_eq!(s.original_records(), 3);
        assert_eq!(s.duplicate_records(), 1);
        assert_eq!(s.placed_records(), 4);
        assert_eq!(s.spilled_records(), 2);
        // AMALu = mean(1, 3, 1.5) = 11/6.
        assert!((s.amal_uniform() - 11.0 / 6.0).abs() < 1e-12);
        assert!((s.spilled_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_amal_prefers_hot_records() {
        let mut s = PlacementStats::new();
        s.record_insert(&[0], 10.0); // hot record in its home bucket
        s.record_insert(&[3], 1.0); // cold spilled record
        assert!((s.amal_uniform() - 2.5).abs() < 1e-12);
        // AMALs = (1*10 + 4*1) / 11.
        assert!((s.amal_weighted() - 14.0 / 11.0).abs() < 1e-12);
        assert!(s.amal_weighted() < s.amal_uniform());
    }

    #[test]
    fn search_stats_merge_is_a_sum() {
        let mut a = SearchStats::new();
        a.record(true, 1);
        a.record(false, 3);
        let mut b = SearchStats::new();
        b.record(true, 2);
        let mut whole = SearchStats::new();
        for (hit, cost) in [(true, 1), (false, 3), (true, 2)] {
            whole.record(hit, cost);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert!((a.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.measured_amal() - 2.0).abs() < 1e-12);
        assert_eq!(SearchStats::new().measured_amal(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PlacementStats::new();
        assert_eq!(s.amal_uniform(), 0.0);
        assert_eq!(s.amal_weighted(), 0.0);
        assert_eq!(s.spilled_fraction(), 0.0);
    }

    /// Pins the zero-division edge of every ratio in the stats family:
    /// empty inputs must yield exactly 0.0, never NaN (a NaN here poisons
    /// downstream JSON exports and report arithmetic silently).
    #[test]
    fn empty_ratios_are_zero_not_nan() {
        let s = SearchStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.measured_amal(), 0.0);
        let atomic = AtomicSearchStats::new();
        assert_eq!(atomic.snapshot().hit_rate(), 0.0);
        assert_eq!(atomic.snapshot().measured_amal(), 0.0);
        let degenerate = LoadReport {
            buckets: 0,
            slots_per_bucket: 0,
            original_records: 0,
            duplicate_records: 0,
            spilled_records: 0,
            overflowing_buckets: 0,
            amal_uniform: 0.0,
            amal_weighted: 0.0,
        };
        assert_eq!(degenerate.load_factor(), 0.0);
        assert_eq!(degenerate.overflowing_buckets_pct(), 0.0);
        assert_eq!(degenerate.spilled_records_pct(), 0.0);
        assert!(degenerate.load_factor().is_finite());
        // Buckets without slots is still zero capacity.
        let no_slots = LoadReport {
            buckets: 8,
            ..degenerate
        };
        assert_eq!(no_slots.load_factor(), 0.0);
    }

    #[test]
    fn load_report_percentages() {
        let r = LoadReport {
            buckets: 2048,
            slots_per_bucket: 192,
            original_records: 186_760,
            duplicate_records: 12_035,
            spilled_records: 31_450,
            overflowing_buckets: 250,
            amal_uniform: 1.476,
            amal_weighted: 1.425,
        };
        assert!((r.load_factor() - 186_760.0 / (2048.0 * 192.0)).abs() < 1e-12);
        assert!((r.overflowing_buckets_pct() - 100.0 * 250.0 / 2048.0).abs() < 1e-9);
        assert!((r.spilled_records_pct() - 100.0 * 31_450.0 / 198_795.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_series_and_moments() {
        let h = OccupancyHistogram::from_counts([3, 3, 5, 0, 1]);
        assert_eq!(h.total_buckets(), 5);
        assert_eq!(h.buckets_with(3), 2);
        assert_eq!(h.buckets_with(99), 0);
        assert_eq!(h.max_records(), 5);
        assert!((h.mean() - 12.0 / 5.0).abs() < 1e-12);
        let series: Vec<(u32, u64)> = h.series().collect();
        assert_eq!(series, vec![(0, 1), (1, 1), (2, 0), (3, 2), (4, 0), (5, 1)]);
    }

    #[test]
    fn histogram_fraction_above_threshold() {
        let h = OccupancyHistogram::from_counts([90, 95, 96, 97, 100]);
        // Buckets with more than 96 records: 97 and 100 -> 2/5.
        assert!((h.fraction_above(96) - 0.4).abs() < 1e-12);
        assert_eq!(h.fraction_above(1000), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = OccupancyHistogram::new();
        assert_eq!(h.total_buckets(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_above(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn empty_insert_rejected() {
        let mut s = PlacementStats::new();
        s.record_insert(&[], 1.0);
    }
}
