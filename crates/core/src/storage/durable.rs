//! [`DurableTable`]: a [`CaRamTable`] that survives crashes.
//!
//! The wrapper pairs the in-memory table with three pieces of durable
//! state in one directory:
//!
//! * `table.sb` — the creation-time [`TableSpec`], checksummed, written
//!   once (the superblock);
//! * `wal-<n>.log` — the write-ahead log ([`super::wal`]): every applied
//!   mutation, logged after it succeeds in memory and before it is
//!   acknowledged to the caller (log-after-apply, ack-after-commit);
//! * `snap-<n>.img` — checkpoints ([`super::snapshot`]) that bound replay
//!   time and let old segments be deleted.
//!
//! Alongside the table it keeps a *mirror* — the logical record set in
//! insertion order ([`ReferenceModel`]). The mirror is what snapshots
//! serialize: reinserting logical records through the table's own
//! placement code rebuilds occupancy and auxiliary state, and sidesteps
//! the multi-home duplication a physical bucket dump would square (a
//! ternary record duplicated into `k` buckets would reinsert as `k`
//! records into `k` buckets each).
//!
//! ## Recovery equivalence
//!
//! A restored table is *observably* equivalent, not bit-identical: if any
//! `insert_sorted` or delete made physical placement priority-significant,
//! the table is reopened in full-scan mode, where every search examines
//! the whole reach and picks the maximum-care match — exactly the set of
//! answers [`crate::oracle::Expected::admits`] accepts. A table that only
//! ever saw plain inserts replays to bit-identical placement and keeps its
//! first-match fast path. The crash-injection sweep
//! ([`super::crash::crash_sweep`]) enforces this equivalence at every
//! possible crash point.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use super::snapshot::{self, Snapshot};
use super::wal::{self, SyncPolicy, WalRecord, WalWriter};
use super::{corrupt, crc32, dur_err, io_err, put_u32, TableSpec, FORMAT_VERSION};
use crate::engine::{EngineOutcome, EngineReport, SearchEngine};
use crate::error::{CaRamError, DurabilityErrorKind, Result};
use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;
use crate::oracle::ReferenceModel;
use crate::table::CaRamTable;

const SUPERBLOCK_FILE: &str = "table.sb";
const SUPERBLOCK_MAGIC: &[u8; 8] = b"CARAMTAB";
/// Subdirectory holding file-backed slice arrays when
/// [`DurableOptions::file_arrays`] is set.
const ARRAYS_DIR: &str = "arrays";

/// Tuning knobs for a [`DurableTable`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// When commits reach the device (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// WAL segment size that triggers rotation, in bytes.
    pub segment_limit: u64,
    /// Auto-checkpoint after this many logged records (`None` = only
    /// explicit [`DurableTable::checkpoint`] calls).
    pub checkpoint_every: Option<u64>,
    /// Commit after every mutation. Turn off to batch: the service write
    /// path appends a whole batch and commits once (group commit).
    pub auto_commit: bool,
    /// Keep the slice arrays in mmap'd files under `<dir>/arrays` instead
    /// of the heap (needs the `storage` cargo feature). The WAL remains
    /// the durable source of truth — the arrays are for paging tables
    /// larger than RAM, and are rebuilt on recovery.
    pub file_arrays: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::Flush,
            segment_limit: 4 << 20,
            checkpoint_every: None,
            auto_commit: true,
            file_arrays: false,
        }
    }
}

/// What recovery found when the table was opened.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryInfo {
    /// Records restored from the latest snapshot.
    pub snapshot_records: usize,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: usize,
    /// Whether the final segment ended in a torn record (expected after a
    /// mid-write crash; the torn tail was truncated away).
    pub torn_tail: bool,
}

fn encode_superblock(spec: &TableSpec) -> Vec<u8> {
    let body = spec.encode();
    let mut out = Vec::with_capacity(16 + body.len());
    out.extend_from_slice(SUPERBLOCK_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

fn read_superblock(dir: &Path) -> Result<TableSpec> {
    let path = dir.join(SUPERBLOCK_FILE);
    let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, &e))?;
    let name = path.display();
    if bytes.len() < 16 || &bytes[..8] != SUPERBLOCK_MAGIC {
        return Err(corrupt(format!("{name}: bad table superblock magic")));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(dur_err(
            DurabilityErrorKind::FormatVersion,
            format!("{name}: superblock version {version}, this build reads {FORMAT_VERSION}"),
        ));
    }
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if crc32(&bytes[16..]) != stored_crc {
        return Err(corrupt(format!("{name}: superblock checksum mismatch")));
    }
    TableSpec::decode(&bytes[16..])
}

fn replay_failed(e: &CaRamError, what: &str) -> CaRamError {
    dur_err(
        DurabilityErrorKind::ReplayFailed,
        format!("replaying {what}: {e}"),
    )
}

/// A crash-safe CA-RAM table (see the module docs for the protocol).
#[derive(Debug)]
pub struct DurableTable {
    dir: PathBuf,
    opts: DurableOptions,
    spec: TableSpec,
    table: CaRamTable,
    mirror: ReferenceModel,
    wal: WalWriter,
    /// Records logged over the table's lifetime (snapshot + tail).
    ops_logged: u64,
    ops_since_checkpoint: u64,
    /// Group commits that actually wrote frames.
    commits: u64,
    /// Whether any `insert_sorted` was logged since the last reconfigure.
    sorted_seen: bool,
    recovery: RecoveryInfo,
    /// First durability error seen on a path that could not surface it;
    /// every later fallible operation returns it. A poisoned table's
    /// durable state is uncertain — reopen to recover.
    poisoned: Option<CaRamError>,
}

impl DurableTable {
    /// Creates a fresh durable table in `dir` (created if missing). Fails
    /// if the directory already holds a table.
    ///
    /// # Errors
    ///
    /// [`CaRamError::BadConfig`] for an inconsistent spec, or any
    /// [`CaRamError::Durability`] error from the file system.
    pub fn create(dir: &Path, spec: &TableSpec, opts: DurableOptions) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, &e))?;
        let sb_path = dir.join(SUPERBLOCK_FILE);
        if sb_path.exists() {
            return Err(dur_err(
                DurabilityErrorKind::Io,
                format!("{} already holds a table", dir.display()),
            ));
        }
        let table = Self::build_table(dir, spec, &opts)?;
        // Write the superblock atomically and durably before the first
        // WAL segment exists, so every later open sees a complete root.
        let tmp = dir.join(format!("{SUPERBLOCK_FILE}.tmp"));
        std::fs::write(&tmp, encode_superblock(spec)).map_err(|e| io_err("write", &tmp, &e))?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("sync", &tmp, &e))?;
        std::fs::rename(&tmp, &sb_path).map_err(|e| io_err("rename superblock into", dir, &e))?;
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        let wal = WalWriter::create(dir, 0, opts.segment_limit, opts.sync)?;
        let mirror = ReferenceModel::new(spec.config.layout.key_bits());
        Ok(Self {
            dir: dir.to_path_buf(),
            opts,
            spec: spec.clone(),
            table,
            mirror,
            wal,
            ops_logged: 0,
            ops_since_checkpoint: 0,
            commits: 0,
            sorted_seen: false,
            recovery: RecoveryInfo::default(),
            poisoned: None,
        })
    }

    /// Opens an existing durable table, running crash recovery: load the
    /// latest snapshot, replay the WAL tail (truncating a torn final
    /// record), and start a fresh segment.
    ///
    /// # Errors
    ///
    /// [`CaRamError::Durability`] with kind `Io` (missing/unreadable
    /// files), `Corrupt` (damage outside the final tail),
    /// `FormatVersion`, `GeometryMismatch`, or `ReplayFailed` (the log
    /// disagrees with the geometry). Never panics on damaged input.
    #[allow(clippy::too_many_lines)]
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<Self> {
        let creation_spec = read_superblock(dir)?;

        // Latest snapshot, if any. The checkpoint protocol deletes old
        // segments only after the new snapshot is durable, so the newest
        // snapshot must be valid — a damaged one is bit-rot, not a crash.
        let snaps = snapshot::list_snapshots(dir)?;
        let snap = match snaps.last() {
            Some((_, path)) => Some(Snapshot::read(path)?),
            None => None,
        };
        let (spec, base_segment) = match &snap {
            Some(s) => (s.spec.clone(), s.next_segment),
            None => (creation_spec, 0),
        };

        let mut table = Self::build_table(dir, &spec, &opts)?;
        let mut mirror = ReferenceModel::new(spec.config.layout.key_bits());
        let mut sorted_seen = false;
        let mut recovery = RecoveryInfo::default();

        if let Some(s) = &snap {
            for rec in &s.records {
                table
                    .insert(*rec)
                    .map_err(|e| replay_failed(&e, "a snapshot record"))?;
                mirror.insert(*rec);
            }
            if s.full_scan || s.sorted_seen {
                // Physical placement was priority-significant before the
                // crash; only a full-reach max-care scan is equivalent.
                table.force_full_scan();
            }
            sorted_seen = s.sorted_seen;
            recovery.snapshot_records = s.records.len();
        }

        // Replay the WAL tail: segments at or past the snapshot horizon,
        // contiguous, in order. Only the final one may be torn.
        let segments: Vec<(u64, PathBuf)> = wal::list_segments(dir)?
            .into_iter()
            .filter(|(idx, _)| *idx >= base_segment)
            .collect();
        for pair in segments.windows(2) {
            if pair[1].0 != pair[0].0 + 1 {
                return Err(corrupt(format!(
                    "{}: wal segment {} is followed by {} — a segment is missing",
                    dir.display(),
                    pair[0].0,
                    pair[1].0
                )));
            }
        }
        let mut spec = spec;
        for (i, (idx, path)) in segments.iter().enumerate() {
            let is_final = i == segments.len() - 1;
            let read = wal::read_segment(path, *idx, is_final)?;
            if read.torn {
                // Truncate the torn tail so every retained byte is valid;
                // the writer below starts a fresh segment regardless.
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .and_then(|f| f.set_len(read.valid_len))
                    .map_err(|e| io_err("truncate torn tail of", path, &e))?;
                recovery.torn_tail = true;
            }
            for rec in read.records {
                match rec {
                    WalRecord::Insert(r) => {
                        table
                            .insert(r)
                            .map_err(|e| replay_failed(&e, "an insert"))?;
                        mirror.insert(r);
                    }
                    WalRecord::InsertSorted(r) => {
                        table
                            .insert_sorted(r)
                            .map_err(|e| replay_failed(&e, "a sorted insert"))?;
                        mirror.insert(r);
                        sorted_seen = true;
                    }
                    WalRecord::Delete(key) => {
                        table.delete(&key);
                        mirror.delete(&key);
                    }
                    WalRecord::Update { key, data } => {
                        let n = table.delete(&key);
                        mirror.delete(&key);
                        if n > 0 {
                            let r = Record::new(key, data);
                            table
                                .insert(r)
                                .map_err(|e| replay_failed(&e, "an update"))?;
                            mirror.insert(r);
                        }
                    }
                    WalRecord::Reconfigure(new_spec) => {
                        table = Self::build_table(dir, &new_spec, &opts)?;
                        mirror = ReferenceModel::new(new_spec.config.layout.key_bits());
                        sorted_seen = false;
                        spec = new_spec;
                    }
                }
                recovery.replayed_records += 1;
            }
        }

        let next_writer = segments.last().map_or(base_segment, |(idx, _)| idx + 1);
        let wal = WalWriter::create(dir, next_writer, opts.segment_limit, opts.sync)?;
        let ops_logged =
            snap.as_ref().map_or(0, |s| s.ops_logged) + recovery.replayed_records as u64;
        Ok(Self {
            dir: dir.to_path_buf(),
            opts,
            spec,
            table,
            mirror,
            wal,
            ops_logged,
            ops_since_checkpoint: recovery.replayed_records as u64,
            commits: 0,
            sorted_seen,
            recovery,
            poisoned: None,
        })
    }

    /// Opens the table in `dir` if one exists, creating it otherwise.
    ///
    /// # Errors
    ///
    /// As for [`Self::create`] and [`Self::open`].
    pub fn open_or_create(dir: &Path, spec: &TableSpec, opts: DurableOptions) -> Result<Self> {
        if dir.join(SUPERBLOCK_FILE).exists() {
            Self::open(dir, opts)
        } else {
            Self::create(dir, spec, opts)
        }
    }

    fn build_table(dir: &Path, spec: &TableSpec, opts: &DurableOptions) -> Result<CaRamTable> {
        if opts.file_arrays {
            // The arrays are a cache of the replayed state, not a source
            // of truth: rebuild them fresh so geometry changes (e.g. a
            // reconfigure) never collide with stale files.
            let arrays = dir.join(ARRAYS_DIR);
            if arrays.exists() {
                std::fs::remove_dir_all(&arrays)
                    .map_err(|e| io_err("clear arrays dir", &arrays, &e))?;
            }
            std::fs::create_dir_all(&arrays).map_err(|e| io_err("create dir", &arrays, &e))?;
            CaRamTable::with_storage_dir(spec.config.clone(), spec.index.build()?, &arrays)
        } else {
            spec.build()
        }
    }

    fn bail_if_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Appends to the WAL and, under auto-commit, commits.
    fn log(&mut self, rec: &WalRecord) -> Result<()> {
        self.wal.append(rec);
        self.ops_logged += 1;
        self.ops_since_checkpoint += 1;
        if self.opts.auto_commit {
            self.commit()
        } else {
            Ok(())
        }
    }

    /// Inserts a record, logging it on success.
    ///
    /// # Errors
    ///
    /// Any [`CaRamTable::insert`] error (nothing is logged for a refused
    /// insert), or a durability error from the commit.
    pub fn insert(&mut self, record: Record) -> Result<()> {
        self.bail_if_poisoned()?;
        CaRamTable::insert(&mut self.table, record).map(|_| ())?;
        self.mirror.insert(record);
        self.log(&WalRecord::Insert(record))
    }

    /// Inserts in sorted (priority) position, logging on success.
    ///
    /// # Errors
    ///
    /// As for [`Self::insert`].
    pub fn insert_sorted(&mut self, record: Record) -> Result<()> {
        self.bail_if_poisoned()?;
        CaRamTable::insert_sorted(&mut self.table, record).map(|_| ())?;
        self.mirror.insert(record);
        self.sorted_seen = true;
        self.log(&WalRecord::InsertSorted(record))
    }

    /// Deletes every record matching `key`, returning the count.
    ///
    /// # Errors
    ///
    /// A durability error from the commit (the in-memory delete has
    /// already happened; the table is poisoned in that case).
    pub fn delete(&mut self, key: &TernaryKey) -> Result<u32> {
        self.bail_if_poisoned()?;
        let n = CaRamTable::delete(&mut self.table, key);
        self.mirror.delete(key);
        self.log(&WalRecord::Delete(*key))?;
        Ok(n)
    }

    /// Deletes `key` and, when something was deleted, reinserts it with
    /// `data` (the oracle's update semantics). Returns the delete count.
    ///
    /// # Errors
    ///
    /// A reinsert or commit failure.
    pub fn update(&mut self, key: &TernaryKey, data: u64) -> Result<u32> {
        self.bail_if_poisoned()?;
        let n = CaRamTable::delete(&mut self.table, key);
        self.mirror.delete(key);
        if n > 0 {
            let r = Record::new(*key, data);
            if let Err(e) = CaRamTable::insert(&mut self.table, r) {
                // The delete half did happen; log exactly that so replay
                // reproduces the in-memory state, then surface the error.
                self.log(&WalRecord::Delete(*key))?;
                return Err(e);
            }
            self.mirror.insert(r);
        }
        self.log(&WalRecord::Update { key: *key, data })?;
        Ok(n)
    }

    /// Rebuilds the table empty under a new spec, logging the transition
    /// self-contained in the WAL.
    ///
    /// # Errors
    ///
    /// [`CaRamError::BadConfig`] for an inconsistent spec, or a
    /// durability error from the rebuild or commit.
    pub fn reconfigure(&mut self, spec: &TableSpec) -> Result<()> {
        self.bail_if_poisoned()?;
        let table = Self::build_table(&self.dir, spec, &self.opts)?;
        self.table = table;
        self.mirror = ReferenceModel::new(spec.config.layout.key_bits());
        self.sorted_seen = false;
        self.spec = spec.clone();
        self.log(&WalRecord::Reconfigure(spec.clone()))
    }

    /// Flushes the group-commit buffer (one write, one optional fsync for
    /// the whole batch) and runs a due auto-checkpoint.
    ///
    /// # Errors
    ///
    /// [`CaRamError::Durability`] on write/sync failure; the table is
    /// poisoned afterwards (durable state uncertain — reopen to recover).
    pub fn commit(&mut self) -> Result<()> {
        self.bail_if_poisoned()?;
        if self.wal.pending() > 0 {
            self.commits += 1;
        }
        if let Err(e) = self.wal.commit() {
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        if let Some(every) = self.opts.checkpoint_every {
            if self.ops_since_checkpoint >= every {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Takes a checkpoint: seal the WAL tail, write a snapshot of the
    /// logical record set atomically, and delete the segments and
    /// snapshots it supersedes.
    ///
    /// # Errors
    ///
    /// [`CaRamError::Durability`] on any step; the table is poisoned on
    /// commit/rotate failure.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.bail_if_poisoned()?;
        if let Err(e) = self.wal.commit().and_then(|()| self.wal.rotate()) {
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        let next_segment = self.wal.segment_index();
        let snap = Snapshot {
            next_segment,
            ops_logged: self.ops_logged,
            full_scan: self.table.full_scan(),
            sorted_seen: self.sorted_seen,
            spec: self.spec.clone(),
            records: self.mirror.records().to_vec(),
        };
        snap.write(&self.dir)?;
        self.ops_since_checkpoint = 0;
        // Everything below the horizon is superseded; removal is garbage
        // collection, not correctness, so errors are ignored.
        for (idx, path) in wal::list_segments(&self.dir)? {
            if idx < next_segment {
                let _ = std::fs::remove_file(path);
            }
        }
        for (idx, path) in snapshot::list_snapshots(&self.dir)? {
            if idx < next_segment {
                let _ = std::fs::remove_file(path);
            }
        }
        if self.opts.file_arrays {
            self.table.flush_storage()?;
        }
        Ok(())
    }

    /// The wrapped table, read-only (searches go through here).
    #[must_use]
    pub fn table(&self) -> &CaRamTable {
        &self.table
    }

    /// The logical record set in insertion order (what a snapshot saves).
    #[must_use]
    pub fn records(&self) -> &[Record] {
        self.mirror.records()
    }

    /// The spec currently in force (tracks reconfigures).
    #[must_use]
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The table's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records logged over the table's lifetime.
    #[must_use]
    pub fn ops_logged(&self) -> u64 {
        self.ops_logged
    }

    /// Group commits that wrote at least one frame.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// What recovery found when this handle was opened.
    #[must_use]
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Index of the WAL segment currently written.
    #[must_use]
    pub fn wal_segment(&self) -> u64 {
        self.wal.segment_index()
    }

    /// Committed bytes in the current WAL segment (header included).
    #[must_use]
    pub fn wal_committed_bytes(&self) -> u64 {
        self.wal.committed_bytes()
    }
}

impl SearchEngine for DurableTable {
    fn name(&self) -> &'static str {
        "ca-ram/durable"
    }

    fn key_bits(&self) -> u32 {
        self.spec.config.layout.key_bits()
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        SearchEngine::search(&self.table, key)
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        DurableTable::insert(self, record)
    }

    fn insert_sorted(&mut self, record: Record) -> Result<()> {
        DurableTable::insert_sorted(self, record)
    }

    // The trait cannot surface a commit failure here; the table is
    // poisoned instead and the error returns from the next fallible call.
    fn delete(&mut self, key: &TernaryKey) -> u32 {
        DurableTable::delete(self, key).unwrap_or(0)
    }

    fn occupancy(&self) -> EngineReport {
        SearchEngine::occupancy(&self.table)
    }

    fn search_batch(&self, keys: &[SearchKey]) -> Vec<EngineOutcome> {
        SearchEngine::search_batch(&self.table, keys)
    }

    fn search_batch_into(&self, keys: &[SearchKey], out: &mut Vec<EngineOutcome>) {
        SearchEngine::search_batch_into(&self.table, keys, out);
    }

    fn commit(&mut self) -> Result<()> {
        DurableTable::commit(self)
    }
}

/// A [`DurableTable`] in a unique temporary directory, removed on drop.
/// The workhorse of tests, fuzz cells, and benches.
#[derive(Debug)]
pub struct TempDurableTable {
    table: Option<DurableTable>,
    dir: PathBuf,
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh directory under the system temp dir, unique to this process
/// and call.
#[must_use]
pub fn unique_temp_dir(tag: &str) -> PathBuf {
    let n = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ca_ram_durable_{tag}_{}_{n}", std::process::id()))
}

impl TempDurableTable {
    /// Creates a fresh durable table in a unique temp directory.
    ///
    /// # Errors
    ///
    /// As for [`DurableTable::create`].
    pub fn create(tag: &str, spec: &TableSpec, opts: DurableOptions) -> Result<Self> {
        let dir = unique_temp_dir(tag);
        let table = DurableTable::create(&dir, spec, opts)?;
        Ok(Self {
            table: Some(table),
            dir,
        })
    }

    /// Drops the open handle (as a clean shutdown would) and reopens the
    /// same directory through crash recovery.
    ///
    /// # Errors
    ///
    /// As for [`DurableTable::open`].
    pub fn reopen(&mut self) -> Result<()> {
        let opts = self
            .table
            .as_ref()
            .map_or_else(DurableOptions::default, |t| t.opts.clone());
        self.table = None;
        self.table = Some(DurableTable::open(&self.dir, opts)?);
        Ok(())
    }

    /// The open table.
    ///
    /// # Panics
    ///
    /// Panics if a previous [`Self::reopen`] failed.
    #[must_use]
    pub fn get(&self) -> &DurableTable {
        self.table.as_ref().expect("durable table handle lost")
    }

    /// The open table, mutable.
    ///
    /// # Panics
    ///
    /// Panics if a previous [`Self::reopen`] failed.
    pub fn get_mut(&mut self) -> &mut DurableTable {
        self.table.as_mut().expect("durable table handle lost")
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for TempDurableTable {
    fn drop(&mut self) {
        self.table = None;
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexGenerator;
    use crate::layout::RecordLayout;
    use crate::probe::ProbePolicy;
    use crate::storage::IndexSpec;
    use crate::table::{Arrangement, OverflowPolicy, TableConfig};

    fn spec(key_bits: u32) -> TableSpec {
        TableSpec {
            config: TableConfig {
                rows_log2: 4,
                row_bits: 1024,
                layout: RecordLayout::new(key_bits, true, 32),
                arrangement: Arrangement::Horizontal(1),
                probe: ProbePolicy::Linear,
                overflow: OverflowPolicy::Probe {
                    max_steps: u32::MAX,
                },
            },
            index: IndexSpec::RangeSelect {
                low: key_bits - 4,
                count: 4,
            },
        }
    }

    fn rec(v: u128, data: u64) -> Record {
        Record::new(TernaryKey::binary(v, 32), data)
    }

    #[test]
    fn create_mutate_reopen_recovers() {
        let mut t = TempDurableTable::create("basic", &spec(32), DurableOptions::default())
            .expect("create");
        for i in 0..40u64 {
            t.get_mut()
                .insert(rec(u128::from(i) << 3, i))
                .expect("insert");
        }
        assert_eq!(
            t.get_mut()
                .delete(&TernaryKey::binary(8, 32))
                .expect("delete"),
            1
        );
        assert_eq!(
            t.get_mut()
                .update(&TernaryKey::binary(16, 32), 999)
                .expect("update"),
            1
        );
        let before: Vec<Record> = t.get().records().to_vec();
        t.reopen().expect("recover");
        assert_eq!(t.get().records(), &before[..]);
        assert_eq!(t.get().recovery().replayed_records, 42);
        assert!(!t.get().recovery().torn_tail);
        let hit = SearchEngine::search(t.get(), &SearchKey::new(16, 32));
        assert_eq!(hit.hit.map(|h| h.data), Some(999));
        assert_eq!(
            SearchEngine::search(t.get(), &SearchKey::new(8, 32)).hit,
            None
        );
    }

    #[test]
    fn checkpoint_bounds_replay_and_gcs_segments() {
        let mut t =
            TempDurableTable::create("ckpt", &spec(32), DurableOptions::default()).expect("create");
        for i in 0..20u64 {
            t.get_mut().insert(rec(u128::from(i), i)).expect("insert");
        }
        t.get_mut().checkpoint().expect("checkpoint");
        for i in 20..30u64 {
            t.get_mut().insert(rec(u128::from(i), i)).expect("insert");
        }
        let before: Vec<Record> = t.get().records().to_vec();
        t.reopen().expect("recover");
        assert_eq!(t.get().records(), &before[..]);
        let info = t.get().recovery();
        assert_eq!(info.snapshot_records, 20);
        assert_eq!(info.replayed_records, 10);
        // The pre-checkpoint segment was garbage collected.
        let segs = wal::list_segments(t.dir()).expect("list");
        assert!(
            segs.iter().all(|(idx, _)| *idx >= 1),
            "stale segment kept: {segs:?}"
        );
    }

    #[test]
    fn sorted_inserts_force_full_scan_on_recovery() {
        let mut t = TempDurableTable::create("sorted", &spec(32), DurableOptions::default())
            .expect("create");
        // Two prefixes of different length matching the same key: LPM must
        // still pick the longer one after recovery.
        let long = Record::new(TernaryKey::ternary(0xAB00, 0x00FF, 32), 1);
        let short = Record::new(TernaryKey::ternary(0xA000, 0x0FFF, 32), 2);
        t.get_mut().insert_sorted(short).expect("insert short");
        t.get_mut().insert_sorted(long).expect("insert long");
        // WAL-only recovery replays the sorted inserts operation for
        // operation, reproducing the priority placement exactly — the
        // first-match fast path survives.
        t.reopen().expect("recover");
        assert!(!t.get().table().full_scan());
        let hit = SearchEngine::search(t.get(), &SearchKey::new(0xAB12, 32));
        assert_eq!(hit.hit.map(|h| h.data), Some(1));
        // A snapshot stores logical records only, so a checkpoint forgets
        // the sorted placement: recovery must fall back to full-scan
        // max-care search to stay observably equivalent.
        t.get_mut().checkpoint().expect("checkpoint");
        t.reopen().expect("recover");
        assert!(t.get().table().full_scan());
        let hit = SearchEngine::search(t.get(), &SearchKey::new(0xAB12, 32));
        assert_eq!(hit.hit.map(|h| h.data), Some(1));
    }

    #[test]
    fn reconfigure_is_replayed_self_contained() {
        let mut t = TempDurableTable::create("reconf", &spec(32), DurableOptions::default())
            .expect("create");
        t.get_mut().insert(rec(1, 1)).expect("insert");
        let wide = spec(64);
        t.get_mut().reconfigure(&wide).expect("reconfigure");
        t.get_mut()
            .insert(Record::new(TernaryKey::binary(0xFEED, 64), 5))
            .expect("insert wide");
        t.reopen().expect("recover");
        assert_eq!(SearchEngine::key_bits(t.get()), 64);
        assert_eq!(t.get().spec().encode(), wide.encode());
        let hit = SearchEngine::search(t.get(), &SearchKey::new(0xFEED, 64));
        assert_eq!(hit.hit.map(|h| h.data), Some(5));
        assert_eq!(t.get().records().len(), 1);
    }

    #[test]
    fn group_commit_batches_frames() {
        let mut opts = DurableOptions::default();
        opts.auto_commit = false;
        let mut t = TempDurableTable::create("group", &spec(32), opts).expect("create");
        for i in 0..10u64 {
            t.get_mut().insert(rec(u128::from(i), i)).expect("insert");
        }
        assert_eq!(t.get().commits(), 0);
        SearchEngine::commit(t.get_mut()).expect("commit");
        assert_eq!(t.get().commits(), 1);
        let before: Vec<Record> = t.get().records().to_vec();
        t.reopen().expect("recover");
        assert_eq!(t.get().records(), &before[..]);
    }

    #[test]
    fn uncommitted_tail_is_lost_without_commit() {
        let mut opts = DurableOptions::default();
        opts.auto_commit = false;
        let mut t = TempDurableTable::create("uncommitted", &spec(32), opts).expect("create");
        t.get_mut().insert(rec(1, 1)).expect("insert");
        t.get_mut().commit().expect("commit");
        t.get_mut().insert(rec(2, 2)).expect("insert 2");
        // No commit: the second insert is buffered only. Recovery sees
        // exactly the committed prefix.
        t.reopen().expect("recover");
        assert_eq!(t.get().records(), &[rec(1, 1)]);
    }

    #[test]
    fn segment_rotation_survives_recovery() {
        let mut opts = DurableOptions::default();
        opts.segment_limit = 64; // rotate constantly
        let mut t = TempDurableTable::create("rotate", &spec(32), opts).expect("create");
        for i in 0..25u64 {
            t.get_mut().insert(rec(u128::from(i), i)).expect("insert");
        }
        assert!(t.get().wal_segment() > 1);
        let before: Vec<Record> = t.get().records().to_vec();
        t.reopen().expect("recover");
        assert_eq!(t.get().records(), &before[..]);
    }

    #[test]
    fn spec_index_build_matches_table() {
        // The spec's generator must place keys exactly like the live one.
        let s = spec(32);
        let g = s.index.build().expect("build");
        assert_eq!(g.index_bits(), 4);
        assert_eq!(g.index(0xF000_0000), 0xF);
    }

    #[cfg(feature = "storage")]
    #[test]
    fn file_arrays_rebuild_on_recovery() {
        let mut opts = DurableOptions::default();
        opts.file_arrays = true;
        let mut t = TempDurableTable::create("filearr", &spec(32), opts).expect("create");
        for i in 0..10u64 {
            t.get_mut()
                .insert(rec(u128::from(i) << 2, i))
                .expect("insert");
        }
        t.get_mut().checkpoint().expect("checkpoint flushes arrays");
        assert!(t.dir().join(ARRAYS_DIR).join("slice-0.arr").exists());
        let before: Vec<Record> = t.get().records().to_vec();
        t.reopen().expect("recover");
        assert_eq!(t.get().records(), &before[..]);
        let hit = SearchEngine::search(t.get(), &SearchKey::new(8, 32));
        assert_eq!(hit.hit.map(|h| h.data), Some(2));
    }
}
