//! Crash injection for the durability subsystem, verified by the
//! differential oracle.
//!
//! [`crash_sweep`] runs an op stream against a [`DurableTable`] (the
//! *golden* run), recording after each logged operation exactly how many
//! bytes of the write-ahead log its commit produced. It then simulates a
//! crash at every chosen byte offset of the live WAL segment: copy the
//! table directory, truncate the segment at the cut, reopen through crash
//! recovery, and require the recovered table to equal a
//! [`ReferenceModel`] advanced over precisely the operations whose frames
//! survived the cut — both as an exact logical record list and through
//! sampled searches checked with [`crate::oracle::Expected::admits`].
//!
//! A cut landing inside a frame models a torn final write: recovery must
//! keep the valid prefix and drop the tail. A cut at a frame boundary
//! models a clean crash: nothing may be lost. Both are asserted for every
//! cut, making the durability contract ("committed means recoverable")
//! machine-checked at byte granularity.
//!
//! The sweep disables size-based segment rotation so that each logged
//! operation's frames land in one segment and its commit mark is a plain
//! byte offset (rotation itself is covered by the WAL unit tests and the
//! [`DurableTable`] tests); rotation still happens at checkpoints, which
//! the sweep can inject mid-stream to cover snapshot-plus-tail recovery.

use std::path::{Path, PathBuf};

use super::durable::{unique_temp_dir, DurableOptions, DurableTable};
use super::wal::SyncPolicy;
use super::{dur_err, io_err, TableSpec};
use crate::engine::SearchEngine;
use crate::error::{CaRamError, DurabilityErrorKind, Result};
use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;
use crate::oracle::{Op, ReferenceModel};

/// How densely the WAL is cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutGranularity {
    /// Every byte offset of the live segment — exhaustive, for fixtures
    /// and short streams.
    Bytes,
    /// Every record boundary, plus this many evenly spaced cuts strictly
    /// inside each record's frame bytes — the fuzz-cell setting.
    Records {
        /// Intra-record cuts per gap between consecutive boundaries.
        intra_samples: u32,
    },
}

/// Tuning for one [`crash_sweep`] run.
#[derive(Debug, Clone)]
pub struct CrashSweepOptions {
    /// Cut density.
    pub granularity: CutGranularity,
    /// Upper bound on ops taken from the stream.
    pub max_ops: usize,
    /// Inject a checkpoint after this many logged operations, so the
    /// sweep also exercises snapshot-plus-tail recovery.
    pub checkpoint_at: Option<usize>,
    /// Sampled searches per cut (on top of the exact record-list check).
    pub probes_per_cut: usize,
}

impl Default for CrashSweepOptions {
    fn default() -> Self {
        Self {
            granularity: CutGranularity::Records { intra_samples: 1 },
            max_ops: usize::MAX,
            checkpoint_at: None,
            probes_per_cut: 8,
        }
    }
}

/// What a completed sweep covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashSweepReport {
    /// Operations the golden run logged to the WAL.
    pub ops_logged: usize,
    /// Crash points injected (each one recovered and verified).
    pub cuts_tested: usize,
    /// Cuts that landed mid-frame (recovery reported a torn tail).
    pub torn_cuts: usize,
    /// Sampled searches checked across all cuts.
    pub probes_checked: usize,
    /// Bytes in the live WAL segment that was swept.
    pub segment_bytes: u64,
}

/// The model-side effect of one logged WAL record (what replay will do).
#[derive(Debug, Clone)]
enum Effect {
    Insert(Record),
    Delete(TernaryKey),
    Update { key: TernaryKey, data: u64 },
    Reconfigure(u32),
}

impl Effect {
    fn apply(&self, model: &mut ReferenceModel) {
        match self {
            Effect::Insert(r) => model.insert(*r),
            Effect::Delete(k) => {
                model.delete(k);
            }
            Effect::Update { key, data } => {
                if model.delete(key) > 0 {
                    model.insert(Record::new(*key, *data));
                }
            }
            Effect::Reconfigure(bits) => *model = ReferenceModel::new(*bits),
        }
    }
}

/// Removes a directory tree when dropped — sweep dirs never outlive the
/// sweep, pass or fail.
struct DirGuard(PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sweep_err(tag: &str, cut: u64, detail: &str) -> CaRamError {
    dur_err(
        DurabilityErrorKind::ReplayFailed,
        format!("crash sweep {tag}: cut at byte {cut}: {detail}"),
    )
}

fn op_bits(op: &Op) -> Option<u32> {
    match op {
        Op::Insert(r) | Op::InsertSorted(r) => Some(r.key.bits()),
        Op::Delete(k) | Op::Update { key: k, .. } => Some(k.bits()),
        Op::Search(k) => Some(k.bits()),
        Op::Reconfigure { .. } => None,
    }
}

fn is_durability(e: &CaRamError) -> bool {
    matches!(e, CaRamError::Durability { .. })
}

/// Copies the golden directory into `scratch`, truncating the live
/// segment file to `cut` bytes.
fn stage_crash(golden: &Path, scratch: &Path, segment_name: &str, cut: u64) -> Result<()> {
    std::fs::create_dir_all(scratch).map_err(|e| io_err("create dir", scratch, &e))?;
    let entries = std::fs::read_dir(golden).map_err(|e| io_err("read dir", golden, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry in", golden, &e))?;
        let name = entry.file_name();
        let from = entry.path();
        let to = scratch.join(&name);
        if name.to_string_lossy() == segment_name {
            let bytes = std::fs::read(&from).map_err(|e| io_err("read", &from, &e))?;
            let keep = usize::try_from(cut).unwrap_or(usize::MAX).min(bytes.len());
            std::fs::write(&to, &bytes[..keep]).map_err(|e| io_err("write", &to, &e))?;
        } else {
            std::fs::copy(&from, &to).map_err(|e| io_err("copy", &from, &e))?;
        }
    }
    Ok(())
}

/// Verifies one recovered table against the model: exact logical record
/// list, then sampled searches. Returns probes checked.
fn verify_recovered(
    tag: &str,
    cut: u64,
    recovered: &DurableTable,
    model: &ReferenceModel,
    probes: usize,
) -> Result<usize> {
    let got = recovered.records();
    let want = model.records();
    if got != want {
        let at = got
            .iter()
            .zip(want.iter())
            .position(|(g, w)| g != w)
            .unwrap_or(got.len().min(want.len()));
        return Err(sweep_err(
            tag,
            cut,
            &format!(
                "recovered {} records, expected {}; first difference at index {at} \
                 (got {:?}, want {:?})",
                got.len(),
                want.len(),
                got.get(at),
                want.get(at)
            ),
        ));
    }
    let bits = model.key_bits();
    let mut keys: Vec<SearchKey> = Vec::with_capacity(probes);
    if probes > 0 {
        let recs = model.records();
        let step = (recs.len() / probes.max(1)).max(1);
        keys.extend(
            recs.iter()
                .step_by(step)
                .take(probes.saturating_sub(2))
                .map(|r| SearchKey::new(r.key.value(), bits)),
        );
        // Two fixed probes that usually miss, so the empty-answer side of
        // `admits` is exercised too.
        keys.push(SearchKey::new(0, bits));
        let all_ones = if bits == 128 {
            u128::MAX
        } else {
            (1 << bits) - 1
        };
        keys.push(SearchKey::new(all_ones, bits));
    }
    for key in &keys {
        let expected = model.expected(key);
        let hit = SearchEngine::search(recovered, key).hit.map(|h| h.data);
        if !expected.admits(hit) {
            return Err(sweep_err(
                tag,
                cut,
                &format!(
                    "search {key:?} answered {hit:?}, model accepts {:x?} \
                     ({} match(es))",
                    expected.accepted, expected.matches
                ),
            ));
        }
    }
    Ok(keys.len())
}

/// Runs the crash-injection sweep described in the module docs.
///
/// `spec_for` maps a key width to a table spec (`None` skips
/// [`Op::Reconfigure`] ops at unsupported widths, mirroring the
/// differential harness); the golden table is built from
/// `spec_for(key_bits)`. Ops at a width other than the current one are
/// skipped on both sides, also mirroring the harness.
///
/// # Errors
///
/// [`CaRamError::Durability`] with kind `ReplayFailed` naming the first
/// failing cut offset and what diverged; any error from the golden run or
/// a recovery (a recovery *error* at any cut is itself a sweep failure —
/// every crash point must be recoverable).
///
/// # Panics
///
/// Panics if `spec_for` returns `None` for the initial `key_bits`.
#[allow(clippy::too_many_lines)]
pub fn crash_sweep(
    tag: &str,
    spec_for: &dyn Fn(u32) -> Option<TableSpec>,
    key_bits: u32,
    ops: &[Op],
    options: &CrashSweepOptions,
) -> Result<CrashSweepReport> {
    let spec = spec_for(key_bits).expect("initial key width must be supported");
    let golden_dir = unique_temp_dir(&format!("crash_{tag}_golden"));
    let _golden_guard = DirGuard(golden_dir.clone());
    let durable_opts = DurableOptions {
        sync: SyncPolicy::Flush,
        // No size-based rotation: each op's commit mark is a plain byte
        // offset in one segment (see the module docs).
        segment_limit: u64::MAX,
        checkpoint_every: None,
        auto_commit: true,
        file_arrays: false,
    };
    let mut table = DurableTable::create(&golden_dir, &spec, durable_opts.clone())?;

    // Golden run: apply ops, recording the model-side effect and the
    // (segment, committed-bytes) mark of everything that was logged.
    let mut logged: Vec<(Effect, u64, u64)> = Vec::new();
    let mut cur_bits = key_bits;
    let mark = |t: &DurableTable| (t.wal_segment(), t.wal_committed_bytes());
    for op in ops.iter().take(options.max_ops) {
        if op_bits(op).is_some_and(|b| b != cur_bits) {
            continue;
        }
        let effect = match op {
            Op::Insert(r) => match table.insert(*r) {
                Ok(()) => Some(Effect::Insert(*r)),
                Err(e) if is_durability(&e) => return Err(e),
                Err(_) => None, // refused insert: nothing applied or logged
            },
            Op::InsertSorted(r) => match table.insert_sorted(*r) {
                Ok(()) => Some(Effect::Insert(*r)),
                Err(e) if is_durability(&e) => return Err(e),
                Err(_) => None,
            },
            Op::Delete(k) => {
                table.delete(k)?;
                Some(Effect::Delete(*k))
            }
            Op::Update { key, data } => match table.update(key, *data) {
                Ok(_) => Some(Effect::Update {
                    key: *key,
                    data: *data,
                }),
                Err(e) if is_durability(&e) => return Err(e),
                // Reinsert refused: the delete half happened and was logged.
                Err(_) => Some(Effect::Delete(*key)),
            },
            Op::Search(_) => None, // searches are not logged
            Op::Reconfigure { key_bits } => match spec_for(*key_bits) {
                Some(new_spec) => {
                    table.reconfigure(&new_spec)?;
                    cur_bits = *key_bits;
                    Some(Effect::Reconfigure(*key_bits))
                }
                None => None,
            },
        };
        if let Some(effect) = effect {
            let (seg, bytes) = mark(&table);
            logged.push((effect, seg, bytes));
            if options.checkpoint_at == Some(logged.len()) {
                table.checkpoint()?;
            }
        }
    }
    table.commit()?;
    let live_segment = table.wal_segment();
    let segment_len = table.wal_committed_bytes();
    let segment_name = format!("wal-{live_segment:08}.log");
    drop(table);

    // Cut points within the live segment, ascending and deduplicated.
    let mut cuts: Vec<u64> = match options.granularity {
        CutGranularity::Bytes => (0..=segment_len).collect(),
        CutGranularity::Records { intra_samples } => {
            let mut boundaries: Vec<u64> = vec![0, super::wal::SEGMENT_HEADER_BYTES];
            boundaries.extend(
                logged
                    .iter()
                    .filter(|(_, seg, _)| *seg == live_segment)
                    .map(|(_, _, bytes)| *bytes),
            );
            boundaries.push(segment_len);
            boundaries.sort_unstable();
            boundaries.dedup();
            let mut cuts = Vec::new();
            for pair in boundaries.windows(2) {
                cuts.push(pair[0]);
                let gap = pair[1] - pair[0];
                for s in 1..=u64::from(intra_samples) {
                    let inner = pair[0] + gap * s / (u64::from(intra_samples) + 1);
                    if inner > pair[0] && inner < pair[1] {
                        cuts.push(inner);
                    }
                }
            }
            cuts.push(segment_len);
            cuts
        }
    };
    cuts.sort_unstable();
    cuts.dedup();

    // Walk cuts in order, advancing the expected model incrementally.
    let mut model = ReferenceModel::new(key_bits);
    let mut cursor = 0usize;
    let mut report = CrashSweepReport {
        ops_logged: logged.len(),
        segment_bytes: segment_len,
        ..CrashSweepReport::default()
    };
    let scratch = unique_temp_dir(&format!("crash_{tag}_cut"));
    let _scratch_guard = DirGuard(scratch.clone());
    for &cut in &cuts {
        while cursor < logged.len() {
            let (effect, seg, bytes) = &logged[cursor];
            if (*seg, *bytes) <= (live_segment, cut) {
                effect.apply(&mut model);
                cursor += 1;
            } else {
                break;
            }
        }
        let _ = std::fs::remove_dir_all(&scratch);
        stage_crash(&golden_dir, &scratch, &segment_name, cut)?;
        let recovered = DurableTable::open(&scratch, durable_opts.clone())
            .map_err(|e| sweep_err(tag, cut, &format!("recovery failed: {e}")))?;
        if recovered.recovery().torn_tail {
            report.torn_cuts += 1;
        }
        report.probes_checked +=
            verify_recovered(tag, cut, &recovered, &model, options.probes_per_cut)?;
        report.cuts_tested += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::probe::ProbePolicy;
    use crate::storage::IndexSpec;
    use crate::table::{Arrangement, OverflowPolicy, TableConfig};

    fn spec_for(key_bits: u32) -> Option<TableSpec> {
        if !(8..=128).contains(&key_bits) {
            return None;
        }
        Some(TableSpec {
            config: TableConfig {
                rows_log2: 4,
                row_bits: 1024,
                layout: RecordLayout::new(key_bits, true, 32),
                arrangement: Arrangement::Horizontal(1),
                probe: ProbePolicy::Linear,
                overflow: OverflowPolicy::Probe {
                    max_steps: u32::MAX,
                },
            },
            index: IndexSpec::RangeSelect {
                low: key_bits - 4,
                count: 4,
            },
        })
    }

    fn mixed_stream() -> Vec<Op> {
        let mut ops = Vec::new();
        for i in 0..12u64 {
            ops.push(Op::Insert(Record::new(
                TernaryKey::binary(u128::from(i) << 2, 32),
                i,
            )));
        }
        ops.push(Op::InsertSorted(Record::new(
            TernaryKey::ternary(0x0A00, 0x00FF, 32),
            100,
        )));
        ops.push(Op::Delete(TernaryKey::binary(4, 32)));
        ops.push(Op::Update {
            key: TernaryKey::binary(8, 32),
            data: 999,
        });
        ops.push(Op::Search(SearchKey::new(8, 32)));
        for i in 20..26u64 {
            ops.push(Op::Insert(Record::new(
                TernaryKey::binary(u128::from(i), 32),
                i,
            )));
        }
        ops
    }

    #[test]
    fn byte_exhaustive_sweep_passes() {
        let report = crash_sweep(
            "unit-bytes",
            &spec_for,
            32,
            &mixed_stream(),
            &CrashSweepOptions {
                granularity: CutGranularity::Bytes,
                ..CrashSweepOptions::default()
            },
        )
        .expect("sweep");
        assert_eq!(report.ops_logged, 21);
        assert_eq!(report.cuts_tested as u64, report.segment_bytes + 1);
        // Almost every byte offset lands mid-frame.
        assert!(report.torn_cuts > report.cuts_tested / 2);
        assert!(report.probes_checked > 0);
    }

    #[test]
    fn record_boundary_sweep_with_checkpoint_passes() {
        let report = crash_sweep(
            "unit-ckpt",
            &spec_for,
            32,
            &mixed_stream(),
            &CrashSweepOptions {
                granularity: CutGranularity::Records { intra_samples: 2 },
                checkpoint_at: Some(8),
                ..CrashSweepOptions::default()
            },
        )
        .expect("sweep");
        assert_eq!(report.ops_logged, 21);
        // 13 post-checkpoint ops live in the swept segment: at least one
        // cut per boundary plus the intra samples.
        assert!(report.cuts_tested >= 14, "cuts: {}", report.cuts_tested);
        assert!(report.torn_cuts > 0);
    }

    #[test]
    fn reconfigure_mid_stream_is_swept() {
        let mut ops = mixed_stream();
        ops.push(Op::Reconfigure { key_bits: 64 });
        ops.push(Op::Insert(Record::new(TernaryKey::binary(0xFEED, 64), 5)));
        // Stale-width op after the reconfigure: skipped on both sides.
        ops.push(Op::Insert(Record::new(TernaryKey::binary(7, 32), 7)));
        ops.push(Op::Delete(TernaryKey::binary(0xFEED, 64)));
        let report = crash_sweep(
            "unit-reconf",
            &spec_for,
            32,
            &ops,
            &CrashSweepOptions::default(),
        )
        .expect("sweep");
        assert_eq!(report.ops_logged, 24);
    }
}
