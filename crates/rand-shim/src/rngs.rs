//! Concrete generators. Only [`SmallRng`] is provided: a xoshiro256++
//! generator, which is what upstream `rand`'s `small_rng` feature uses on
//! 64-bit platforms.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SmallRng { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        // SplitMix64 expansion guarantees non-zero state even for seed 0.
        let mut rng = SmallRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert_ne!(draws[0], draws[1]);
    }
}
