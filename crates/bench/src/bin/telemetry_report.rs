//! End-to-end telemetry report: runs every search substrate under
//! instrumentation and renders the live distributions the paper plots.
//!
//! The CA-RAM designs of Table 2 run with a deep [`HistogramSink`]
//! installed, so their probe-length, row-fetch, match-popcount, and
//! insert-occupancy histograms come from the actual traced pipeline
//! (hash → row fetch → match → extract, plus overflow probes). The six
//! CAM baselines and the software baseline have no native sinks; their
//! per-engine metrics are derived from [`EngineOutcome`] streams. The
//! input-controller queue model contributes queue-depth and wait-cycle
//! distributions, the subsystem contributes per-database scopes, design A
//! contributes per-slice occupancy, and a live [`SearchService`] instance
//! contributes the serving scopes (ring batching, park/unpark, and
//! routing-balance counters from the lock-free shard path) plus the
//! observability-v2 scopes: an `slo` window ticked over the served load
//! and per-shard flight-recorder/trace-store scopes.
//!
//! Everything is aggregated in a [`MetricsRegistry`] and exported twice:
//! schema-versioned JSON (`BENCH_telemetry.json`) and Prometheus text
//! (`BENCH_telemetry.prom`). Both exports are re-parsed and validated
//! before the binary exits, so a malformed export fails loudly.
//!
//! Usage: `telemetry_report [--prefixes N] [--lookups N] [--records N]
//! [--seed S] [--json PATH] [--prom PATH]`, or `telemetry_report
//! --validate PATH` to check an existing JSON export (the CI mode).

use std::sync::Arc;

use ca_ram_bench::designs::{build_ip_table, ip_designs, load_prefixes};
use ca_ram_bench::driver::member_trace;
use ca_ram_bench::{ensure, rule, write_text_atomic, BenchError, Cli, ExactMatchWorkload, Result};
use ca_ram_cam::{BankedTcam, BinaryCam, PreclassifiedCam, PrecomputedBcam, SortedTcam, Tcam};
use ca_ram_core::controller::{simulate_with_sink, QueueModelConfig};
use ca_ram_core::engine::{EngineOutcome, SearchEngine};
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::subsystem::CaRamSubsystem;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_core::telemetry::{
    parse_json, to_json, to_prometheus, validate_json, validate_prometheus, Histogram,
    HistogramSink, MetricsRegistry, ScopeKind,
};
use ca_ram_service::{SearchService, ServiceConfig};
use ca_ram_softsearch::cache::Hierarchy;
use ca_ram_softsearch::structures::{Arena, ChainedHash};
use ca_ram_softsearch::SoftEngine;
use ca_ram_workloads::bgp::generate;
use ca_ram_workloads::prefix::Ipv4Prefix;

/// Renders one histogram as a terminal bar chart (the Fig. 7 shape, from
/// live counters rather than a post-hoc scan).
fn print_histogram(label: &str, h: &Histogram) {
    if h.is_empty() {
        println!("  {label}: (empty)");
        return;
    }
    println!(
        "  {label}: n={}  mean={:.2}  p99<={}",
        h.count(),
        h.mean(),
        h.quantile(0.99)
    );
    let peak = h.series().map(|(_, _, c)| c).max().unwrap_or(1).max(1);
    for (low, high, count) in h.series() {
        let bar = usize::try_from(count * 40 / peak).unwrap_or(40);
        let range = if low == high {
            format!("{low}")
        } else {
            format!("{low}-{high}")
        };
        println!("    {range:>12} {count:>9} |{}", "#".repeat(bar));
    }
}

/// Runs `engine` over `keys` and publishes the outcome stream as an
/// engine scope.
fn drive_engine(
    registry: &mut MetricsRegistry,
    engine: &dyn SearchEngine,
    name: &str,
    keys: &[SearchKey],
) {
    let outcomes: Vec<EngineOutcome> = keys.iter().map(|k| engine.search(k)).collect();
    registry.record_outcomes(name, &outcomes);
}

fn load_ternary(engine: &mut dyn SearchEngine, prefixes: &[Ipv4Prefix]) {
    for p in prefixes {
        engine
            .insert(Record::new(p.to_ternary_key(), u64::from(p.len())))
            .unwrap_or_else(|e| panic!("{}: inserting {p}: {e}", engine.name()));
    }
}

fn load_binary(engine: &mut dyn SearchEngine, pairs: &[(u64, u64)]) {
    for &(k, v) in pairs {
        engine
            .insert(Record::new(TernaryKey::binary(u128::from(k), 64), v))
            .unwrap_or_else(|e| panic!("{}: inserting {k:#x}: {e}", engine.name()));
    }
}

fn validate_file(path: &str) -> Result<()> {
    let text = std::fs::read_to_string(path).map_err(|source| BenchError::Io {
        path: path.to_string(),
        source,
    })?;
    match validate_json(&text) {
        Ok(scopes) => {
            println!("{path}: valid ({scopes} scopes)");
            Ok(())
        }
        Err(e) => Err(BenchError::Arg(format!("{path}: invalid telemetry: {e}"))),
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<()> {
    let cli = Cli::from_env();
    if let Some(path) = cli.value("validate") {
        return validate_file(path);
    }

    let prefixes_n: usize = cli.parse("prefixes", 20_000)?;
    let lookups: usize = cli.parse("lookups", 50_000)?;
    let records: usize = cli.parse("records", 20_000)?;
    let seed: u64 = cli.parse("seed", 0x1103)?;
    let json_path = cli
        .value("json")
        .unwrap_or("BENCH_telemetry.json")
        .to_string();
    let prom_path = cli
        .value("prom")
        .unwrap_or("BENCH_telemetry.prom")
        .to_string();
    ensure(prefixes_n > 0, "--prefixes must be > 0")?;
    ensure(lookups > 0, "--lookups must be > 0")?;
    ensure(records > 0, "--records must be > 0")?;

    let mut registry = MetricsRegistry::new();

    let config = ca_ram_bench::bgp_config(prefixes_n, Some(seed));
    let prefixes = generate(&config);
    let weights = vec![1.0; prefixes.len()];
    let keys = member_trace(&prefixes, lookups, seed ^ 0x5EED);
    // CAM arrays scan every entry per search; a shorter trace keeps the
    // baselines tractable while still filling their distributions.
    let cam_keys = &keys[..keys.len().min(2_000)];

    println!(
        "Telemetry sweep: {} prefixes, {} CA-RAM lookups, {} CAM lookups",
        prefixes.len(),
        keys.len(),
        cam_keys.len()
    );
    rule(72);

    // ---- CA-RAM designs A-F: deep sinks on the traced pipeline ----------
    for (i, d) in ip_designs().iter().enumerate() {
        let sink = Arc::new(HistogramSink::deep());
        let mut table = build_ip_table(d);
        table.set_telemetry_sink(sink.clone());
        load_prefixes(&mut table, &prefixes, &weights);
        let _ = table.search_batch(&keys);
        let snap = sink.snapshot();
        let scope_name = format!("caram-{}", d.name);
        registry.record_snapshot(&scope_name, &snap);

        println!("CA-RAM design {} ({} lookups):", d.name, keys.len());
        print_histogram("probe_length", &snap.probe_length);
        if i == 0 {
            print_histogram("insert_occupancy", &snap.insert_occupancy);
            print_histogram("match_popcount", &snap.match_popcount);
            // Design A also contributes the per-slice occupancy scopes.
            for (s, occ) in table.slice_occupancy_histograms().iter().enumerate() {
                let mut h = Histogram::new();
                for (recs, rows) in occ.series() {
                    h.record_n(u64::from(recs), rows);
                }
                let scope = registry.scope_mut(ScopeKind::Slice, &format!("caram-A/{s}"));
                scope.set_counter("rows", occ.total_buckets());
                scope.set_gauge("mean_row_occupancy", occ.mean());
                scope.set_histogram("row_occupancy", h);
            }
        }
    }
    rule(72);

    // ---- CAM baselines on the same traffic -------------------------------
    println!("CAM baselines ({} lookups each):", cam_keys.len());
    let capacity = prefixes.len() + 16;
    {
        let mut tcam = Tcam::new(capacity, 32);
        load_ternary(&mut tcam, &prefixes);
        drive_engine(&mut registry, &tcam, tcam.name(), cam_keys);
    }
    {
        // 16 banks selected by address bits [28, 32); prefixes shorter than
        // four bits would replicate everywhere, so each bank gets full
        // capacity.
        let mut banked = BankedTcam::new(Box::new(RangeSelect::new(28, 4)), capacity, 32);
        load_ternary(&mut banked, &prefixes);
        drive_engine(&mut registry, &banked, banked.name(), cam_keys);
    }
    {
        let mut sorted = SortedTcam::new(capacity, 32);
        load_ternary(&mut sorted, &prefixes);
        drive_engine(&mut registry, &sorted, sorted.name(), cam_keys);
    }

    // Exact-match devices index a 64-bit dictionary workload.
    let ExactMatchWorkload {
        pairs,
        keys: dict,
        trace,
    } = ca_ram_bench::exact_match_workload(records, cam_keys.len(), seed ^ 0xD1C7);
    let dict_keys: Vec<SearchKey> = trace
        .iter()
        .map(|&i| SearchKey::new(u128::from(dict[i]), 64))
        .collect();
    let dict_capacity = pairs.len() + 16;
    {
        let mut bcam = BinaryCam::new(dict_capacity, 64);
        load_binary(&mut bcam, &pairs);
        drive_engine(&mut registry, &bcam, bcam.name(), &dict_keys);
    }
    {
        // 16 categories keyed by the top nibble of the key.
        let mut pre = PreclassifiedCam::new(16, dict_capacity, 64, 60, 4);
        load_binary(&mut pre, &pairs);
        drive_engine(&mut registry, &pre, pre.name(), &dict_keys);
    }
    {
        let mut bcam = PrecomputedBcam::new(dict_capacity, 64);
        load_binary(&mut bcam, &pairs);
        drive_engine(&mut registry, &bcam, bcam.name(), &dict_keys);
    }
    {
        let mut arena = Arena::new(0);
        let chained = ChainedHash::build(&pairs, 15, &mut arena);
        let soft = SoftEngine::new(chained, Hierarchy::typical());
        drive_engine(&mut registry, &soft, "softsearch-chained", &dict_keys);
    }
    for scope in registry.scopes() {
        if scope.kind == ScopeKind::Engine && !scope.name.starts_with("caram") {
            println!(
                "  {:<20} searches={:<6} hit_rate={:.3} amal={:.3}",
                scope.name,
                scope.counter("searches").unwrap_or(0),
                scope.gauge("hit_rate").unwrap_or(0.0),
                scope.gauge("measured_amal").unwrap_or(0.0),
            );
        }
    }
    rule(72);

    // ---- Input-controller queue model (Fig. 5) ---------------------------
    {
        let sink = HistogramSink::new();
        let slices = QueueModelConfig::fig8_ip_lookup().slices;
        #[allow(clippy::cast_possible_truncation)]
        let requests = keys.iter().map(|k| (k.value() as u32) % slices);
        let report = simulate_with_sink(QueueModelConfig::fig8_ip_lookup(), requests, &sink)?;
        let snap = sink.snapshot();
        let scope = registry.scope_mut(ScopeKind::Controller, "fig8-ip");
        scope.set_counter("cycles", report.cycles);
        scope.set_counter("completed", report.completed);
        scope.set_counter("stall_cycles", report.stall_cycles);
        scope.set_counter("peak_queue_depth", report.peak_queue_depth as u64);
        scope.set_histogram("queue_depth", snap.queue_depth.clone());
        scope.set_histogram("queue_wait", snap.queue_wait.clone());
        println!("Input controller (split queues, 8 slices):");
        print_histogram("queue_wait", &snap.queue_wait);
    }

    // ---- Multi-database subsystem: per-database scopes -------------------
    {
        let mut subsystem = CaRamSubsystem::new();
        let mut sinks = Vec::new();
        let mut ids = Vec::new();
        for (d, name) in ip_designs().iter().take(2).zip(["ip-a", "ip-b"]) {
            let mut table = build_ip_table(d);
            load_prefixes(&mut table, &prefixes, &weights);
            let id = subsystem.add_database(name, table);
            let sink = HistogramSink::shared();
            subsystem.set_telemetry_sink(id, sink.clone());
            ids.push((id, name));
            sinks.push(sink);
        }
        for chunk in cam_keys.chunks(8) {
            for key in chunk {
                for &(id, _) in &ids {
                    subsystem
                        .store_request(subsystem.request_port(id), *key)
                        .expect("request port accepts stores");
                }
            }
            let _ = subsystem.pump();
        }
        let _ = subsystem.pump();
        for ((id, name), sink) in ids.iter().zip(&sinks) {
            let counters = subsystem.counters(*id);
            let snap = sink.snapshot();
            let scope = registry.scope_mut(ScopeKind::Database, name);
            scope.record_search_stats(&counters);
            scope.set_histogram("queue_depth", snap.queue_depth.clone());
            scope.set_histogram("probe_length", snap.probe_length.clone());
        }
    }
    rule(72);

    // ---- Concurrent serving layer: ring and park/unpark counters ---------
    {
        let shards = 2usize;
        let per_shard = records.div_ceil(shards);
        let engines = (0..shards)
            .map(|_| {
                let layout = RecordLayout::new(64, false, 64);
                // 3x headroom over a uniform split absorbs routing skew.
                let buckets = (per_shard * 3).div_ceil(8).max(16);
                let rows_log2 = buckets.next_power_of_two().trailing_zeros();
                let table_config = TableConfig {
                    rows_log2,
                    row_bits: 8 * layout.slot_bits(),
                    layout,
                    arrangement: Arrangement::Horizontal(1),
                    probe: ProbePolicy::Linear,
                    overflow: OverflowPolicy::Probe {
                        max_steps: u32::MAX,
                    },
                };
                CaRamTable::new(table_config, Box::new(RangeSelect::new(0, rows_log2)))
                    .map(|t| Box::new(t) as Box<dyn SearchEngine>)
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let service = SearchService::new(
            ServiceConfig {
                shards,
                // Sample 1 in 16 admissions so the export carries live
                // trace-store and recorder scopes, not just zeros.
                trace_sample_period: 16,
                ..ServiceConfig::default()
            },
            engines,
        )?;
        for &(k, v) in &pairs {
            service.insert_sync(Record::new(TernaryKey::binary(u128::from(k), 64), v))?;
        }
        // Batched submissions exercise the ring fan-out; the synchronous
        // tail exercises the single-request completion slots.
        for chunk in dict_keys.chunks(64) {
            let completion = service
                .try_submit_batch(chunk)
                .expect("serial batch admission never sees a full ring")
                .wait();
            assert_eq!(completion.replies.len(), chunk.len());
        }
        for key in dict_keys.iter().take(256) {
            let _ = service.search_sync(key);
        }
        // One SLO window over everything served above, so the export
        // carries a live `slo` scope (p50/p99, burn rate) alongside the
        // per-shard recorder scopes.
        let slo = service.slo_tick();
        service.export_metrics(&mut registry, "service");
        let totals = service.snapshot().totals();
        println!(
            "Serving layer ({} shards, {} keys batched + 256 single):",
            shards,
            dict_keys.len()
        );
        println!(
            "  accepted={}  batch_entries={}  batch_keys={}  parks={}  unparks={}",
            totals.accepted, totals.batch_entries, totals.batch_keys, totals.parks, totals.unparks
        );
        println!(
            "  slo window: n={}  p50={}us  p99={}us  burn={:.3}  traces retained={}",
            slo.window_count,
            slo.p50_us,
            slo.p99_us,
            slo.burn_rate,
            service.retained_traces().len()
        );
        service.shutdown();
    }
    rule(72);

    // ---- Export + self-validation ----------------------------------------
    let json = to_json(&registry);
    let scopes = validate_json(&json)
        .unwrap_or_else(|e| panic!("generated telemetry failed validation: {e}"));
    parse_json(&json).expect("generated telemetry reparses");
    let prom = to_prometheus(&registry);
    let series = validate_prometheus(&prom)
        .unwrap_or_else(|e| panic!("generated Prometheus export failed validation: {e}"));
    write_text_atomic(&json_path, &json)?;
    write_text_atomic(&prom_path, &prom)?;
    println!("validated {scopes} scopes ({series} Prometheus histogram series)");
    println!("(wrote {json_path} and {prom_path})");
    Ok(())
}
