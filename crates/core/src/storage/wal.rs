//! The write-ahead log: append-only segments of length-prefixed,
//! CRC-framed mutation records.
//!
//! Segment files are named `wal-<index:08>.log` and start with a 24-byte
//! header (`CARAMWAL` magic, format version, segment index, header CRC).
//! Each record is framed `[len u32][crc32 u32][payload]`, both
//! little-endian, with the CRC taken over the payload — so a reader can
//! tell exactly where a crash tore the tail: the first frame whose length
//! or checksum does not hold ends the log. Appends accumulate in a
//! group-commit buffer; [`WalWriter::commit`] writes the batch with one
//! syscall and, under [`SyncPolicy::Sync`], one `fdatasync`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use super::{
    corrupt, crc32, dur_err, io_err, put_u128, put_u32, put_u64, ByteReader, TableSpec,
    FORMAT_VERSION,
};
use crate::error::{DurabilityErrorKind, Result};
use crate::key::TernaryKey;
use crate::layout::Record;

/// When the log reaches the platters (or flash) relative to a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Commit writes the batch to the OS but does not fsync: a process
    /// crash loses nothing acknowledged, a host crash can lose the tail.
    /// The default — and what the crash-injection sweep models (it kills
    /// the process, not the host).
    #[default]
    Flush,
    /// `fdatasync` on every commit: nothing acknowledged is lost even to
    /// a host crash, at the cost of a device round-trip per commit.
    Sync,
}

/// One logged mutation. Only *applied* mutations are logged: an insert
/// that failed (table full) left no state to recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A successful [`crate::table::CaRamTable::insert`].
    Insert(Record),
    /// A successful [`crate::table::CaRamTable::insert_sorted`].
    InsertSorted(Record),
    /// A delete of every record matching the key (logged even when the
    /// count was zero: the first delete flips the table into full-scan
    /// mode, which is state worth recovering).
    Delete(TernaryKey),
    /// Delete-then-reinsert of `key` with new `data` (applied only when
    /// the delete removed something).
    Update {
        /// The key rewritten.
        key: TernaryKey,
        /// The new payload.
        data: u64,
    },
    /// The table was rebuilt under a new spec. Self-contained: replay
    /// needs no out-of-band geometry.
    Reconfigure(TableSpec),
}

const TAG_INSERT: u8 = 1;
const TAG_INSERT_SORTED: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_RECONFIGURE: u8 = 5;

fn put_key(out: &mut Vec<u8>, key: &TernaryKey) {
    put_u32(out, key.bits());
    put_u128(out, key.value());
    put_u128(out, key.dont_care());
}

fn read_key(r: &mut ByteReader<'_>) -> Result<TernaryKey> {
    let bits = r.u32()?;
    let value = r.u128()?;
    let dont_care = r.u128()?;
    if bits == 0 || bits > 128 {
        return Err(corrupt(format!("wal key width {bits} out of range")));
    }
    let mask = if bits == 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    if value & !mask != 0 || dont_care & !mask != 0 {
        return Err(corrupt("wal key has bits above its declared width"));
    }
    Ok(TernaryKey::ternary(value, dont_care, bits))
}

impl WalRecord {
    /// Serializes the record payload (the bytes the frame CRC covers).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            WalRecord::Insert(rec) => {
                out.push(TAG_INSERT);
                put_key(&mut out, &rec.key);
                put_u64(&mut out, rec.data);
            }
            WalRecord::InsertSorted(rec) => {
                out.push(TAG_INSERT_SORTED);
                put_key(&mut out, &rec.key);
                put_u64(&mut out, rec.data);
            }
            WalRecord::Delete(key) => {
                out.push(TAG_DELETE);
                put_key(&mut out, key);
            }
            WalRecord::Update { key, data } => {
                out.push(TAG_UPDATE);
                put_key(&mut out, key);
                put_u64(&mut out, *data);
            }
            WalRecord::Reconfigure(spec) => {
                out.push(TAG_RECONFIGURE);
                let bytes = spec.encode();
                #[allow(clippy::cast_possible_truncation)] // specs are tiny
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Deserializes a payload produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Corrupt`] on unknown tags, truncation, or
    /// out-of-range fields. (A frame whose CRC held but whose payload does
    /// not decode is corruption, not a torn write.)
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(payload, "wal record");
        let rec = match r.u8()? {
            TAG_INSERT => WalRecord::Insert(Record::new(read_key(&mut r)?, r.u64()?)),
            TAG_INSERT_SORTED => WalRecord::InsertSorted(Record::new(read_key(&mut r)?, r.u64()?)),
            TAG_DELETE => WalRecord::Delete(read_key(&mut r)?),
            TAG_UPDATE => WalRecord::Update {
                key: read_key(&mut r)?,
                data: r.u64()?,
            },
            TAG_RECONFIGURE => {
                let len = r.u32()? as usize;
                let spec = TableSpec::decode(r.bytes(len)?)?;
                WalRecord::Reconfigure(spec)
            }
            tag => return Err(corrupt(format!("unknown wal record tag {tag}"))),
        };
        r.finish()?;
        Ok(rec)
    }
}

/// Bytes of segment header: magic (8) + version (4) + index (8) + CRC (4).
pub const SEGMENT_HEADER_BYTES: u64 = HEADER_LEN as u64;

/// [`SEGMENT_HEADER_BYTES`] as the in-memory slice length.
const HEADER_LEN: usize = 24;

/// Sanity cap on a single record payload; anything larger is corruption.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

const SEGMENT_MAGIC: &[u8; 8] = b"CARAMWAL";

/// The file name of segment `index`.
#[must_use]
pub fn segment_file_name(index: u64) -> String {
    format!("wal-{index:08}.log")
}

/// Parses a segment index out of a `wal-<index:08>.log` file name.
#[must_use]
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn encode_segment_header(index: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(SEGMENT_MAGIC);
    put_u32(&mut h, FORMAT_VERSION);
    put_u64(&mut h, index);
    let crc = crc32(&h);
    put_u32(&mut h, crc);
    h
}

/// Lists the WAL segments in `dir`, sorted by index.
///
/// # Errors
///
/// [`DurabilityErrorKind::Io`] when the directory cannot be read.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry in", dir, &e))?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((idx, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(idx, _)| *idx);
    Ok(out)
}

/// The result of scanning one segment.
#[derive(Debug)]
pub struct SegmentRead {
    /// Every fully valid record, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header plus whole frames). When
    /// `torn` is set, the file holds garbage past this point.
    pub valid_len: u64,
    /// True when the segment ends in a torn or damaged frame (only legal
    /// in the final segment — the only place a crash can tear).
    pub torn: bool,
}

/// Reads and validates one WAL segment.
///
/// In the final segment (`is_final`), a bad header or frame ends the scan:
/// the valid prefix is returned with `torn = true`, because a crash tears
/// only the tail of the last segment. Anywhere else the same damage is a
/// typed [`DurabilityErrorKind::Corrupt`] error — a non-final segment was
/// sealed by a later one's existence and must be intact.
///
/// # Errors
///
/// [`DurabilityErrorKind::Io`] on read failure,
/// [`DurabilityErrorKind::Corrupt`] on damage outside the final tail, and
/// [`DurabilityErrorKind::FormatVersion`] on an unknown header version.
// Every `try_into().unwrap()` below follows an explicit length check, so
// none of them can actually panic.
#[allow(clippy::missing_panics_doc)]
pub fn read_segment(path: &Path, expect_index: u64, is_final: bool) -> Result<SegmentRead> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read", path, &e))?;
    let name = path.display();

    let torn_or = |detail: String, valid_len: u64, records: Vec<WalRecord>| {
        if is_final {
            Ok(SegmentRead {
                records,
                valid_len,
                torn: true,
            })
        } else {
            Err(corrupt(format!("{name}: {detail}")))
        }
    };

    // Header.
    let hdr = HEADER_LEN;
    if bytes.len() < hdr {
        return torn_or("segment shorter than its header".into(), 0, Vec::new());
    }
    let stored_crc = u32::from_le_bytes([
        bytes[hdr - 4],
        bytes[hdr - 3],
        bytes[hdr - 2],
        bytes[hdr - 1],
    ]);
    if &bytes[..8] != SEGMENT_MAGIC || crc32(&bytes[..hdr - 4]) != stored_crc {
        return torn_or("bad segment header".into(), 0, Vec::new());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(dur_err(
            DurabilityErrorKind::FormatVersion,
            format!("{name}: wal format version {version}, this build reads {FORMAT_VERSION}"),
        ));
    }
    let index = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if index != expect_index {
        return Err(corrupt(format!(
            "{name}: header claims segment {index}, file name says {expect_index}"
        )));
    }

    // Frames.
    let mut records = Vec::new();
    let mut pos = hdr;
    loop {
        if pos == bytes.len() {
            break;
        }
        if bytes.len() - pos < 8 {
            return torn_or(
                format!("torn frame header at offset {pos}"),
                pos as u64,
                records,
            );
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_BYTES || bytes.len() - pos - 8 < len as usize {
            return torn_or(
                format!("frame at offset {pos} claims {len} bytes"),
                pos as u64,
                records,
            );
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return torn_or(
                format!("frame checksum mismatch at offset {pos}"),
                pos as u64,
                records,
            );
        }
        records.push(WalRecord::decode(payload)?);
        pos += 8 + len as usize;
    }
    Ok(SegmentRead {
        records,
        valid_len: pos as u64,
        torn: false,
    })
}

/// The append side of the log: one open segment, a group-commit buffer,
/// and rotation bookkeeping.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_limit: u64,
    segment_index: u64,
    file: File,
    /// Committed bytes in the current segment (header included).
    committed: u64,
    /// Encoded frames appended since the last commit.
    buf: Vec<u8>,
    /// Frames in `buf`.
    pending: usize,
}

impl WalWriter {
    /// Opens a fresh segment `index` in `dir` for appending. Fails if the
    /// segment file already exists — a writer never appends to a segment
    /// it did not create (recovery always starts a new one past the
    /// replayed tail).
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] on create/write failure.
    pub fn create(dir: &Path, index: u64, segment_limit: u64, sync: SyncPolicy) -> Result<Self> {
        let path = dir.join(segment_file_name(index));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, &e))?;
        file.write_all(&encode_segment_header(index))
            .map_err(|e| io_err("write header to", &path, &e))?;
        if sync == SyncPolicy::Sync {
            file.sync_data().map_err(|e| io_err("sync", &path, &e))?;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            sync,
            segment_limit,
            segment_index: index,
            file,
            committed: SEGMENT_HEADER_BYTES,
            buf: Vec::new(),
            pending: 0,
        })
    }

    /// Index of the segment currently being appended to.
    #[must_use]
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Committed bytes in the current segment, header included. Bytes in
    /// the group-commit buffer are not counted until [`Self::commit`].
    #[must_use]
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }

    /// Frames appended but not yet committed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Appends a record to the group-commit buffer. Nothing reaches the
    /// file until [`Self::commit`].
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode();
        #[allow(clippy::cast_possible_truncation)] // bounded by MAX_RECORD_BYTES
        put_u32(&mut self.buf, payload.len() as u32);
        put_u32(&mut self.buf, crc32(&payload));
        self.buf.extend_from_slice(&payload);
        self.pending += 1;
    }

    /// Writes the buffered batch to the segment with one write call and
    /// makes it durable per the [`SyncPolicy`]; rotates to a new segment
    /// when the current one has outgrown its limit. Frames never straddle
    /// segments: rotation happens between commits.
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] on write/sync/rotate failure. On error
    /// the batch stays buffered; a caller that cannot retry should treat
    /// the table as poisoned.
    pub fn commit(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            let path = self.dir.join(segment_file_name(self.segment_index));
            self.file
                .write_all(&self.buf)
                .map_err(|e| io_err("append to", &path, &e))?;
            if self.sync == SyncPolicy::Sync {
                self.file
                    .sync_data()
                    .map_err(|e| io_err("sync", &path, &e))?;
            }
            self.committed += self.buf.len() as u64;
            self.buf.clear();
            self.pending = 0;
        }
        if self.committed >= self.segment_limit {
            self.rotate()?;
        }
        Ok(())
    }

    /// Closes the current segment and opens the next one. Used by commit
    /// (when over the size limit) and by checkpointing (to seal the tail
    /// a snapshot covers).
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] on create failure.
    pub fn rotate(&mut self) -> Result<()> {
        debug_assert!(self.buf.is_empty(), "rotate with uncommitted frames");
        let next = Self::create(
            &self.dir,
            self.segment_index + 1,
            self.segment_limit,
            self.sync,
        )?;
        *self = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ca_ram_wal_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert(Record::new(TernaryKey::binary(0xBEEF, 32), 7)),
            WalRecord::InsertSorted(Record::new(TernaryKey::ternary(0xAB00, 0xFF, 32), 9)),
            WalRecord::Delete(TernaryKey::binary(0xBEEF, 32)),
            WalRecord::Update {
                key: TernaryKey::ternary(0xAB00, 0xFF, 32),
                data: 11,
            },
        ]
    }

    #[test]
    fn record_roundtrip() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload).expect("decode"), rec);
        }
    }

    #[test]
    fn record_decode_rejects_damage() {
        for rec in sample_records() {
            let payload = rec.encode();
            for cut in 0..payload.len() {
                assert!(
                    WalRecord::decode(&payload[..cut]).is_err(),
                    "truncated payload must not decode"
                );
            }
            let mut long = payload.clone();
            long.push(0);
            assert!(WalRecord::decode(&long).is_err());
        }
        assert!(WalRecord::decode(&[99]).is_err());
    }

    #[test]
    fn write_commit_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let records = sample_records();
        {
            let mut w = WalWriter::create(&dir, 0, u64::MAX, SyncPolicy::Flush).expect("create");
            for r in &records[..2] {
                w.append(r);
            }
            assert_eq!(w.pending(), 2);
            w.commit().expect("commit");
            assert_eq!(w.pending(), 0);
            for r in &records[2..] {
                w.append(r);
            }
            w.commit().expect("commit 2");
        }
        let segs = list_segments(&dir).expect("list");
        assert_eq!(segs.len(), 1);
        let read = read_segment(&segs[0].1, 0, true).expect("read");
        assert!(!read.torn);
        assert_eq!(read.records, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments() {
        let dir = temp_dir("rotate");
        let records = sample_records();
        {
            // A tiny limit forces rotation after every commit.
            let mut w = WalWriter::create(&dir, 0, 1, SyncPolicy::Flush).expect("create");
            for r in &records {
                w.append(r);
                w.commit().expect("commit");
            }
            assert_eq!(w.segment_index(), records.len() as u64);
        }
        let segs = list_segments(&dir).expect("list");
        assert_eq!(segs.len(), records.len() + 1);
        let mut replayed = Vec::new();
        for (i, (idx, path)) in segs.iter().enumerate() {
            let read = read_segment(path, *idx, i == segs.len() - 1).expect("read");
            assert!(!read.torn);
            replayed.extend(read.records);
        }
        assert_eq!(replayed, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_tolerated_only_in_final_segment() {
        let dir = temp_dir("torn");
        let records = sample_records();
        let path = {
            let mut w = WalWriter::create(&dir, 0, u64::MAX, SyncPolicy::Flush).expect("create");
            for r in &records {
                w.append(r);
            }
            w.commit().expect("commit");
            dir.join(segment_file_name(0))
        };
        let full = std::fs::read(&path).expect("read file");
        // Cut at every byte: the final-segment read never errors and never
        // yields more records than survived the cut; a non-final read
        // errors for every cut short of the full file.
        let mut last_count = 0;
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let read = read_segment(&path, 0, true).expect("final segment read");
            assert!(read.valid_len <= cut as u64);
            // The recovered prefix only ever grows as the cut moves right.
            assert!(read.records.len() >= last_count);
            // Torn exactly when the cut is not a clean frame boundary (a
            // cut inside the header is never clean, even at byte 0).
            let clean = cut as u64 >= SEGMENT_HEADER_BYTES && read.valid_len == cut as u64;
            assert_eq!(read.torn, !clean, "cut {cut}");
            last_count = read.records.len();
            if read.torn {
                assert!(read_segment(&path, 0, false).is_err(), "cut {cut}");
            }
        }
        assert_eq!(last_count, records.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_file_name(7), "wal-00000007.log");
        assert_eq!(parse_segment_name("wal-00000007.log"), Some(7));
        assert_eq!(parse_segment_name("wal-7.log"), None);
        assert_eq!(parse_segment_name("snap-00000007.img"), None);
    }
}
