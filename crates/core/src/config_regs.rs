//! Memory-mapped control registers for runtime slice reconfiguration
//! (Sec. 3.3).
//!
//! "Our design allows a configurable number of keys per bucket to increase
//! the flexibility of use. ... we limited the key size to be 1, 2, 3, 4, 6,
//! 8, 12, and 16 bytes. ... Control registers are provided in the form of
//! memory-mapped peripheral registers to program various configuration
//! options in our design."
//!
//! [`ReconfigurableSlice`] wraps a [`CaRamSlice`] behind a register file:
//! software writes the key size, ternary enable, and data width, then
//! writes the commit register, which re-instantiates the slice with the new
//! record layout (destroying the stored contents, as a geometry change does
//! in hardware).

use crate::error::{CaRamError, Result};
use crate::layout::RecordLayout;
use crate::slice::CaRamSlice;

/// Key sizes supported by the prototype, in bytes (Sec. 3.3).
pub const SUPPORTED_KEY_BYTES: [u8; 8] = [1, 2, 3, 4, 6, 8, 12, 16];

/// Register addresses within the peripheral's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum ControlRegister {
    /// Key size in bytes (one of [`SUPPORTED_KEY_BYTES`]).
    KeyBytes = 0x0,
    /// Non-zero enables ternary (don't-care) stored keys.
    TernaryEnable = 0x1,
    /// Data payload width in bits (0–64).
    DataBits = 0x2,
    /// Writing any value commits the staged configuration, rebuilding the
    /// memory layout and clearing the array.
    Commit = 0x3,
}

impl ControlRegister {
    /// Decodes a register address.
    #[must_use]
    pub fn from_address(address: u64) -> Option<Self> {
        match address {
            0x0 => Some(Self::KeyBytes),
            0x1 => Some(Self::TernaryEnable),
            0x2 => Some(Self::DataBits),
            0x3 => Some(Self::Commit),
            _ => None,
        }
    }
}

/// A CA-RAM slice with a runtime-programmable record layout.
#[derive(Debug, Clone)]
pub struct ReconfigurableSlice {
    rows_log2: u32,
    row_bits: u32,
    staged_key_bytes: u8,
    staged_ternary: bool,
    staged_data_bits: u8,
    slice: CaRamSlice,
}

impl ReconfigurableSlice {
    /// Creates a slice with an initial layout.
    ///
    /// # Panics
    ///
    /// Panics if the initial layout does not fit the row geometry.
    #[must_use]
    pub fn new(rows_log2: u32, row_bits: u32, initial: RecordLayout) -> Self {
        let slice = CaRamSlice::new(rows_log2, row_bits, initial);
        Self {
            rows_log2,
            row_bits,
            staged_key_bytes: u8::try_from(initial.key_bits() / 8).unwrap_or(16).max(1),
            staged_ternary: initial.is_ternary(),
            staged_data_bits: u8::try_from(initial.data_bits()).expect("<= 64"),
            slice,
        }
    }

    /// The live slice (searches, inserts, RAM mode).
    #[must_use]
    pub fn slice(&self) -> &CaRamSlice {
        &self.slice
    }

    /// Mutable access to the live slice.
    pub fn slice_mut(&mut self) -> &mut CaRamSlice {
        &mut self.slice
    }

    /// Writes a control register ("store to the peripheral address").
    ///
    /// Configuration writes are *staged*; they take effect at the commit
    /// write, which rebuilds the array with the new layout and clears it.
    ///
    /// # Errors
    ///
    /// * [`CaRamError::AddressOutOfRange`] — unknown register;
    /// * [`CaRamError::BadConfig`] — unsupported key size, oversized data
    ///   width, or a committed layout that does not fit one slot per row.
    pub fn write_register(&mut self, address: u64, value: u64) -> Result<()> {
        let reg = ControlRegister::from_address(address)
            .ok_or(CaRamError::AddressOutOfRange { address, words: 4 })?;
        match reg {
            ControlRegister::KeyBytes => {
                let bytes = u8::try_from(value)
                    .map_err(|_| CaRamError::BadConfig(format!("key size {value} out of range")))?;
                if !SUPPORTED_KEY_BYTES.contains(&bytes) {
                    return Err(CaRamError::BadConfig(format!(
                        "key size {bytes} bytes unsupported; pick one of {SUPPORTED_KEY_BYTES:?}"
                    )));
                }
                self.staged_key_bytes = bytes;
                Ok(())
            }
            ControlRegister::TernaryEnable => {
                self.staged_ternary = value != 0;
                Ok(())
            }
            ControlRegister::DataBits => {
                let bits = u8::try_from(value)
                    .ok()
                    .filter(|&b| b <= 64)
                    .ok_or_else(|| {
                        CaRamError::BadConfig(format!("data width {value} out of range"))
                    })?;
                self.staged_data_bits = bits;
                Ok(())
            }
            ControlRegister::Commit => self.commit(),
        }
    }

    /// Reads a control register back (staged values; the commit register
    /// reads as the current slot count, a convenient status word).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for an unknown register.
    pub fn read_register(&self, address: u64) -> Result<u64> {
        let reg = ControlRegister::from_address(address)
            .ok_or(CaRamError::AddressOutOfRange { address, words: 4 })?;
        Ok(match reg {
            ControlRegister::KeyBytes => u64::from(self.staged_key_bytes),
            ControlRegister::TernaryEnable => u64::from(self.staged_ternary),
            ControlRegister::DataBits => u64::from(self.staged_data_bits),
            ControlRegister::Commit => u64::from(self.slice.slots_per_row()),
        })
    }

    fn commit(&mut self) -> Result<()> {
        let key_bits = u32::from(self.staged_key_bytes) * 8;
        let layout = RecordLayout::new(
            key_bits,
            self.staged_ternary,
            u32::from(self.staged_data_bits),
        );
        if layout.slot_bits() > self.row_bits {
            return Err(CaRamError::BadConfig(format!(
                "a {}-bit slot does not fit the {}-bit row",
                layout.slot_bits(),
                self.row_bits
            )));
        }
        let slots = self.row_bits / layout.slot_bits();
        if slots > 128 {
            return Err(CaRamError::BadConfig(format!(
                "{slots} slots per row exceeds the simulator's 128-slot auxiliary bitmap"
            )));
        }
        self.slice = CaRamSlice::new(self.rows_log2, self.row_bits, layout);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{SearchKey, TernaryKey};
    use crate::layout::Record;

    fn slice() -> ReconfigurableSlice {
        // 1600-bit rows, as in the prototype.
        ReconfigurableSlice::new(4, 1600, RecordLayout::new(32, false, 0))
    }

    /// 1024-bit rows keep even 1-byte keys within the simulator's 128-slot
    /// auxiliary bitmap (the hardware prototype had no such cap).
    fn narrow_slice() -> ReconfigurableSlice {
        ReconfigurableSlice::new(4, 1024, RecordLayout::new(32, false, 0))
    }

    #[test]
    fn reconfigure_key_size_changes_slot_count() {
        let mut s = slice();
        assert_eq!(s.slice().slots_per_row(), 50); // 1600 / 32
        s.write_register(ControlRegister::KeyBytes as u64, 8)
            .unwrap();
        s.write_register(ControlRegister::Commit as u64, 1).unwrap();
        assert_eq!(s.slice().slots_per_row(), 25); // 1600 / 64
        assert_eq!(s.read_register(ControlRegister::Commit as u64).unwrap(), 25);
    }

    #[test]
    fn staging_without_commit_changes_nothing() {
        let mut s = slice();
        s.write_register(ControlRegister::KeyBytes as u64, 16)
            .unwrap();
        s.write_register(ControlRegister::TernaryEnable as u64, 1)
            .unwrap();
        assert_eq!(s.slice().slots_per_row(), 50);
        assert!(!s.slice().layout().is_ternary());
        assert_eq!(
            s.read_register(ControlRegister::KeyBytes as u64).unwrap(),
            16
        );
    }

    #[test]
    fn commit_clears_contents() {
        let mut s = slice();
        s.slice_mut()
            .append_record(0, &Record::new(TernaryKey::binary(7, 32), 0));
        assert_eq!(s.slice().record_count(), 1);
        s.write_register(ControlRegister::Commit as u64, 1).unwrap();
        assert_eq!(s.slice().record_count(), 0);
    }

    #[test]
    fn ternary_halves_slots_and_enables_masked_keys() {
        let mut s = slice();
        s.write_register(ControlRegister::TernaryEnable as u64, 1)
            .unwrap();
        s.write_register(ControlRegister::Commit as u64, 1).unwrap();
        assert_eq!(s.slice().slots_per_row(), 25); // 64 stored bits per key
        let key = TernaryKey::ternary(0xAB00_0000, 0xFF_FFFF, 32);
        s.slice_mut().append_record(3, &Record::new(key, 0));
        let hit = s.slice().search_bucket(3, &SearchKey::new(0xAB12_3456, 32));
        assert!(hit.is_some());
    }

    #[test]
    fn every_prototype_key_size_is_accepted() {
        let mut s = narrow_slice();
        for bytes in SUPPORTED_KEY_BYTES {
            s.write_register(ControlRegister::KeyBytes as u64, u64::from(bytes))
                .unwrap();
            s.write_register(ControlRegister::Commit as u64, 1).unwrap();
            assert_eq!(
                s.slice().slots_per_row(),
                1024 / (u32::from(bytes) * 8),
                "{bytes} bytes"
            );
        }
    }

    #[test]
    fn slot_count_above_simulator_cap_rejected() {
        let mut s = slice(); // 1600-bit rows: 1-byte keys would need 200 slots
        s.write_register(ControlRegister::KeyBytes as u64, 1)
            .unwrap();
        let err = s
            .write_register(ControlRegister::Commit as u64, 1)
            .unwrap_err();
        assert!(matches!(err, CaRamError::BadConfig(_)));
        assert_eq!(s.slice().slots_per_row(), 50, "old layout stays live");
    }

    #[test]
    fn invalid_configurations_rejected() {
        let mut s = slice();
        // 5-byte keys are not in the supported set.
        assert!(matches!(
            s.write_register(ControlRegister::KeyBytes as u64, 5),
            Err(CaRamError::BadConfig(_))
        ));
        // Unknown register.
        assert!(s.write_register(0x99, 0).is_err());
        assert!(s.read_register(0x99).is_err());
        // Oversized data field.
        assert!(matches!(
            s.write_register(ControlRegister::DataBits as u64, 65),
            Err(CaRamError::BadConfig(_))
        ));
        // A slot larger than the row: 16-byte ternary keys + 64-bit data
        // in a narrow row.
        let mut narrow = ReconfigurableSlice::new(2, 256, RecordLayout::new(32, false, 0));
        narrow
            .write_register(ControlRegister::KeyBytes as u64, 16)
            .unwrap();
        narrow
            .write_register(ControlRegister::TernaryEnable as u64, 1)
            .unwrap();
        narrow
            .write_register(ControlRegister::DataBits as u64, 64)
            .unwrap();
        assert!(matches!(
            narrow.write_register(ControlRegister::Commit as u64, 1),
            Err(CaRamError::BadConfig(_))
        ));
        // The failed commit must leave the old layout live.
        assert_eq!(narrow.slice().slots_per_row(), 8);
    }
}
