//! CA-RAM space allocation — the class-library interface of Sec. 3.2.
//!
//! "Such operations include initializing an empty database,
//! allocating/deallocating CA-RAM space (similar to `malloc()`/`free()`),
//! defining slice membership and role (e.g., use a slice as an overflow
//! area), defining the hash function, declaring a record type and its
//! format, enabling ternary searching ..."
//!
//! [`SlicePool`] owns the physical slice inventory of a CA-RAM memory
//! subsystem (identical slices of one geometry, as fabricated) and hands
//! out [`CaRamTable`]s built over reserved slices. Freeing an allocation
//! returns its slices to the pool. Roles (regular vs overflow/victim
//! slices) are recorded per allocation, mirroring the paper's example of
//! "five slices ... four used to extend the number of rows and the
//! remaining one set aside for storing spilled records".

use crate::error::{CaRamError, Result};
use crate::index::IndexGenerator;
use crate::layout::RecordLayout;
use crate::probe::ProbePolicy;
use crate::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};

/// Handle to an allocation made from a [`SlicePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationId(u64);

/// How the slices of an allocation are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRoles {
    /// Slices holding regular records (the arrangement's slices).
    pub regular: u32,
    /// Slices set aside as a victim/overflow area.
    pub overflow: u32,
}

/// A pool of identical physical CA-RAM slices.
#[derive(Debug)]
pub struct SlicePool {
    rows_log2: u32,
    row_bits: u32,
    total: u32,
    free: u32,
    next_id: u64,
    live: Vec<(AllocationId, SliceRoles)>,
}

impl SlicePool {
    /// Creates a pool of `total` slices of `2^rows_log2 × row_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn new(total: u32, rows_log2: u32, row_bits: u32) -> Self {
        assert!(total > 0, "a pool needs at least one slice");
        Self {
            rows_log2,
            row_bits,
            total,
            free: total,
            next_id: 0,
            live: Vec::new(),
        }
    }

    /// Total slices fabricated.
    #[must_use]
    pub fn total_slices(&self) -> u32 {
        self.total
    }

    /// Slices currently unallocated.
    #[must_use]
    pub fn free_slices(&self) -> u32 {
        self.free
    }

    /// Rows per slice (log2).
    #[must_use]
    pub fn rows_log2(&self) -> u32 {
        self.rows_log2
    }

    /// Bits per row.
    #[must_use]
    pub fn row_bits(&self) -> u32 {
        self.row_bits
    }

    /// Allocates a table over `arrangement.slice_count()` regular slices
    /// plus `overflow_slices` victim slices (0 or 1 supported), defining
    /// the record format, hash function, and probing policy — the whole
    /// Sec. 3.2 configuration bundle.
    ///
    /// # Errors
    ///
    /// * [`CaRamError::TableFull`]-free: allocation failures surface as
    ///   [`CaRamError::BadConfig`] with the shortfall, like a `malloc`
    ///   returning null;
    /// * any error from [`CaRamTable::new`].
    pub fn allocate(
        &mut self,
        layout: RecordLayout,
        arrangement: Arrangement,
        overflow_slices: u32,
        probe: ProbePolicy,
        index: Box<dyn IndexGenerator>,
    ) -> Result<(AllocationId, CaRamTable)> {
        let regular = arrangement.slice_count();
        let wanted = regular + overflow_slices;
        if wanted > self.free {
            return Err(CaRamError::BadConfig(format!(
                "allocation needs {wanted} slices but only {} are free",
                self.free
            )));
        }
        if overflow_slices > 1 {
            return Err(CaRamError::BadConfig(
                "at most one victim slice per allocation is supported".into(),
            ));
        }
        let overflow = if overflow_slices == 1 {
            OverflowPolicy::VictimSlice {
                rows_log2: self.rows_log2,
                row_bits: self.row_bits,
            }
        } else {
            OverflowPolicy::Probe {
                max_steps: 1u32 << self.rows_log2.min(16),
            }
        };
        let config = TableConfig {
            rows_log2: self.rows_log2,
            row_bits: self.row_bits,
            layout,
            arrangement,
            probe,
            overflow,
        };
        let table = CaRamTable::new(config, index)?;
        self.free -= wanted;
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.live.push((
            id,
            SliceRoles {
                regular,
                overflow: overflow_slices,
            },
        ));
        Ok((id, table))
    }

    /// The roles of a live allocation.
    #[must_use]
    pub fn roles(&self, id: AllocationId) -> Option<SliceRoles> {
        self.live.iter().find(|(i, _)| *i == id).map(|(_, r)| *r)
    }

    /// Frees an allocation, returning its slices to the pool (the caller
    /// drops the table; in hardware this is a configuration-storage
    /// update).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::BadConfig`] for an unknown or already-freed
    /// handle (a double free).
    pub fn free(&mut self, id: AllocationId) -> Result<()> {
        let Some(pos) = self.live.iter().position(|(i, _)| *i == id) else {
            return Err(CaRamError::BadConfig(format!(
                "allocation {id:?} is not live (double free?)"
            )));
        };
        let (_, roles) = self.live.swap_remove(pos);
        self.free += roles.regular + roles.overflow;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RangeSelect;
    use crate::key::{SearchKey, TernaryKey};
    use crate::layout::Record;

    fn pool() -> SlicePool {
        SlicePool::new(8, 4, 256) // 8 slices of 16 rows x 256 bits
    }

    fn layout() -> RecordLayout {
        RecordLayout::new(16, false, 8)
    }

    #[test]
    fn allocate_use_free_cycle() {
        let mut pool = pool();
        assert_eq!(pool.free_slices(), 8);
        let (id, mut table) = pool
            .allocate(
                layout(),
                Arrangement::Horizontal(2),
                0,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 4)),
            )
            .unwrap();
        assert_eq!(pool.free_slices(), 6);
        assert_eq!(
            pool.roles(id),
            Some(SliceRoles {
                regular: 2,
                overflow: 0
            })
        );
        table
            .insert(Record::new(TernaryKey::binary(0x42, 16), 1))
            .unwrap();
        assert!(table.search(&SearchKey::new(0x42, 16)).hit.is_some());
        pool.free(id).unwrap();
        assert_eq!(pool.free_slices(), 8);
        assert_eq!(pool.roles(id), None);
    }

    #[test]
    fn pool_exhaustion_is_a_clean_failure() {
        let mut pool = pool();
        let (_a, _t1) = pool
            .allocate(
                layout(),
                Arrangement::Horizontal(5),
                0,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 4)),
            )
            .unwrap();
        let err = pool
            .allocate(
                layout(),
                Arrangement::Horizontal(4),
                0,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 4)),
            )
            .unwrap_err();
        assert!(matches!(err, CaRamError::BadConfig(_)));
        assert_eq!(pool.free_slices(), 3, "failed allocation takes nothing");
    }

    #[test]
    fn victim_slice_role_is_tracked_and_functional() {
        let mut pool = pool();
        // "five slices ... four to extend the rows and one for spills".
        let (id, mut table) = pool
            .allocate(
                layout(),
                Arrangement::Vertical(4),
                1,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 6)),
            )
            .unwrap();
        assert_eq!(pool.free_slices(), 3);
        assert_eq!(
            pool.roles(id),
            Some(SliceRoles {
                regular: 4,
                overflow: 1
            })
        );
        // Overfill one bucket; the victim slice absorbs the spill.
        let slots = table.slots_per_bucket();
        for i in 0..=slots {
            let key = (u128::from(i) << 8) | 0x05;
            table
                .insert(Record::new(TernaryKey::binary(key, 16), u64::from(i)))
                .unwrap();
        }
        assert_eq!(table.overflow_count(), 1);
        pool.free(id).unwrap();
        assert_eq!(pool.free_slices(), 8);
    }

    #[test]
    fn double_free_rejected() {
        let mut pool = pool();
        let (id, _t) = pool
            .allocate(
                layout(),
                Arrangement::Horizontal(1),
                0,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 4)),
            )
            .unwrap();
        pool.free(id).unwrap();
        assert!(pool.free(id).is_err());
    }

    #[test]
    fn independent_allocations_coexist() {
        let mut pool = pool();
        let (_, mut a) = pool
            .allocate(
                layout(),
                Arrangement::Horizontal(1),
                0,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 4)),
            )
            .unwrap();
        let (_, mut b) = pool
            .allocate(
                RecordLayout::new(32, true, 0),
                Arrangement::Horizontal(2),
                0,
                ProbePolicy::Linear,
                Box::new(RangeSelect::new(0, 4)),
            )
            .unwrap();
        a.insert(Record::new(TernaryKey::binary(1, 16), 0)).unwrap();
        // Don't-care bits clear of the hash field (bits 0..4), so one copy.
        b.insert(Record::new(TernaryKey::ternary(0, 0xFF00, 32), 0))
            .unwrap();
        assert_eq!(a.record_count(), 1);
        assert_eq!(b.record_count(), 1);
        assert_eq!(pool.free_slices(), 5);
    }
}
