//! Lookup-traffic models (Sec. 4.1).
//!
//! The paper had no IP traces of core routers, so it evaluates a *uniform*
//! access pattern and a *skewed* one (citing the performance model of
//! Narlikar & Zane \[22\]). We model the skewed pattern as a Zipf popularity
//! law over records: frequency of the rank-`r` record ∝ `1/r^s`.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An access-frequency model over `n` records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Every record equally likely (`AMALu`).
    Uniform,
    /// Zipf with exponent `s`, ranks assigned randomly to records
    /// (`AMALs`).
    Zipf {
        /// The Zipf exponent (1.0 is the classical law).
        s: f64,
    },
}

/// Per-record access frequencies (normalized to sum to 1) for `n` records
/// under `pattern`. Rank-to-record assignment is randomized by `seed` so
/// popularity is uncorrelated with key values.
///
/// # Panics
///
/// Panics if `n` is zero or a Zipf exponent is not finite and positive.
#[must_use]
pub fn frequencies(n: usize, pattern: AccessPattern, seed: u64) -> Vec<f64> {
    assert!(n > 0, "need at least one record");
    match pattern {
        AccessPattern::Uniform => {
            #[allow(clippy::cast_precision_loss)]
            let f = 1.0 / n as f64;
            vec![f; n]
        }
        AccessPattern::Zipf { s } => {
            assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
            let mut rng = SmallRng::seed_from_u64(seed);
            // Zipf weights by rank.
            #[allow(clippy::cast_precision_loss)]
            let mut w: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
            let total: f64 = w.iter().sum();
            for x in &mut w {
                *x /= total;
            }
            // Randomly assign ranks to record indices (Fisher-Yates).
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                w.swap(i, j);
            }
            w
        }
    }
}

/// Samples `count` record indices according to `frequencies` — a synthetic
/// lookup trace for throughput simulations.
///
/// # Panics
///
/// Panics if `frequencies` is empty or contains a negative weight.
#[must_use]
pub fn sample_trace(frequencies: &[f64], count: usize, seed: u64) -> Vec<usize> {
    let picker = WeightedIndex::new(frequencies).expect("frequencies must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| picker.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_frequencies_are_flat_and_normalized() {
        let f = frequencies(100, AccessPattern::Uniform, 0);
        assert_eq!(f.len(), 100);
        assert!(f.iter().all(|&x| (x - 0.01).abs() < 1e-12));
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_frequencies_are_skewed_and_normalized() {
        let f = frequencies(1000, AccessPattern::Zipf { s: 1.0 }, 42);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut sorted = f.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top-10 records carry a disproportionate share.
        let top10: f64 = sorted[..10].iter().sum();
        assert!(top10 > 0.3, "top-10 share {top10:.3}");
        // Randomized assignment: the hottest record is rarely index 0.
        let f2 = frequencies(1000, AccessPattern::Zipf { s: 1.0 }, 43);
        assert_ne!(f, f2);
    }

    #[test]
    fn trace_sampling_respects_weights() {
        let f = vec![0.9, 0.05, 0.05];
        let t = sample_trace(&f, 10_000, 7);
        let zeros = t.iter().filter(|&&i| i == 0).count();
        assert!(zeros > 8_500, "got {zeros}");
        assert!(t.iter().all(|&i| i < 3));
    }

    #[test]
    fn trace_deterministic_by_seed() {
        let f = frequencies(50, AccessPattern::Zipf { s: 1.2 }, 1);
        assert_eq!(sample_trace(&f, 100, 9), sample_trace(&f, 100, 9));
        assert_ne!(sample_trace(&f, 100, 9), sample_trace(&f, 100, 10));
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_frequencies_rejected() {
        let _ = frequencies(0, AccessPattern::Uniform, 0);
    }
}
