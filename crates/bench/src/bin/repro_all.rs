//! Runs the entire reproduction suite in sequence: Tables 1–3, Figures
//! 6–8, the bandwidth analysis, and the software baseline — each as a
//! child process so their CLI flags keep working.
//!
//! Usage: `repro_all [--entries N] [--prefixes N]`
//! (`--entries` scales the trigram experiments; the default is the paper's
//! full 5,385,231.)

use std::process::Command;

use ca_ram_bench::{BenchError, Cli, Result};

fn run(bin: &str, args: &[String]) -> Result<()> {
    println!("\n==================== {bin} ====================\n");
    let exe = std::env::current_exe().map_err(|e| BenchError::Child {
        bin: bin.to_string(),
        message: format!("current executable path: {e}"),
    })?;
    let dir = exe.parent().ok_or_else(|| BenchError::Child {
        bin: bin.to_string(),
        message: "executable has no parent directory".to_string(),
    })?;
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .map_err(|e| BenchError::Child {
            bin: bin.to_string(),
            message: format!("failed to launch: {e}"),
        })?;
    if status.success() {
        Ok(())
    } else {
        Err(BenchError::Child {
            bin: bin.to_string(),
            message: format!("exited with {status}"),
        })
    }
}

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let tri_args = cli.passthrough(&["entries", "seed"]);
    let ip_args = cli.passthrough(&["prefixes", "seed"]);

    run("table1", &[])?;
    run("table2", &ip_args)?;
    run("table3", &tri_args)?;
    run("fig6", &[])?;
    run("fig7", &tri_args)?;
    run("fig8", &[])?;
    run("bandwidth", &[])?;
    run("software_baseline", &[])?;
    run("ablation", &ip_args)?;
    run("updates", &[])?;
    run("explore", &ip_args)?;
    run("perf_smoke", &ip_args)?;
    println!("\nAll reproduction targets completed.");
    Ok(())
}
