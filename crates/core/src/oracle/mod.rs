//! Model-based differential testing of every [`SearchEngine`].
//!
//! The paper's functional claim (Secs. 2.1, 3.1) is that CA-RAM answers
//! exactly like a hash table or CAM would — so the reproduction carries an
//! executable specification and checks every substrate against it:
//!
//! * [`ReferenceModel`] ([`model`]) — a naive `Vec`-of-records oracle with
//!   masked ternary compare and LPM (max-care) priority, sharing no code
//!   with the bit-packed array or the probe machinery;
//! * [`Op`] / [`parse_stream`] / [`format_stream`] — a serializable
//!   operation alphabet (insert / sorted insert / delete / search / bulk
//!   update / key-width reconfiguration) so repro streams can be checked in
//!   as plain-text fixtures;
//! * [`OpStreamGen`] ([`gen`]) — a deterministic, seed-driven generator of
//!   adversarial streams: bucket-saturating key clusters, duplicate keys,
//!   mask-boundary keys, delete-then-reinsert churn, across every
//!   [`crate::config_regs::SUPPORTED_KEY_BYTES`] width;
//! * [`EngineCase`] / [`run_case`] ([`diff`]) — replays one stream against
//!   an engine and the model in lockstep, reports the first divergence as a
//!   [`DivergenceReport`], and ddmin-minimizes the repro stream.
//!
//! The harness drives engines only through the object-safe
//! [`SearchEngine`] trait, so one stream exercises CA-RAM design points,
//! the CAM baselines, and the software indexes identically. Engine-specific
//! tie-breaking (equal-care matches, duplicate keys) is tolerated via the
//! model's accepted-data sets rather than a single golden answer.
//!
//! [`SearchEngine`]: crate::engine::SearchEngine

pub mod diff;
pub mod gen;
pub mod model;

pub use diff::{
    replay, replay_kernel_pair, run_case, run_kernel_case, Divergence, DivergenceKind,
    DivergenceReport, EngineCase,
};
pub use gen::{standard_scenarios, OpStreamGen, Profile, Scenario};
pub use model::{Expected, ReferenceModel};

use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;

/// One operation of a differential stream.
///
/// The alphabet is engine-neutral: everything maps onto the object-safe
/// [`crate::engine::SearchEngine`] surface (bulk update is delete +
/// reinsert; reconfiguration rebuilds the engine at a new key width, with
/// contents destroyed as a [`crate::config_regs::ControlRegister`] commit
/// does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Append-style insert.
    Insert(Record),
    /// Priority-maintaining insert
    /// ([`crate::engine::SearchEngine::insert_sorted`]).
    InsertSorted(Record),
    /// Remove every copy of an exactly-equal stored key.
    Delete(TernaryKey),
    /// One lookup, checked against the model's accepted set.
    Search(SearchKey),
    /// Bulk update: rebind every copy of `key` to `data` (delete +
    /// reinsert through the trait).
    Update {
        /// The stored key to rebind.
        key: TernaryKey,
        /// Its new payload.
        data: u64,
    },
    /// Config-register write: rebuild the engine for `key_bits`-wide keys.
    /// Destroys contents on both the engine and the model.
    Reconfigure {
        /// The new key width in bits.
        key_bits: u32,
    },
}

impl Op {
    /// The fixture-file line for this op (see [`parse_stream`]).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Op::Insert(r) => format!(
                "insert {} {:x} {:x} {:x}",
                r.key.bits(),
                r.key.value(),
                r.key.dont_care(),
                r.data
            ),
            Op::InsertSorted(r) => format!(
                "insert_sorted {} {:x} {:x} {:x}",
                r.key.bits(),
                r.key.value(),
                r.key.dont_care(),
                r.data
            ),
            Op::Delete(k) => format!("delete {} {:x} {:x}", k.bits(), k.value(), k.dont_care()),
            Op::Search(k) => format!("search {} {:x} {:x}", k.bits(), k.value(), k.dont_care()),
            Op::Update { key, data } => format!(
                "update {} {:x} {:x} {:x}",
                key.bits(),
                key.value(),
                key.dont_care(),
                data
            ),
            Op::Reconfigure { key_bits } => format!("reconfigure {key_bits}"),
        }
    }

    /// Parses one fixture line; `None` for blank lines and `#` comments.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field on any other line.
    pub fn parse_line(line: &str) -> core::result::Result<Option<Op>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut it = line.split_whitespace();
        let Some(word) = it.next() else {
            return Ok(None);
        };
        let mut dec = |what: &str| -> core::result::Result<u32, String> {
            it.next()
                .ok_or_else(|| format!("missing {what} in {line:?}"))?
                .parse::<u32>()
                .map_err(|e| format!("bad {what} in {line:?}: {e}"))
        };
        let bits = match word {
            "reconfigure" => {
                let key_bits = dec("key width")?;
                return Ok(Some(Op::Reconfigure { key_bits }));
            }
            _ => dec("key width")?,
        };
        let mut hex = |what: &str| -> core::result::Result<u128, String> {
            u128::from_str_radix(
                it.next()
                    .ok_or_else(|| format!("missing {what} in {line:?}"))?,
                16,
            )
            .map_err(|e| format!("bad {what} in {line:?}: {e}"))
        };
        let op = match word {
            "insert" | "insert_sorted" | "update" => {
                let value = hex("value")?;
                let dc = hex("mask")?;
                let data = hex("data")?;
                let data = u64::try_from(data).map_err(|_| format!("data too wide in {line:?}"))?;
                match word {
                    "insert" => Op::Insert(Record::new(TernaryKey::ternary(value, dc, bits), data)),
                    "insert_sorted" => {
                        Op::InsertSorted(Record::new(TernaryKey::ternary(value, dc, bits), data))
                    }
                    _ => Op::Update {
                        key: TernaryKey::ternary(value, dc, bits),
                        data,
                    },
                }
            }
            "delete" => {
                let value = hex("value")?;
                let dc = hex("mask")?;
                Op::Delete(TernaryKey::ternary(value, dc, bits))
            }
            "search" => {
                let value = hex("value")?;
                let dc = hex("mask")?;
                Op::Search(SearchKey::with_mask(value, dc, bits))
            }
            other => return Err(format!("unknown op {other:?} in {line:?}")),
        };
        Ok(Some(op))
    }
}

/// Serializes a stream as fixture text, one op per line.
#[must_use]
pub fn format_stream(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&op.to_line());
        out.push('\n');
    }
    out
}

/// Parses a fixture file produced by [`format_stream`] (or written by
/// hand); blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns the first malformed line's description.
pub fn parse_stream(text: &str) -> core::result::Result<Vec<Op>, String> {
    let mut ops = Vec::new();
    for line in text.lines() {
        if let Some(op) = Op::parse_line(line)? {
            ops.push(op);
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_round_trips_through_text() {
        let ops = vec![
            Op::Insert(Record::new(TernaryKey::ternary(0x0A00, 0xFF, 16), 7)),
            Op::InsertSorted(Record::new(TernaryKey::binary(0xBEEF, 16), 8)),
            Op::Delete(TernaryKey::ternary(0x0A00, 0xFF, 16)),
            Op::Search(SearchKey::with_mask(0x0A12, 0x0F, 16)),
            Op::Update {
                key: TernaryKey::binary(0xBEEF, 16),
                data: 9,
            },
            Op::Reconfigure { key_bits: 128 },
        ];
        let text = format_stream(&ops);
        assert_eq!(parse_stream(&text).expect("round trip"), ops);
    }

    #[test]
    fn comments_and_blanks_skip_and_errors_name_the_line() {
        let parsed = parse_stream("# header\n\nsearch 8 aa 0\n").expect("valid");
        assert_eq!(parsed, vec![Op::Search(SearchKey::new(0xAA, 8))]);
        assert!(parse_stream("frobnicate 8 0 0").is_err());
        assert!(parse_stream("insert 8 zz 0 0").is_err());
        assert!(parse_stream("insert 8 aa 0").is_err());
    }
}
