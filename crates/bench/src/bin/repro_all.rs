//! Runs the entire reproduction suite in sequence: Tables 1–3, Figures
//! 6–8, the bandwidth analysis, the software baseline, the telemetry
//! sweep, and a short seeded differential fuzz pass over every engine —
//! each as a child process so their CLI flags keep working.
//!
//! Each child's output is echoed live-ish (after the child exits) and
//! accumulated; the full transcript is written to `repro_output.txt`
//! atomically (temp file + rename), so an interrupted run never leaves a
//! truncated transcript behind.
//!
//! Usage: `repro_all [--entries N] [--prefixes N]`
//! (`--entries` scales the trigram experiments; the default is the paper's
//! full 5,385,231.)

use std::process::Command;

use ca_ram_bench::{write_text_atomic, BenchError, Cli, Result};

fn run(bin: &str, args: &[String], transcript: &mut String) -> Result<()> {
    let banner = format!("\n==================== {bin} ====================\n");
    println!("{banner}");
    transcript.push_str(&banner);
    transcript.push('\n');
    let exe = std::env::current_exe().map_err(|e| BenchError::Child {
        bin: bin.to_string(),
        message: format!("current executable path: {e}"),
    })?;
    let dir = exe.parent().ok_or_else(|| BenchError::Child {
        bin: bin.to_string(),
        message: "executable has no parent directory".to_string(),
    })?;
    let output = Command::new(dir.join(bin))
        .args(args)
        .output()
        .map_err(|e| BenchError::Child {
            bin: bin.to_string(),
            message: format!("failed to launch: {e}"),
        })?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    print!("{stdout}");
    transcript.push_str(&stdout);
    if !output.stderr.is_empty() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        eprint!("{stderr}");
        transcript.push_str(&stderr);
    }
    if output.status.success() {
        Ok(())
    } else {
        Err(BenchError::Child {
            bin: bin.to_string(),
            message: format!("exited with {}", output.status),
        })
    }
}

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let tri_args = cli.passthrough(&["entries", "seed"]);
    let ip_args = cli.passthrough(&["prefixes", "seed"]);
    // Keep the differential sweep inside the suite's time budget: a
    // shorter per-scenario stream than the CI gate, same seeding.
    let mut fuzz_args = cli.passthrough(&["seed", "ops", "time-box-ms"]);
    if !fuzz_args.iter().any(|a| a == "--ops") {
        fuzz_args.extend(["--ops".to_string(), "5000".to_string()]);
    }

    let mut transcript = String::new();
    let result = (|| -> Result<()> {
        run("table1", &[], &mut transcript)?;
        run("table2", &ip_args, &mut transcript)?;
        run("table3", &tri_args, &mut transcript)?;
        run("fig6", &[], &mut transcript)?;
        run("fig7", &tri_args, &mut transcript)?;
        run("fig8", &[], &mut transcript)?;
        run("bandwidth", &[], &mut transcript)?;
        run("software_baseline", &[], &mut transcript)?;
        run("ablation", &ip_args, &mut transcript)?;
        run("updates", &[], &mut transcript)?;
        run("explore", &ip_args, &mut transcript)?;
        run("perf_smoke", &ip_args, &mut transcript)?;
        run("telemetry_report", &ip_args, &mut transcript)?;
        run("serve_bench", &["--smoke".to_string()], &mut transcript)?;
        run("fuzz_engines", &fuzz_args, &mut transcript)?;
        Ok(())
    })();

    // Persist whatever ran, even on a failing child, then surface the
    // child's error.
    if result.is_ok() {
        transcript.push_str("\nAll reproduction targets completed.\n");
    }
    write_text_atomic("repro_output.txt", &transcript)?;
    if result.is_ok() {
        println!("\nAll reproduction targets completed.");
        println!("(wrote repro_output.txt)");
    }
    result
}
