//! The flight recorder: a fixed-size, lock-free, overwrite-oldest ring
//! of recent events, readable at any time without stopping writers.
//!
//! This is the aircraft-style counterpart to [`super::trace::TraceBuffer`]
//! (which is a bounded *drop-newest* test sink behind a mutex): the
//! recorder keeps the **last** `capacity` events, overwriting the oldest,
//! so that when an anomaly fires (SLO breach, shed storm, shutdown with
//! orphan risk) the moments leading up to it are still in memory.
//!
//! The design is a ticketed seqlock ring. Writers claim a monotonically
//! increasing ticket with one relaxed `fetch_add`; ticket `t` owns slot
//! `t % capacity` for its generation, waits for the previous generation's
//! writer (`t - capacity`) to finish, marks the slot odd (in flight),
//! writes the value, and publishes `2t` with a release store. Readers
//! snapshot slots with acquire/validate loads and volatile value reads,
//! skipping slots that are mid-write or change underneath them — the
//! standard seqlock contract, same as the service layer's `EngineCell`.
//! Events must be `Copy` so a torn read that fails validation is merely
//! discarded bytes, never a dropped destructor.

use core::mem::MaybeUninit;
use core::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::cell::UnsafeCell;

struct Slot<T> {
    /// `2t` = holds the completed record for ticket `t`; odd = a writer
    /// is mid-write. Initialised to `2(i - capacity)` (wrapping) so the
    /// first-generation writer for ticket `i` sees its predecessor done.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Fixed-capacity lock-free overwrite ring of `Copy` events.
pub struct FlightRecorder<T> {
    slots: Box<[Slot<T>]>,
    head: AtomicU64,
}

// Safety: slot values are only handed across threads as `Copy` bytes
// validated by the seqlock protocol; no references escape.
unsafe impl<T: Copy + Send> Send for FlightRecorder<T> {}
unsafe impl<T: Copy + Send> Sync for FlightRecorder<T> {}

impl<T: Copy> FlightRecorder<T> {
    /// Creates a recorder holding the most recent `capacity` events
    /// (rounded up to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let cap = capacity as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i.wrapping_sub(cap).wrapping_mul(2)),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Events lost to overwriting so far.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records an event, overwriting the oldest if the ring is full.
    /// Lock-free: one ticket `fetch_add` plus a seqlocked slot write; a
    /// writer only spins if the writer it is lapping (one full ring ago)
    /// is still mid-write.
    pub fn record(&self, value: T) {
        let cap = self.slots.len() as u64;
        let ticket = self.head.fetch_add(1, Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = &self.slots[(ticket % cap) as usize];
        let prev_done = ticket.wrapping_sub(cap).wrapping_mul(2);
        while slot.seq.load(Acquire) != prev_done {
            core::hint::spin_loop();
        }
        slot.seq.store(ticket.wrapping_mul(2) + 1, Relaxed);
        // Order the odd marker before the value bytes for readers; the
        // value itself moves as a volatile store so the compiler cannot
        // hoist it above the marker.
        core::sync::atomic::fence(Release);
        unsafe {
            core::ptr::write_volatile((*slot.value.get()).as_mut_ptr(), value);
        }
        slot.seq.store(ticket.wrapping_mul(2), Release);
    }

    /// A consistent copy of the current contents, oldest first, each
    /// paired with its ticket (`recorded()`-relative sequence number).
    /// Slots that are mid-write or overwritten during the scan are
    /// skipped rather than torn.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let head = self.head.load(Acquire);
        let mut out: Vec<(u64, T)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.seq.load(Acquire);
            if before & 1 == 1 {
                continue; // mid-write
            }
            let ticket = before.wrapping_div(2);
            // Skip never-written slots (their init seq decodes to a
            // ticket from the wrapped "generation -1").
            if ticket >= head {
                continue;
            }
            let value = unsafe { core::ptr::read_volatile((*slot.value.get()).as_ptr()) };
            core::sync::atomic::fence(Acquire);
            if slot.seq.load(Relaxed) != before {
                continue; // overwritten mid-read
            }
            out.push((ticket, value));
        }
        out.sort_unstable_by_key(|(ticket, _)| *ticket);
        out
    }
}

impl<T: Copy> core::fmt::Debug for FlightRecorder<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_snapshots_nothing() {
        let ring: FlightRecorder<u64> = FlightRecorder::new(4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.recorded(), 0);
        assert_eq!(ring.overwritten(), 0);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn keeps_the_most_recent_capacity_events() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u64 {
            ring.record(i * 100);
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.overwritten(), 6);
        let snap = ring.snapshot();
        assert_eq!(
            snap,
            vec![(6, 600), (7, 700), (8, 800), (9, 900)],
            "oldest-first, ticket-tagged"
        );
    }

    #[test]
    fn partial_fill_preserves_order() {
        let ring = FlightRecorder::new(8);
        for i in 0..3u64 {
            ring.record(i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn concurrent_writers_never_tear_records() {
        use std::sync::Arc;
        // Encode writer id + payload redundantly: a torn read mixing two
        // records would break value.0 * 1_000_003 + value.1 == value.2.
        let ring: Arc<FlightRecorder<(u64, u64, u64)>> = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        ring.record((w, i, w * 1_000_003 + i));
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for (_, (w, i, check)) in ring.snapshot() {
                assert_eq!(w * 1_000_003 + i, check, "torn record");
            }
        }
        for handle in writers {
            handle.join().unwrap();
        }
        assert_eq!(ring.recorded(), 20_000);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        for (_, (w, i, check)) in snap {
            assert_eq!(w * 1_000_003 + i, check);
        }
    }
}
