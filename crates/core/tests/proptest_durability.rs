//! Durability property tests: arbitrary corruption of the on-disk state
//! — the WAL tail truncated at any byte, or any single bit flipped in
//! any file — must never panic the recovery path. Recovery either
//! succeeds, in which case the recovered record list is *exactly* the
//! state after some prefix of the logged operations (torn-tail
//! semantics: a frame is applied atomically or not at all), or it fails
//! with a typed [`CaRamError`].
//!
//! This is the adversarial complement to the crash-injection sweep: the
//! sweep cuts at byte boundaries a real crash can produce, while these
//! cases also flip bits inside committed frames, the segment header, the
//! table superblock, and (when a checkpoint ran) the snapshot image —
//! silent-corruption shapes the CRC framing must convert into clean
//! refusals rather than undefined behaviour.
//!
//! [`CaRamError`]: ca_ram_core::error::CaRamError

use std::path::{Path, PathBuf};

use ca_ram_core::key::TernaryKey;
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::storage::durable::unique_temp_dir;
use ca_ram_core::storage::{DurableOptions, DurableTable, IndexSpec, SyncPolicy, TableSpec};
use ca_ram_core::table::{Arrangement, OverflowPolicy, TableConfig};
use proptest::prelude::*;

const KEY_BITS: u32 = 32;

fn spec() -> TableSpec {
    TableSpec {
        config: TableConfig {
            rows_log2: 4,
            row_bits: 1024,
            layout: RecordLayout::new(KEY_BITS, true, 32),
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe {
                max_steps: u32::MAX,
            },
        },
        index: IndexSpec::RangeSelect {
            low: KEY_BITS - 4,
            count: 4,
        },
    }
}

fn opts() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::Flush,
        auto_commit: false,
        ..DurableOptions::default()
    }
}

/// Removes the scratch directory when a case finishes (pass or fail —
/// a failing case's diagnostics are in the proptest report, not the dir).
struct DirGuard(PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The logical state (value, data per record, in insertion order) after
/// applying one more op to `state`.
fn apply(state: &mut Vec<(u128, u64)>, op: &LoggedOp) {
    match *op {
        LoggedOp::Insert(value, data) => state.push((value, data)),
        LoggedOp::Delete(value) => state.retain(|&(v, _)| v != value),
    }
}

enum LoggedOp {
    Insert(u128, u64),
    Delete(u128),
}

/// Lists every regular file under `dir` (the superblock, WAL segments,
/// snapshots), sorted for determinism.
fn files_in(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("scratch dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

/// Builds a durable table from generated ops (committing every
/// `commit_every`, optionally checkpointing once), corrupts one file as
/// directed, and checks the recovery contract.
#[allow(clippy::cast_possible_truncation)]
fn check_corruption(
    raw_ops: &[(u8, u16)],
    commit_every: usize,
    checkpoint_mid: bool,
    file_sel: usize,
    mutation_sel: u8,
    pos_sel: usize,
) -> Result<(), TestCaseError> {
    let dir = unique_temp_dir("proptest_dur");
    let _guard = DirGuard(dir.clone());
    let mut table =
        DurableTable::create(&dir, &spec(), opts()).expect("create in fresh scratch dir");

    // Replay the generated ops, tracking the state after every logged op:
    // any of these prefixes is a legal recovery outcome.
    let mut live: Vec<u128> = Vec::new();
    let mut state: Vec<(u128, u64)> = Vec::new();
    let mut states: Vec<Vec<(u128, u64)>> = vec![state.clone()];
    for (i, &(kind, v)) in raw_ops.iter().enumerate() {
        let op = if kind % 4 == 3 && !live.is_empty() {
            let victim = live[usize::from(v) % live.len()];
            live.retain(|&x| x != victim);
            LoggedOp::Delete(victim)
        } else {
            // Distinct by construction: the op index rides the high bits.
            let value = (u128::try_from(i).unwrap() << 16) | u128::from(v);
            live.push(value);
            LoggedOp::Insert(value, u64::from(v))
        };
        match op {
            LoggedOp::Insert(value, data) => {
                table
                    .insert(Record::new(TernaryKey::binary(value, KEY_BITS), data))
                    .expect("table sized for the op budget");
            }
            LoggedOp::Delete(value) => {
                table
                    .delete(&TernaryKey::binary(value, KEY_BITS))
                    .expect("delete logs cleanly");
            }
        }
        apply(&mut state, &op);
        states.push(state.clone());
        if (i + 1) % commit_every == 0 {
            table.commit().expect("commit");
        }
        if checkpoint_mid && i == raw_ops.len() / 2 {
            table.checkpoint().expect("checkpoint");
        }
    }
    table.commit().expect("final commit");
    drop(table);

    // Corrupt one file: truncate at an arbitrary byte or flip one bit.
    let files = files_in(&dir);
    let target = &files[file_sel % files.len()];
    let mut bytes = std::fs::read(target).expect("read target");
    let verb = if mutation_sel % 2 == 0 || bytes.is_empty() {
        let cut = pos_sel % (bytes.len() + 1);
        bytes.truncate(cut);
        format!("truncate to {cut}")
    } else {
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= 1 << (mutation_sel % 8);
        format!("flip bit {} of byte {pos}", mutation_sel % 8)
    };
    std::fs::write(target, &bytes).expect("write corrupted file");

    // The contract: no panic ever; Ok implies an exact op-prefix state.
    match DurableTable::open(&dir, opts()) {
        Ok(recovered) => {
            let got: Vec<(u128, u64)> = recovered
                .records()
                .iter()
                .map(|r| (r.key.value(), r.data))
                .collect();
            prop_assert!(
                states.contains(&got),
                "after {verb} of {:?}, recovered {} records matching no op prefix",
                target.file_name(),
                got.len()
            );
        }
        Err(_typed) => {} // A clean refusal is always acceptable.
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WAL-only lifetimes: commits but no checkpoint, so the corruption
    /// lands in the superblock or the single live segment.
    #[test]
    fn corrupted_wal_recovers_a_prefix_or_fails_typed(
        raw_ops in prop::collection::vec((any::<u8>(), any::<u16>()), 1..48),
        commit_every in 1usize..8,
        file_sel in any::<usize>(),
        mutation_sel in any::<u8>(),
        pos_sel in any::<usize>(),
    ) {
        check_corruption(&raw_ops, commit_every, false, file_sel, mutation_sel, pos_sel)?;
    }

    /// Checkpointed lifetimes: a snapshot image and a post-checkpoint
    /// segment both exist, so the corruption can hit either recovery
    /// source.
    #[test]
    fn corrupted_checkpoint_state_recovers_a_prefix_or_fails_typed(
        raw_ops in prop::collection::vec((any::<u8>(), any::<u16>()), 8..48),
        commit_every in 1usize..8,
        file_sel in any::<usize>(),
        mutation_sel in any::<u8>(),
        pos_sel in any::<usize>(),
    ) {
        check_corruption(&raw_ops, commit_every, true, file_sel, mutation_sel, pos_sel)?;
    }
}
