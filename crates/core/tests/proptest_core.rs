//! Property-based tests for the bit-level substrate of `ca-ram-core`:
//! packing round-trips, match-processor equivalence with a naive reference,
//! and RAM-mode/search consistency.

use ca_ram_core::array::MemoryArray;
use ca_ram_core::bits::{low_mask, read_bits, write_bits};
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::matchproc::MatchProcessorBank;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bit_fields_round_trip(
        offset in 0usize..192,
        width in 0u32..=128,
        value in any::<u128>(),
        backdrop in any::<u64>(),
    ) {
        let mut words = vec![backdrop; 5];
        prop_assume!(offset + width as usize <= words.len() * 64);
        let original = words.clone();
        write_bits(&mut words, offset, width, value);
        // The field reads back (truncated to width)...
        prop_assert_eq!(read_bits(&words, offset, width), value & low_mask(width));
        // ...and every bit outside the field is untouched.
        for probe in 0..(words.len() * 64) {
            if probe >= offset && probe < offset + width as usize {
                continue;
            }
            prop_assert_eq!(
                read_bits(&words, probe, 1),
                read_bits(&original, probe, 1),
                "bit {} disturbed", probe
            );
        }
    }

    #[test]
    fn adjacent_fields_do_not_interfere(
        widths in prop::collection::vec(1u32..48, 1..6),
        values in prop::collection::vec(any::<u128>(), 6),
    ) {
        let mut words = vec![0u64; 8];
        let mut offset = 0usize;
        let fields: Vec<(usize, u32, u128)> = widths
            .iter()
            .zip(&values)
            .map(|(&w, &v)| {
                let f = (offset, w, v & low_mask(w));
                offset += w as usize;
                f
            })
            .collect();
        for &(o, w, v) in &fields {
            write_bits(&mut words, o, w, v);
        }
        for &(o, w, v) in &fields {
            prop_assert_eq!(read_bits(&words, o, w), v);
        }
    }

    #[test]
    fn record_layout_round_trips(
        key_bits in 1u32..=128,
        ternary in any::<bool>(),
        data_bits in 0u32..=64,
        raw_value in any::<u128>(),
        raw_mask in any::<u128>(),
        raw_data in any::<u64>(),
        slot in 0u32..4,
    ) {
        let layout = RecordLayout::new(key_bits, ternary, data_bits);
        let value = raw_value & low_mask(key_bits);
        let mask = if ternary { raw_mask & low_mask(key_bits) } else { 0 };
        let data = if data_bits == 64 { raw_data } else { raw_data & ((1u64 << data_bits) - 1) };
        let record = Record::new(TernaryKey::ternary(value, mask, key_bits), data);
        let mut row = vec![0u64; (layout.slot_bits() as usize * 4).div_ceil(64)];
        layout.encode_slot(&mut row, slot, &record);
        prop_assert_eq!(layout.decode_slot(&row, slot), record);
    }

    #[test]
    fn match_processor_equals_naive_reference(
        stored in prop::collection::vec((any::<u32>(), any::<u32>()), 1..20),
        probe_value in any::<u32>(),
        probe_mask in any::<u32>(),
    ) {
        let layout = RecordLayout::new(32, true, 0);
        let slots = u32::try_from(stored.len()).expect("<= 20");
        let mut row = vec![0u64; (layout.slot_bits() as usize * stored.len()).div_ceil(64)];
        let mut valid = 0u128;
        let mut records = Vec::new();
        for (i, &(v, m)) in stored.iter().enumerate() {
            let rec = Record::new(
                TernaryKey::ternary(u128::from(v), u128::from(m), 32),
                0,
            );
            #[allow(clippy::cast_possible_truncation)]
            layout.encode_slot(&mut row, i as u32, &rec);
            valid |= 1 << i;
            records.push(rec);
        }
        let bank = MatchProcessorBank::new(layout);
        let search = SearchKey::with_mask(
            u128::from(probe_value & !probe_mask),
            u128::from(probe_mask),
            32,
        );
        let hw = bank.match_row(&row, valid, slots, &search);
        // Naive reference: first stored key matching under ternary rules.
        let reference = records.iter().position(|r| r.key.matches(&search));
        #[allow(clippy::cast_possible_truncation)]
        let reference = reference.map(|i| i as u32);
        prop_assert_eq!(hw.first_match, reference);
        // The match vector is exactly the set of matching slots.
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(hw.match_vector >> i & 1 == 1, r.key.matches(&search));
        }
    }

    #[test]
    fn pipelined_match_invariant_under_processor_count(
        stored in prop::collection::vec(any::<u16>(), 1..32),
        probe in any::<u16>(),
        processors in 1u32..40,
    ) {
        let layout = RecordLayout::new(16, false, 0);
        let slots = u32::try_from(stored.len()).expect("<= 32");
        let mut row = vec![0u64; (16 * stored.len()).div_ceil(64)];
        let mut valid = 0u128;
        for (i, &v) in stored.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            layout.encode_slot(&mut row, i as u32, &Record::new(TernaryKey::binary(u128::from(v), 16), 0));
            valid |= 1 << i;
        }
        let bank = MatchProcessorBank::new(layout);
        let key = SearchKey::new(u128::from(probe), 16);
        let full = bank.match_row(&row, valid, slots, &key);
        let (piped, passes) = bank.match_row_pipelined(&row, valid, slots, &key, processors);
        prop_assert_eq!(piped.first_match, full.first_match);
        prop_assert!(passes >= 1);
        prop_assert!(passes <= slots.div_ceil(processors));
    }

    #[test]
    fn ram_mode_word_round_trip(
        rows in 1u64..32,
        row_bits in 1u32..300,
        writes in prop::collection::vec((any::<u64>(), any::<u64>()), 1..40),
    ) {
        let mut array = MemoryArray::new(rows, row_bits);
        let words = array.total_words();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            let addr = addr % words;
            array.write_word(addr, value).expect("in range");
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            prop_assert_eq!(array.read_word(addr).expect("in range"), value);
        }
    }
}
