//! Deterministic, seed-driven adversarial op-stream generation.
//!
//! A [`Scenario`] fixes the key width, the behavioral [`Profile`], and
//! where the table-under-test hashes from, so the generator can be
//! deliberately nasty about exactly the structures the engines use:
//!
//! * **bucket-saturating clusters** — many keys sharing one value in the
//!   hashed bit range, so home buckets overflow and probe chains grow;
//! * **duplicate keys** — the same stored key inserted repeatedly with
//!   different payloads (delete must remove every copy);
//! * **mask-boundary keys** — values 0, 1, `MAX`, `MAX-1`, the top-bit
//!   pattern, and don't-care masks touching bit 0 and the last bit;
//! * **delete-then-reinsert churn** — freed slots are refilled out of
//!   priority order, stressing the post-delete `full_scan` machinery;
//! * **key-width churn** — occasional [`Op::Reconfigure`] across every
//!   [`SUPPORTED_KEY_BYTES`] width.
//!
//! Streams are engine-neutral: the same stream replays against every
//! registered engine, so one generation pass feeds the whole fleet.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::bits::low_mask;
use crate::config_regs::SUPPORTED_KEY_BYTES;
use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;
use crate::pattern::{FieldPattern, Pattern, PatternSpec};

use super::Op;

/// The behavioral family of a stream, which decides both the op mix and
/// which engines can legally replay it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Binary keys, insert/delete/search/update churn, optional key-width
    /// reconfiguration. Every mutable engine can play.
    ExactChurn,
    /// Ternary patterns with pairwise-disjoint identifier bits (at most one
    /// pattern matches any search), plus churn. Any ternary-capable engine
    /// can play regardless of its priority scheme.
    TernaryDisjoint,
    /// Overlapping prefixes inserted once in descending care-count order,
    /// then searched. Position-priority devices (plain/banked TCAM) are LPM
    /// -correct under this arrival order.
    LpmBuild,
    /// Overlapping prefixes arriving in arbitrary order via
    /// [`Op::InsertSorted`], with delete/update churn. Only engines whose
    /// contract covers online LPM updates can play.
    LpmChurn,
    /// No mutations: a preloaded record set is only searched. For
    /// statically built engines (the software indexes).
    SearchOnly,
    /// 5-tuple packet-classification rules lowered through the pattern
    /// compiler ([`crate::pattern::PatternSpec::five_tuple`]): each rule
    /// becomes one or more [`Op::InsertSorted`] ternary entries sharing a
    /// payload (ranges prefix-expand), deleted rule-at-a-time, probed with
    /// member points and field-masked searches. Arrival order is
    /// arbitrary, so only online-LPM-capable engines can play.
    PacketClass,
    /// A binary dictionary probed spell-check style: exact words inserted
    /// and churned, plus compiled nearest-match probe ladders
    /// ([`crate::pattern::Pattern::NearestMatch`]) emitted as individual
    /// masked searches. Any ternary-capable engine can play — stored keys
    /// are all binary, so every match ties at full care.
    NearestMatch,
}

/// One generation configuration: a named point in (width × profile ×
/// adversarial-shape) space.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name (appears in reports and fixtures).
    pub name: String,
    /// Key width in bits at stream start.
    pub key_bits: u32,
    /// The behavioral family.
    pub profile: Profile,
    /// Payload values are kept below `2^data_bits` so every engine's data
    /// field can hold them; the generator hands out distinct values so a
    /// wrong-priority winner is observable.
    pub data_bits: u32,
    /// Lowest bit index of the range the table-under-test hashes.
    pub hash_lo: u32,
    /// Width of the hashed range.
    pub hash_bits: u32,
    /// Whether the stream may carry [`Op::Reconfigure`].
    pub reconfigure: bool,
    /// Soft bound on concurrently live records, sized so `must_fit`
    /// engines always have headroom.
    pub max_live: usize,
}

/// The standard scenario sweep: exact churn at every supported key width
/// (1–16 bytes), ternary-disjoint churn, sorted-build LPM, online-update
/// LPM churn, and a static search-only profile, plus one width-churning
/// reconfiguration stream.
#[must_use]
pub fn standard_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for bytes in SUPPORTED_KEY_BYTES {
        let bits = u32::from(bytes) * 8;
        out.push(Scenario {
            name: format!("exact-churn-{bits}b"),
            key_bits: bits,
            profile: Profile::ExactChurn,
            data_bits: 32,
            hash_lo: 0,
            hash_bits: 6,
            reconfigure: false,
            max_live: 192,
        });
    }
    out.push(Scenario {
        name: "exact-reconfig".into(),
        key_bits: 32,
        profile: Profile::ExactChurn,
        data_bits: 32,
        hash_lo: 0,
        hash_bits: 6,
        reconfigure: true,
        max_live: 192,
    });
    for bits in [16u32, 32, 64, 128] {
        out.push(Scenario {
            name: format!("ternary-disjoint-{bits}b"),
            key_bits: bits,
            profile: Profile::TernaryDisjoint,
            data_bits: 32,
            hash_lo: 4,
            hash_bits: 6,
            reconfigure: false,
            max_live: 64,
        });
    }
    out.push(Scenario {
        name: "lpm-build-32b".into(),
        key_bits: 32,
        profile: Profile::LpmBuild,
        data_bits: 32,
        hash_lo: 26,
        hash_bits: 6,
        reconfigure: false,
        max_live: 96,
    });
    for bits in [16u32, 32] {
        out.push(Scenario {
            name: format!("lpm-churn-{bits}b"),
            key_bits: bits,
            profile: Profile::LpmChurn,
            data_bits: 32,
            hash_lo: bits - 6,
            hash_bits: 6,
            reconfigure: false,
            max_live: 96,
        });
    }
    out.push(Scenario {
        name: "search-only-64b".into(),
        key_bits: 64,
        profile: Profile::SearchOnly,
        data_bits: 32,
        hash_lo: 0,
        hash_bits: 6,
        reconfigure: false,
        max_live: 256,
    });
    // The two pattern-compiled scenarios (kept last so a CI time-box
    // expiring mid-sweep skips these first, never the narrower cells).
    out.push(Scenario {
        name: "packet-class-128b".into(),
        key_bits: 128,
        profile: Profile::PacketClass,
        // Hash from the top of the src field: generated src prefixes are
        // /14 or longer, so a rule's wildcard run pokes at most two bits
        // into any fleet index range starting at 112 (≤ 4 home-bucket
        // copies, inside the must-fit margin).
        hash_lo: 112,
        hash_bits: 6,
        data_bits: 32,
        reconfigure: false,
        max_live: 96,
    });
    out.push(Scenario {
        name: "nearest-match-64b".into(),
        key_bits: 64,
        profile: Profile::NearestMatch,
        // Deliberately byte-misaligned: the hashed range [28, 36) straddles
        // two of the ladder's maskable byte units.
        hash_lo: 28,
        hash_bits: 6,
        data_bits: 32,
        reconfigure: false,
        max_live: 128,
    });
    out
}

/// Deterministic op-stream generator for one [`Scenario`].
///
/// The generator mirrors the live key set as it emits ops, so it can aim
/// deletes at present keys, searches at present/absent/near-miss keys, and
/// keep the live count under [`Scenario::max_live`]. It never inspects an
/// engine — the stream depends only on the scenario and the seed.
#[derive(Debug)]
pub struct OpStreamGen {
    rng: SmallRng,
    sc: Scenario,
    bits: u32,
    live: Vec<TernaryKey>,
    dead: Vec<TernaryKey>,
    clusters: Vec<u128>,
    next_data: u64,
    width_cursor: usize,
    /// Live classifier rules (entry-key groups) for [`Profile::PacketClass`].
    rules: Vec<Vec<TernaryKey>>,
    /// The compiled-pattern spec for the pattern-aware profiles.
    spec: Option<PatternSpec>,
}

impl OpStreamGen {
    /// A generator for `sc`, deterministically derived from `seed` (the
    /// scenario name is folded in so scenarios decorrelate under one seed).
    #[must_use]
    pub fn new(sc: &Scenario, seed: u64) -> Self {
        let mut salt = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in sc.name.bytes() {
            salt ^= u64::from(b);
            salt = salt.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ salt);
        let clusters = (0..3)
            .map(|_| rand_u128(&mut rng) & low_mask(sc.hash_bits))
            .collect();
        let spec = match sc.profile {
            Profile::PacketClass => Some(PatternSpec::five_tuple()),
            Profile::NearestMatch => Some(PatternSpec::dictionary(sc.key_bits / 8, 2)),
            _ => None,
        };
        Self {
            rng,
            sc: sc.clone(),
            bits: sc.key_bits,
            live: Vec::new(),
            dead: Vec::new(),
            clusters,
            next_data: 1,
            width_cursor: 0,
            rules: Vec::new(),
            spec,
        }
    }

    /// The key width the next emitted op will use.
    #[must_use]
    pub fn current_bits(&self) -> u32 {
        self.bits
    }

    /// Distinct-key exact records to preload a statically built engine
    /// with (the [`Profile::SearchOnly`] build set).
    pub fn preload(&mut self, n: usize) -> Vec<Record> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let key = self.exact_key();
            if self.live.contains(&key) {
                continue;
            }
            self.live.push(key);
            out.push(Record::new(key, self.fresh_data()));
        }
        out
    }

    /// Generates the next `n` ops of the stream.
    pub fn generate(&mut self, n: usize) -> Vec<Op> {
        let mut ops = Vec::with_capacity(n);
        if self.sc.profile == Profile::LpmBuild && self.live.is_empty() {
            self.lpm_build_phase(&mut ops);
        }
        while ops.len() < n {
            match self.sc.profile {
                Profile::ExactChurn => {
                    let op = self.exact_step();
                    ops.push(op);
                }
                Profile::TernaryDisjoint => {
                    let op = self.ternary_step();
                    ops.push(op);
                }
                Profile::LpmBuild | Profile::SearchOnly => {
                    let op = self.search_step();
                    ops.push(op);
                }
                Profile::LpmChurn => {
                    let op = self.lpm_churn_step();
                    ops.push(op);
                }
                // The pattern-aware profiles emit op groups (a rule's whole
                // expansion, a query's whole probe ladder) per step.
                Profile::PacketClass => self.packet_step(&mut ops),
                Profile::NearestMatch => self.nearest_step(&mut ops),
            }
        }
        ops.truncate(n);
        ops
    }

    // ---- shared helpers ----------------------------------------------------

    fn fresh_data(&mut self) -> u64 {
        let mask = if self.sc.data_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.sc.data_bits) - 1
        };
        let d = self.next_data & mask;
        self.next_data += 1;
        d
    }

    fn width_mask(&self) -> u128 {
        low_mask(self.bits)
    }

    /// A binary key value: clustered in the hashed range, a boundary
    /// pattern, or uniform.
    fn key_value(&mut self) -> u128 {
        let m = self.width_mask();
        let roll: f64 = self.rng.gen();
        if roll < 0.45 {
            // Saturate one of the cluster homes: fixed hashed bits, random
            // elsewhere.
            let i = self.rng.gen_range(0..self.clusters.len());
            let hash_span = low_mask(self.sc.hash_bits) << self.sc.hash_lo;
            let cluster = (self.clusters[i] << self.sc.hash_lo) & m;
            (rand_u128(&mut self.rng) & m & !hash_span) | (cluster & hash_span)
        } else if roll < 0.60 {
            // Mask-boundary values.
            let b = [0u128, 1, m, m ^ 1, 1 << (self.bits - 1)];
            b[self.rng.gen_range(0..b.len())]
        } else {
            rand_u128(&mut self.rng) & m
        }
    }

    fn exact_key(&mut self) -> TernaryKey {
        let v = self.key_value();
        TernaryKey::binary(v, self.bits)
    }

    fn random_live(&mut self) -> Option<TernaryKey> {
        if self.live.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.live.len());
        Some(self.live[i])
    }

    fn random_dead(&mut self) -> Option<TernaryKey> {
        if self.dead.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.dead.len());
        Some(self.dead[i])
    }

    fn note_insert(&mut self, key: TernaryKey) {
        self.live.push(key);
        self.dead.retain(|k| *k != key);
    }

    fn note_delete(&mut self, key: TernaryKey) {
        self.live.retain(|k| *k != key);
        if self.dead.len() < 512 {
            self.dead.push(key);
        }
    }

    /// A search key probing the current state: a live key, a deleted key,
    /// a near-miss (live value with one bit flipped), or a fresh value.
    fn probe_key(&mut self) -> SearchKey {
        let roll: f64 = self.rng.gen();
        if roll < 0.45 {
            if let Some(k) = self.random_live() {
                return self.point_under(&k);
            }
        } else if roll < 0.65 {
            if let Some(k) = self.random_dead() {
                return self.point_under(&k);
            }
        } else if roll < 0.80 {
            if let Some(k) = self.random_live() {
                let flip = 1u128 << self.rng.gen_range(0..self.bits);
                return SearchKey::new((k.value() ^ flip) & self.width_mask(), self.bits);
            }
        }
        let v = self.key_value();
        SearchKey::new(v, self.bits)
    }

    /// An exact search key lying under a stored pattern: the pattern's
    /// cared bits, with don't-care positions filled randomly.
    fn point_under(&mut self, key: &TernaryKey) -> SearchKey {
        let fill = rand_u128(&mut self.rng) & key.dont_care();
        SearchKey::new(key.value() | fill, self.bits)
    }

    // ---- exact churn -------------------------------------------------------

    fn exact_step(&mut self) -> Op {
        if self.live.len() >= self.sc.max_live {
            let k = self.random_live().expect("live set is full");
            self.note_delete(k);
            return Op::Delete(k);
        }
        let roll: f64 = self.rng.gen();
        if self.sc.reconfigure && roll < 0.01 {
            self.width_cursor = (self.width_cursor + 1) % SUPPORTED_KEY_BYTES.len();
            self.bits = u32::from(SUPPORTED_KEY_BYTES[self.width_cursor]) * 8;
            self.live.clear();
            self.dead.clear();
            return Op::Reconfigure {
                key_bits: self.bits,
            };
        }
        if roll < 0.34 {
            // Insert: fresh, duplicate of a live key, or a reinsert of a
            // deleted one.
            let key = if roll < 0.05 {
                self.random_live().unwrap_or_else(|| self.exact_key())
            } else if roll < 0.12 {
                self.random_dead().unwrap_or_else(|| self.exact_key())
            } else {
                self.exact_key()
            };
            let data = self.fresh_data();
            self.note_insert(key);
            Op::Insert(Record::new(key, data))
        } else if roll < 0.50 {
            let key = if roll < 0.44 {
                self.random_live()
            } else {
                self.random_dead()
            }
            .unwrap_or_else(|| self.exact_key());
            self.note_delete(key);
            Op::Delete(key)
        } else if roll < 0.58 {
            let key = self.random_live().unwrap_or_else(|| self.exact_key());
            let data = self.fresh_data();
            // An update leaves exactly one copy behind when the key was
            // present; mirror that.
            if self.live.contains(&key) {
                self.note_delete(key);
                self.note_insert(key);
            }
            Op::Update { key, data }
        } else {
            Op::Search(self.probe_key())
        }
    }

    // ---- disjoint ternary churn --------------------------------------------

    /// Bits reserved for the pattern identifier (disjointness) — everything
    /// above the hashed range.
    fn id_shift(&self) -> u32 {
        self.sc.hash_lo + self.sc.hash_bits
    }

    fn ternary_pattern(&mut self) -> TernaryKey {
        let id_bits = self.bits - self.id_shift();
        let id = rand_u128(&mut self.rng) & low_mask(id_bits.min(12));
        let low = self.key_value() & low_mask(self.id_shift());
        // Don't-care only below the identifier; lengths 5–6 poke one or two
        // bits into the hashed range, so the record duplicates across 2 or
        // 4 home buckets.
        let dc_len = match self.rng.gen_range(0..10u32) {
            0..=4 => 0,
            5..=6 => self.rng.gen_range(1..=4u32),
            7..=8 => self.sc.hash_lo + 1,
            _ => self.sc.hash_lo + 2,
        };
        TernaryKey::ternary((id << self.id_shift()) | low, low_mask(dc_len), self.bits)
    }

    /// Whether a candidate pattern's identifier collides with a live one
    /// (which would break the at-most-one-match invariant).
    fn id_collides(&self, key: &TernaryKey) -> bool {
        let shift = self.id_shift();
        self.live
            .iter()
            .any(|k| k.value() >> shift == key.value() >> shift)
    }

    fn ternary_step(&mut self) -> Op {
        if self.live.len() >= self.sc.max_live {
            let k = self.random_live().expect("live set is full");
            self.note_delete(k);
            return Op::Delete(k);
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.30 {
            // Insert a fresh disjoint pattern (duplicate copies of an
            // existing pattern are fine — same key, new payload).
            let key = if roll < 0.04 {
                self.random_live().unwrap_or_else(|| self.ternary_pattern())
            } else {
                let mut k = self.ternary_pattern();
                for _ in 0..8 {
                    if !self.id_collides(&k) || self.live.contains(&k) {
                        break;
                    }
                    k = self.ternary_pattern();
                }
                if self.id_collides(&k) && !self.live.contains(&k) {
                    // Could not find a free identifier; churn instead.
                    if let Some(d) = self.random_live() {
                        self.note_delete(d);
                        return Op::Delete(d);
                    }
                }
                k
            };
            let data = self.fresh_data();
            self.note_insert(key);
            Op::Insert(Record::new(key, data))
        } else if roll < 0.48 {
            let key = if roll < 0.42 {
                self.random_live()
            } else {
                self.random_dead()
            }
            .unwrap_or_else(|| self.ternary_pattern());
            self.note_delete(key);
            Op::Delete(key)
        } else if roll < 0.56 {
            let key = self.random_live().unwrap_or_else(|| self.ternary_pattern());
            let data = self.fresh_data();
            if self.live.contains(&key) {
                self.note_delete(key);
                self.note_insert(key);
            }
            Op::Update { key, data }
        } else if roll < 0.66 {
            // Masked search under a live pattern: don't-care only in the
            // low, non-identifying bits, so at most one pattern matches.
            if let Some(k) = self.random_live() {
                let dc_len = self.rng.gen_range(1..=self.sc.hash_lo.max(1));
                let point = self.point_under(&k);
                return Op::Search(SearchKey::with_mask(
                    point.value(),
                    low_mask(dc_len),
                    self.bits,
                ));
            }
            Op::Search(self.probe_key())
        } else {
            Op::Search(self.probe_key())
        }
    }

    // ---- LPM ---------------------------------------------------------------

    /// A prefix-style pattern: don't-care is a contiguous low run that never
    /// reaches the (high) hashed range. Nested families share high bits.
    fn prefix_pattern(&mut self) -> TernaryKey {
        let max_len = self.sc.hash_lo; // keep dc below the hashed bits
        let dc_len = self.rng.gen_range(0..=max_len.saturating_sub(1));
        let base = if self.rng.gen_bool(0.7) {
            // Nest under an existing prefix to build overlap chains.
            self.random_live()
                .map_or_else(|| self.key_value(), |k| k.value())
        } else {
            self.key_value()
        };
        let fill = rand_u128(&mut self.rng) & self.width_mask();
        let value = (base & !low_mask(dc_len + 4).min(self.width_mask()))
            | (fill & low_mask(dc_len + 4) & !low_mask(dc_len));
        TernaryKey::ternary(value & self.width_mask(), low_mask(dc_len), self.bits)
    }

    fn lpm_build_phase(&mut self, ops: &mut Vec<Op>) {
        let mut set: Vec<TernaryKey> = Vec::new();
        while set.len() < self.sc.max_live {
            let k = self.prefix_pattern();
            if !set.contains(&k) {
                self.live.push(k); // so nesting sees it
                set.push(k);
            }
        }
        // Descending care count = descending priority: position-priority
        // devices loaded in this order implement LPM.
        set.sort_by_key(|k| core::cmp::Reverse(k.care_count()));
        for k in set {
            let data = self.fresh_data();
            ops.push(Op::Insert(Record::new(k, data)));
        }
    }

    fn lpm_churn_step(&mut self) -> Op {
        if self.live.len() >= self.sc.max_live {
            let k = self.random_live().expect("live set is full");
            self.note_delete(k);
            return Op::Delete(k);
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.30 {
            let key = if roll < 0.06 {
                self.random_dead().unwrap_or_else(|| self.prefix_pattern())
            } else {
                self.prefix_pattern()
            };
            let data = self.fresh_data();
            self.note_insert(key);
            Op::InsertSorted(Record::new(key, data))
        } else if roll < 0.48 {
            let key = if roll < 0.42 {
                self.random_live()
            } else {
                self.random_dead()
            }
            .unwrap_or_else(|| self.prefix_pattern());
            self.note_delete(key);
            Op::Delete(key)
        } else if roll < 0.54 {
            let key = self.random_live().unwrap_or_else(|| self.prefix_pattern());
            let data = self.fresh_data();
            if self.live.contains(&key) {
                self.note_delete(key);
                self.note_insert(key);
            }
            Op::Update { key, data }
        } else {
            Op::Search(self.probe_key())
        }
    }

    fn search_step(&mut self) -> Op {
        Op::Search(self.probe_key())
    }

    // ---- pattern-compiled packet classification ----------------------------

    /// Lowers one random classifier rule through the five-tuple spec.
    ///
    /// Shapes are bounded so the stream stays fair to `must_fit` engines:
    /// src prefixes are /14+ (≤ 2 wildcard bits inside any fleet hash
    /// range ⇒ ≤ 4 home-bucket copies), and at most one port field is a
    /// range (expansion ≤ 30 entries, under the 2·W = 256 limit).
    fn packet_rule(&mut self) -> Vec<TernaryKey> {
        let src = FieldPattern::Prefix {
            value: u128::from(self.rng.gen::<u32>()),
            len: self.rng.gen_range(14..=32u32),
        };
        let dst = FieldPattern::Prefix {
            value: u128::from(self.rng.gen::<u32>()),
            len: [0u32, 8, 16, 24, 32][self.rng.gen_range(0..5usize)],
        };
        let range_on_sport = self.rng.gen_bool(0.5);
        let sport = port_match(&mut self.rng, range_on_sport);
        let dport = port_match(&mut self.rng, !range_on_sport);
        let proto = if self.rng.gen_bool(0.5) {
            FieldPattern::Any
        } else {
            FieldPattern::Exact(u128::from([1u8, 6, 17][self.rng.gen_range(0..3usize)]))
        };
        let pattern = Pattern::MaskedMultiField {
            fields: vec![src, dst, sport, dport, proto, FieldPattern::Exact(0)],
        };
        self.spec
            .as_ref()
            .expect("packet profile has a spec")
            .lower(&pattern)
            .expect("bounded rule shapes always lower")
    }

    /// Deletes one whole rule, entry by entry.
    fn delete_rule(&mut self, ops: &mut Vec<Op>) {
        let i = self.rng.gen_range(0..self.rules.len());
        let entries = self.rules.swap_remove(i);
        for k in entries {
            self.note_delete(k);
            ops.push(Op::Delete(k));
        }
    }

    fn packet_step(&mut self, ops: &mut Vec<Op>) {
        if self.live.len() >= self.sc.max_live && !self.rules.is_empty() {
            self.delete_rule(ops);
            return;
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.25 {
            let entries = self.packet_rule();
            if self.live.len() + entries.len() > self.sc.max_live {
                if !self.rules.is_empty() {
                    self.delete_rule(ops);
                }
                return;
            }
            // One payload for the whole expansion: the compiled-entry
            // contract the reference model pins.
            let data = self.fresh_data();
            for k in &entries {
                self.note_insert(*k);
                ops.push(Op::InsertSorted(Record::new(*k, data)));
            }
            self.rules.push(entries);
        } else if roll < 0.40 && !self.rules.is_empty() {
            self.delete_rule(ops);
        } else if roll < 0.70 {
            ops.push(Op::Search(self.probe_key()));
        } else if roll < 0.85 {
            // Field-masked probe: wildcard a low run (pad / proto / ports),
            // never reaching the hashed src bits.
            let dc_len = self.rng.gen_range(1..=48u32);
            let probe = if let Some(k) = self.random_live() {
                let point = self.point_under(&k);
                SearchKey::with_mask(point.value(), low_mask(dc_len), self.bits)
            } else {
                self.probe_key()
            };
            ops.push(Op::Search(probe));
        } else {
            // A plausible header: random fields, zero pad — usually a miss.
            let v = rand_u128(&mut self.rng) & self.width_mask() & !low_mask(24);
            ops.push(Op::Search(SearchKey::new(v, self.bits)));
        }
    }

    // ---- pattern-compiled nearest match ------------------------------------

    /// An 8-letter lowercase word packed LSB-first — the small alphabet
    /// makes distance-1/2 neighborhoods genuinely collide.
    fn nearest_word(&mut self) -> u128 {
        let mut v = 0u128;
        for i in 0..self.bits / 8 {
            v |= u128::from(b'a' + self.rng.gen_range(0..26u8)) << (8 * i);
        }
        v
    }

    fn nearest_step(&mut self, ops: &mut Vec<Op>) {
        if self.live.len() >= self.sc.max_live {
            let k = self.random_live().expect("live set is full");
            self.note_delete(k);
            ops.push(Op::Delete(k));
            return;
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.30 {
            let key = TernaryKey::binary(self.nearest_word(), self.bits);
            let data = self.fresh_data();
            self.note_insert(key);
            ops.push(Op::Insert(Record::new(key, data)));
        } else if roll < 0.42 {
            let key = if roll < 0.38 {
                self.random_live()
            } else {
                self.random_dead()
            }
            .unwrap_or_else(|| {
                let w = self.nearest_word();
                TernaryKey::binary(w, self.bits)
            });
            self.note_delete(key);
            ops.push(Op::Delete(key));
        } else if roll < 0.50 {
            let key = self.random_live().unwrap_or_else(|| {
                let w = self.nearest_word();
                TernaryKey::binary(w, self.bits)
            });
            let data = self.fresh_data();
            if self.live.contains(&key) {
                self.note_delete(key);
                self.note_insert(key);
            }
            ops.push(Op::Update { key, data });
        } else if roll < 0.80 {
            // Misspell a stored word (unit substitutions), then emit the
            // compiled distance ladder as individual masked searches.
            let base = match self.random_live() {
                Some(k) => k.value(),
                None => self.nearest_word(),
            };
            let distance = self.rng.gen_range(1..=2u32);
            let mut value = base;
            for _ in 0..distance {
                let unit = self.rng.gen_range(0..self.bits / 8);
                let b = u128::from(b'a' + self.rng.gen_range(0..26u8));
                value = (value & !(0xFFu128 << (8 * unit))) | (b << (8 * unit));
            }
            let probes = self
                .spec
                .as_ref()
                .expect("nearest profile has a spec")
                .lower_probes(&Pattern::NearestMatch {
                    value,
                    max_distance: distance,
                })
                .expect("distance ≤ 2 ladders fit the probe budget");
            for p in probes {
                ops.push(Op::Search(p));
            }
        } else {
            ops.push(Op::Search(self.probe_key()));
        }
    }
}

/// A random port field pattern; ranges only when `allow_range` (one range
/// per rule bounds the cross-product expansion).
fn port_match(rng: &mut SmallRng, allow_range: bool) -> FieldPattern {
    let roll: f64 = rng.gen();
    if roll < 0.40 {
        FieldPattern::Any
    } else if !allow_range || roll < 0.75 {
        FieldPattern::Exact(u128::from(rng.gen::<u16>()))
    } else {
        let a = rng.gen::<u16>();
        let b = rng.gen::<u16>();
        FieldPattern::Range {
            lo: u128::from(a.min(b)),
            hi: u128::from(a.max(b)),
        }
    }
}

fn rand_u128(rng: &mut SmallRng) -> u128 {
    (u128::from(rng.gen::<u64>()) << 64) | u128::from(rng.gen::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let sc = &standard_scenarios()[0];
        let a = OpStreamGen::new(sc, 7).generate(500);
        let b = OpStreamGen::new(sc, 7).generate(500);
        let c = OpStreamGen::new(sc, 8).generate(500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scenarios_cover_every_supported_width() {
        let widths: Vec<u32> = standard_scenarios()
            .iter()
            .filter(|s| s.profile == Profile::ExactChurn)
            .map(|s| s.key_bits)
            .collect();
        for bytes in SUPPORTED_KEY_BYTES {
            assert!(widths.contains(&(u32::from(bytes) * 8)));
        }
    }

    #[test]
    fn disjoint_streams_keep_identifiers_unique() {
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "ternary-disjoint-32b")
            .expect("scenario exists");
        let mut g = OpStreamGen::new(&sc, 3);
        let _ = g.generate(2000);
        let shift = g.id_shift();
        for (i, a) in g.live.iter().enumerate() {
            for b in &g.live[i + 1..] {
                assert!(
                    a.value() >> shift != b.value() >> shift || a == b,
                    "two distinct live patterns share an identifier"
                );
            }
        }
    }

    #[test]
    fn packet_stream_keeps_expansions_bounded_and_shared() {
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "packet-class-128b")
            .expect("scenario exists");
        let mut g = OpStreamGen::new(&sc, 11);
        let ops = g.generate(5000);
        assert!(g.live.len() <= sc.max_live);
        let mut saw_sorted_insert = false;
        let mut saw_masked_search = false;
        for op in &ops {
            match op {
                Op::InsertSorted(r) => {
                    saw_sorted_insert = true;
                    // The wildcard run never pokes more than two bits into
                    // the widest fleet hash range [112, 120).
                    let overlap = r.key.dont_care() >> 112 & 0xFF;
                    assert!(overlap.count_ones() <= 2, "src /14+ bound violated");
                }
                Op::Search(k) => {
                    saw_masked_search |= k.dont_care() != 0;
                    // Masked probes stay below the hashed src bits.
                    assert_eq!(k.dont_care() >> 112, 0);
                }
                Op::Insert(_) | Op::Update { .. } | Op::Reconfigure { .. } => {
                    panic!("packet streams use sorted inserts only")
                }
                Op::Delete(_) => {}
            }
        }
        assert!(saw_sorted_insert && saw_masked_search);
        // Every rule's expansion shares one payload.
        let mut by_rule: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for op in &ops {
            if let Op::InsertSorted(r) = op {
                *by_rule.entry(r.data).or_insert(0) += 1;
            }
        }
        assert!(by_rule.values().any(|&n| n > 1), "no multi-entry expansion");
    }

    #[test]
    fn nearest_stream_emits_probe_ladders() {
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "nearest-match-64b")
            .expect("scenario exists");
        let mut g = OpStreamGen::new(&sc, 5);
        let ops = g.generate(5000);
        let mut byte_masked = 0usize;
        for op in &ops {
            match op {
                Op::Insert(r) | Op::InsertSorted(r) => assert_eq!(r.key.dont_care(), 0),
                Op::Update { key, .. } => assert_eq!(key.dont_care(), 0),
                Op::Search(k) => {
                    let dc = k.dont_care();
                    if dc != 0 {
                        byte_masked += 1;
                        // Ladder probes wildcard whole bytes only.
                        for byte in 0..8 {
                            let b = dc >> (8 * byte) & 0xFF;
                            assert!(b == 0 || b == 0xFF, "non-unit mask {dc:#x}");
                        }
                        assert!(dc.count_ones() <= 16, "distance > 2");
                    }
                }
                Op::Delete(_) => {}
                Op::Reconfigure { .. } => panic!("nearest streams never reconfigure"),
            }
        }
        assert!(byte_masked > 100, "only {byte_masked} ladder probes");
    }

    #[test]
    fn reconfigure_stream_changes_width_and_resets() {
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.reconfigure)
            .expect("reconfig scenario exists");
        let mut g = OpStreamGen::new(&sc, 0);
        let ops = g.generate(4000);
        assert!(
            ops.iter()
                .any(|o| matches!(o, Op::Reconfigure { key_bits } if *key_bits != sc.key_bits)),
            "stream never reconfigured"
        );
    }
}
