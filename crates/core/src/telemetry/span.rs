//! Request lifecycle spans: the per-request trace model behind the
//! serving layer's observability v2.
//!
//! A [`RequestTrace`] is an append-only sequence of timestamped
//! [`SpanEvent`]s following one request through the serving pipeline:
//!
//! ```text
//! admitted → enqueued → picked_up → merged(batch_n)
//!          → engine_start → engine_done → completed | shed | rejected
//! ```
//!
//! Stages are *ordered* (see [`SpanStage::rank`]) and exactly one
//! terminal stage ends a trace — [`RequestTrace::validate`] checks both,
//! plus timestamp monotonicity, so tests can assert the invariants on
//! every sampled trace.
//!
//! Tracing is **tail-sampled**: the [`TraceSampler`] makes a cheap
//! head decision (1-in-N, one relaxed `fetch_add`; zero allocation when
//! the request is unsampled), and the [`TraceStore`] makes the retention
//! decision at the *end* of the request — anomalies (sheds, rejects) are
//! always kept, the rolling top-k slowest are kept, and the rest fill a
//! bounded most-recent ring. The hot path never sees a lock or an
//! allocation for an unsampled request.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// One stage of the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanStage {
    /// Admission control accepted (or is deciding on) the request.
    Admitted,
    /// The request was published into a shard ring.
    Enqueued,
    /// A shard worker drained the request from its ring.
    PickedUp,
    /// The request was merged into an engine batch (`detail` = batch keys).
    Merged,
    /// The engine probe for the merged run began.
    EngineStart,
    /// The engine probe finished.
    EngineDone,
    /// Terminal: the reply was delivered to the waiter.
    Completed,
    /// Terminal: the request was shed (deadline or shutdown).
    Shed,
    /// Terminal: admission refused the request (queue full).
    Rejected,
}

impl SpanStage {
    /// Every stage, in pipeline order.
    pub const ALL: [SpanStage; 9] = [
        SpanStage::Admitted,
        SpanStage::Enqueued,
        SpanStage::PickedUp,
        SpanStage::Merged,
        SpanStage::EngineStart,
        SpanStage::EngineDone,
        SpanStage::Completed,
        SpanStage::Shed,
        SpanStage::Rejected,
    ];

    /// Stable lowercase name used in dumps and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Admitted => "admitted",
            SpanStage::Enqueued => "enqueued",
            SpanStage::PickedUp => "picked_up",
            SpanStage::Merged => "merged",
            SpanStage::EngineStart => "engine_start",
            SpanStage::EngineDone => "engine_done",
            SpanStage::Completed => "completed",
            SpanStage::Shed => "shed",
            SpanStage::Rejected => "rejected",
        }
    }

    /// True for the three stages that end a trace.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanStage::Completed | SpanStage::Shed | SpanStage::Rejected
        )
    }

    /// Pipeline position used by [`RequestTrace::validate`] to check
    /// nesting: stages must appear in non-decreasing rank order, with the
    /// three terminals sharing the final rank.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            SpanStage::Admitted => 0,
            SpanStage::Enqueued => 1,
            SpanStage::PickedUp => 2,
            SpanStage::Merged => 3,
            SpanStage::EngineStart => 4,
            SpanStage::EngineDone => 5,
            SpanStage::Completed | SpanStage::Shed | SpanStage::Rejected => 6,
        }
    }
}

/// One timestamped stage transition inside a [`RequestTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which lifecycle stage was reached.
    pub stage: SpanStage,
    /// Nanoseconds since the trace was created ([`RequestTrace::new`]).
    pub at_ns: u64,
    /// Stage-specific payload (batch keys for [`SpanStage::Merged`],
    /// otherwise 0).
    pub detail: u64,
}

/// The timestamped lifecycle of one sampled request.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Sampler-assigned id, unique per shard.
    pub id: u64,
    /// The shard that served (or shed) the request.
    pub shard: u32,
    base: Instant,
    events: Vec<SpanEvent>,
}

impl RequestTrace {
    /// Starts a trace and stamps [`SpanStage::Admitted`] at t=0.
    #[must_use]
    pub fn new(id: u64, shard: u32) -> Self {
        let mut trace = Self {
            id,
            shard,
            base: Instant::now(),
            events: Vec::with_capacity(8),
        };
        trace.events.push(SpanEvent {
            stage: SpanStage::Admitted,
            at_ns: 0,
            detail: 0,
        });
        trace
    }

    /// Stamps `stage` now (no payload).
    pub fn record(&mut self, stage: SpanStage) {
        self.record_detail(stage, 0);
    }

    /// Stamps `stage` now with a payload.
    pub fn record_detail(&mut self, stage: SpanStage, detail: u64) {
        self.record_at(stage, Instant::now(), detail);
    }

    /// Stamps `stage` at an externally captured instant — lets a worker
    /// take one `Instant::now()` per batch boundary and stamp every traced
    /// request in the batch with it.
    pub fn record_at(&mut self, stage: SpanStage, now: Instant, detail: u64) {
        let at_ns =
            u64::try_from(now.saturating_duration_since(self.base).as_nanos()).unwrap_or(u64::MAX);
        self.events.push(SpanEvent {
            stage,
            at_ns,
            detail,
        });
    }

    /// The recorded events in stamp order.
    #[must_use]
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// The terminal stage, if the trace has ended.
    #[must_use]
    pub fn terminal(&self) -> Option<SpanStage> {
        self.events
            .iter()
            .rev()
            .map(|e| e.stage)
            .find(|s| s.is_terminal())
    }

    /// Nanoseconds from creation to the terminal event (or to the last
    /// event when the trace has not terminated).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ns)
    }

    /// The batch size stamped by [`SpanStage::Merged`], if any.
    #[must_use]
    pub fn batch_keys(&self) -> Option<u64> {
        self.events
            .iter()
            .find(|e| e.stage == SpanStage::Merged)
            .map(|e| e.detail)
    }

    /// `(stage, gap_ns)` pairs: the time attributed to reaching each
    /// stage from its predecessor. The gaps partition `total_ns` exactly.
    #[must_use]
    pub fn stage_gaps(&self) -> Vec<(SpanStage, u64)> {
        self.events
            .windows(2)
            .map(|w| (w[1].stage, w[1].at_ns.saturating_sub(w[0].at_ns)))
            .collect()
    }

    /// Fraction of end-to-end latency explained by the per-stage gaps —
    /// 1.0 for any well-formed trace (gaps partition the total), less when
    /// a clock stepped backwards and a gap saturated to zero.
    #[must_use]
    pub fn span_coverage(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 1.0;
        }
        let explained: u64 = self.stage_gaps().iter().map(|(_, gap)| gap).sum();
        #[allow(clippy::cast_precision_loss)]
        {
            explained as f64 / total as f64
        }
    }

    /// Checks every trace invariant: non-empty, starts at `Admitted`,
    /// timestamps monotone non-decreasing, stages in non-decreasing
    /// [`SpanStage::rank`] order (proper nesting — no `engine_done`
    /// before `engine_start`, no stage after a terminal), each
    /// non-terminal stage at most once, and exactly one terminal event
    /// which is last.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let Some(first) = self.events.first() else {
            return Err(format!("trace {}: no events", self.id));
        };
        if first.stage != SpanStage::Admitted {
            return Err(format!(
                "trace {}: first event is {}, not admitted",
                self.id,
                first.stage.name()
            ));
        }
        let mut seen = [0u32; SpanStage::ALL.len()];
        let mut terminals = 0u32;
        for (i, pair) in self.events.windows(2).enumerate() {
            if pair[1].at_ns < pair[0].at_ns {
                return Err(format!(
                    "trace {}: event {} ({}) timestamp went backwards",
                    self.id,
                    i + 1,
                    pair[1].stage.name()
                ));
            }
            if pair[1].stage.rank() < pair[0].stage.rank() {
                return Err(format!(
                    "trace {}: {} after {} breaks stage order",
                    self.id,
                    pair[1].stage.name(),
                    pair[0].stage.name()
                ));
            }
        }
        for (i, event) in self.events.iter().enumerate() {
            let slot = SpanStage::ALL
                .iter()
                .position(|s| *s == event.stage)
                .unwrap_or(0);
            seen[slot] += 1;
            if seen[slot] > 1 {
                return Err(format!(
                    "trace {}: stage {} recorded {} times",
                    self.id,
                    event.stage.name(),
                    seen[slot]
                ));
            }
            if event.stage.is_terminal() {
                terminals += 1;
                if i + 1 != self.events.len() {
                    return Err(format!(
                        "trace {}: terminal {} is not the last event",
                        self.id,
                        event.stage.name()
                    ));
                }
            }
        }
        if terminals != 1 {
            return Err(format!(
                "trace {}: {terminals} terminal events, want exactly 1",
                self.id
            ));
        }
        Ok(())
    }
}

const SAMPLER_OFF: u64 = u64::MAX;

/// Head-based 1-in-N sampling decision, runtime-reconfigurable.
///
/// `period` is rounded up to a power of two so the decision is one
/// relaxed `fetch_add` and a mask; a period of 0 disables sampling
/// entirely (one relaxed load, no counter traffic).
#[derive(Debug)]
pub struct TraceSampler {
    mask: AtomicU64,
    counter: AtomicU64,
    next_id: AtomicU64,
}

impl TraceSampler {
    /// Creates a sampler keeping one request in `period` (0 = disabled).
    #[must_use]
    pub fn new(period: u64) -> Self {
        let sampler = Self {
            mask: AtomicU64::new(SAMPLER_OFF),
            counter: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
        };
        sampler.set_period(period);
        sampler
    }

    /// Reconfigures the sampling period at runtime (0 = disabled; other
    /// values round up to the next power of two).
    pub fn set_period(&self, period: u64) {
        let mask = if period == 0 {
            SAMPLER_OFF
        } else {
            period.next_power_of_two() - 1
        };
        self.mask.store(mask, Relaxed);
    }

    /// The effective period (0 when disabled).
    #[must_use]
    pub fn period(&self) -> u64 {
        let mask = self.mask.load(Relaxed);
        if mask == SAMPLER_OFF {
            0
        } else {
            mask + 1
        }
    }

    /// Whether to trace the next request.
    #[inline]
    pub fn sample(&self) -> bool {
        let mask = self.mask.load(Relaxed);
        if mask == SAMPLER_OFF {
            return false;
        }
        self.counter.fetch_add(1, Relaxed) & mask == 0
    }

    /// A fresh trace id.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Relaxed)
    }
}

/// Tail-based retention over finished traces: anomalies (any terminal
/// other than `completed`) are always kept up to a bound, the rolling
/// top-k slowest completions are kept, and the remainder fill a bounded
/// most-recent ring.
#[derive(Debug)]
pub struct TraceStore {
    topk: usize,
    recent_cap: usize,
    anomaly_cap: usize,
    anomalies: VecDeque<RequestTrace>,
    slowest: Vec<RequestTrace>,
    recent: VecDeque<RequestTrace>,
    offered: u64,
    dropped: u64,
}

impl TraceStore {
    /// Bound on retained anomalous traces.
    pub const ANOMALY_CAP: usize = 128;

    /// Creates a store keeping the `topk` slowest completions and the
    /// `recent_cap` most recent other completions.
    #[must_use]
    pub fn new(topk: usize, recent_cap: usize) -> Self {
        Self {
            topk,
            recent_cap,
            anomaly_cap: Self::ANOMALY_CAP,
            anomalies: VecDeque::new(),
            slowest: Vec::new(),
            recent: VecDeque::new(),
            offered: 0,
            dropped: 0,
        }
    }

    /// Offers a finished trace for retention.
    pub fn offer(&mut self, trace: RequestTrace) {
        self.offered += 1;
        if trace.terminal() != Some(SpanStage::Completed) {
            if self.anomalies.len() == self.anomaly_cap {
                self.anomalies.pop_front();
                self.dropped += 1;
            }
            self.anomalies.push_back(trace);
            return;
        }
        // Rolling top-k slowest, kept sorted ascending by total latency.
        let total = trace.total_ns();
        if self.topk > 0 && (self.slowest.len() < self.topk || total > self.slowest[0].total_ns()) {
            let at = self.slowest.partition_point(|t| t.total_ns() < total);
            self.slowest.insert(at, trace);
            if self.slowest.len() > self.topk {
                let demoted = self.slowest.remove(0);
                self.keep_recent(demoted);
            }
            return;
        }
        self.keep_recent(trace);
    }

    fn keep_recent(&mut self, trace: RequestTrace) {
        if self.recent_cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.recent.len() == self.recent_cap {
            self.recent.pop_front();
            self.dropped += 1;
        }
        self.recent.push_back(trace);
    }

    /// Every retained trace: anomalies, then top-k slowest, then recent.
    #[must_use]
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.anomalies
            .iter()
            .chain(self.slowest.iter())
            .chain(self.recent.iter())
            .cloned()
            .collect()
    }

    /// Total traces offered to the store.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Traces evicted by the retention bounds.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Currently retained trace count.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.anomalies.len() + self.slowest.len() + self.recent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed_trace(id: u64, engine_ns: u64) -> RequestTrace {
        let mut t = RequestTrace::new(id, 0);
        let now = Instant::now();
        t.record_at(SpanStage::Enqueued, now, 0);
        t.record_at(SpanStage::PickedUp, now, 0);
        t.record_at(SpanStage::Merged, now, 4);
        t.record_at(SpanStage::EngineStart, now, 0);
        // Synthesise a known engine gap by faking the event list through
        // the public record_at path with a later instant.
        let later = now + std::time::Duration::from_nanos(engine_ns);
        t.record_at(SpanStage::EngineDone, later, 0);
        t.record_at(SpanStage::Completed, later, 0);
        t
    }

    #[test]
    fn trace_records_in_order_and_validates() {
        let t = completed_trace(7, 1_000);
        assert_eq!(t.terminal(), Some(SpanStage::Completed));
        assert_eq!(t.batch_keys(), Some(4));
        assert!(t.total_ns() >= 1_000);
        t.validate().expect("well-formed trace");
        assert!((t.span_coverage() - 1.0).abs() < 1e-9);
        let gaps = t.stage_gaps();
        assert_eq!(gaps.len(), t.events().len() - 1);
        let explained: u64 = gaps.iter().map(|(_, g)| g).sum();
        assert_eq!(explained, t.total_ns());
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        // Stage order violation: engine_done before engine_start.
        let mut t = RequestTrace::new(0, 0);
        t.record(SpanStage::EngineDone);
        t.record(SpanStage::EngineStart);
        t.record(SpanStage::Completed);
        assert!(t.validate().unwrap_err().contains("stage order"));

        // No terminal.
        let mut t = RequestTrace::new(1, 0);
        t.record(SpanStage::Enqueued);
        assert!(t.validate().unwrap_err().contains("terminal"));

        // Duplicate stage.
        let mut t = RequestTrace::new(2, 0);
        t.record(SpanStage::Enqueued);
        t.record(SpanStage::Enqueued);
        t.record(SpanStage::Completed);
        assert!(t.validate().unwrap_err().contains("recorded 2 times"));

        // Terminal not last: rank order already forbids stages after a
        // terminal, so two terminals is the remaining shape.
        let mut t = RequestTrace::new(3, 0);
        t.record(SpanStage::Shed);
        t.record(SpanStage::Rejected);
        assert!(t.validate().is_err());
    }

    #[test]
    fn sampler_period_rounds_and_samples_one_in_n() {
        let s = TraceSampler::new(0);
        assert_eq!(s.period(), 0);
        assert!(!s.sample());
        s.set_period(3);
        assert_eq!(s.period(), 4);
        let hits = (0..64).filter(|_| s.sample()).count();
        assert_eq!(hits, 16);
        s.set_period(1);
        assert_eq!(s.period(), 1);
        assert!(s.sample());
        assert!(s.sample());
        assert_eq!(s.next_id(), 0);
        assert_eq!(s.next_id(), 1);
    }

    #[test]
    fn store_keeps_anomalies_topk_and_recent() {
        let mut store = TraceStore::new(2, 2);
        for id in 0..6 {
            store.offer(completed_trace(id, 1_000 * (id + 1)));
        }
        let mut shed = RequestTrace::new(99, 0);
        shed.record(SpanStage::Enqueued);
        shed.record(SpanStage::Shed);
        store.offer(shed);

        let traces = store.traces();
        let ids: Vec<u64> = traces.iter().map(|t| t.id).collect();
        // Anomaly first, then the two slowest completions, then the two
        // most recent of the demoted remainder.
        assert!(ids.contains(&99));
        assert!(
            ids.contains(&4) && ids.contains(&5),
            "top-k slowest: {ids:?}"
        );
        assert_eq!(store.offered(), 7);
        assert_eq!(store.retained(), traces.len());
        assert!(store.dropped() > 0);
    }
}
