//! The dense memory array of a CA-RAM slice (SRAM or DRAM).
//!
//! The array is a plain `2^R × C`-bit random access memory — completely
//! decoupled from the match logic, which is the source of CA-RAM's density
//! advantage (Sec. 3.1). Rows are exposed both as whole-row accesses (what a
//! search performs) and as word-addressable RAM-mode accesses (Sec. 3.2).
//!
//! Rows are stored cache-line aligned: the backing store is a vector of
//! 64-byte lines and every row starts on a line boundary, so fetching a
//! row touches `⌈row_bytes / 64⌉` lines instead of straddling one extra
//! line at an arbitrary offset — the software analogue of a row fetch
//! lighting up exactly one wordline. RAM-mode addresses stay *logical*
//! (row-major over `row_words`-word rows, no padding visible), so the
//! Sec. 3.2 address map is unchanged.

use crate::error::{CaRamError, Result};
#[cfg(feature = "storage")]
use crate::storage::mapped::MappedArray;
use crate::storage::StorageBackend;

/// One 64-byte line of backing store; the alignment guarantees every row
/// (and the vector itself) starts on a cache-line boundary.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheLine([u64; 8]);

const WORDS_PER_LINE: u32 = 8;

/// Prefetches the cache line holding `r` (best-effort, see
/// [`prefetch_line`]). Used by the slice layer to pull a row's auxiliary
/// word in alongside its data lines.
#[inline]
pub(crate) fn prefetch_ref<T>(r: &T) {
    prefetch_line(core::ptr::from_ref(r).cast::<u8>());
}

/// Issues a best-effort prefetch of the cache line at `p` into L1.
/// A no-op on architectures without a portable hint and under Miri
/// (which does not model caches).
#[inline]
fn prefetch_line(p: *const u8) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: prefetch is a hint; it cannot fault even on bad addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    // SAFETY: PRFM is a hint; it cannot fault even on bad addresses.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(all(any(target_arch = "x86_64", target_arch = "aarch64"), not(miri))))]
    let _ = p;
}

/// Where the array's words physically live (see [`StorageBackend`]).
#[derive(Debug)]
enum Store {
    /// Cache-line-aligned heap memory — the zero-cost default.
    Heap(Vec<CacheLine>),
    /// An mmap'd (or buffered, off-Linux) file region.
    #[cfg(feature = "storage")]
    Mapped(MappedArray),
}

impl Store {
    #[inline]
    fn words(&self) -> &[u64] {
        match self {
            // SAFETY: `CacheLine` is `repr(C)` over `[u64; 8]`, so the
            // vector is one contiguous, properly aligned run of `8 * len`
            // words.
            Store::Heap(data) => unsafe {
                core::slice::from_raw_parts(
                    data.as_ptr().cast::<u64>(),
                    data.len() * WORDS_PER_LINE as usize,
                )
            },
            #[cfg(feature = "storage")]
            Store::Mapped(m) => m.words(),
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match self {
            // SAFETY: as in `words`; the borrow is exclusive.
            Store::Heap(data) => unsafe {
                core::slice::from_raw_parts_mut(
                    data.as_mut_ptr().cast::<u64>(),
                    data.len() * WORDS_PER_LINE as usize,
                )
            },
            #[cfg(feature = "storage")]
            Store::Mapped(m) => m.words_mut(),
        }
    }
}

/// A `rows × row_bits` bit-accurate memory array.
///
/// Words live on the heap by default, or in a file region when built with
/// [`MemoryArray::with_backend`]. Cloning a file-backed array detaches it:
/// the clone is an ordinary heap array holding the same words.
#[derive(Debug)]
pub struct MemoryArray {
    rows: u64,
    row_bits: u32,
    row_words: u32,
    /// Physical words per row: `row_words` rounded up to a whole number
    /// of cache lines. The pad words are never exposed and stay zero.
    stride_words: u32,
    store: Store,
}

impl Clone for MemoryArray {
    fn clone(&self) -> Self {
        match &self.store {
            Store::Heap(data) => Self {
                rows: self.rows,
                row_bits: self.row_bits,
                row_words: self.row_words,
                stride_words: self.stride_words,
                store: Store::Heap(data.clone()),
            },
            #[cfg(feature = "storage")]
            Store::Mapped(_) => {
                let mut copy = Self::new(self.rows, self.row_bits);
                copy.store.words_mut().copy_from_slice(self.store.words());
                copy
            }
        }
    }
}

impl PartialEq for MemoryArray {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.row_bits == other.row_bits
            && self.store.words() == other.store.words()
    }
}

impl Eq for MemoryArray {}

impl MemoryArray {
    fn geometry(rows: u64, row_bits: u32) -> (u32, u32, usize) {
        assert!(rows > 0, "array needs at least one row");
        assert!(row_bits > 0, "rows need at least one bit");
        let row_words = row_bits.div_ceil(64);
        let stride_words = row_words.next_multiple_of(WORDS_PER_LINE);
        let lines = usize::try_from(rows * u64::from(stride_words / WORDS_PER_LINE))
            .expect("array size exceeds the address space");
        (row_words, stride_words, lines)
    }

    /// Allocates a zeroed array of `rows` rows of `row_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: u64, row_bits: u32) -> Self {
        let (row_words, stride_words, lines) = Self::geometry(rows, row_bits);
        Self {
            rows,
            row_bits,
            row_words,
            stride_words,
            store: Store::Heap(vec![CacheLine([0; 8]); lines]),
        }
    }

    /// Builds an array whose words live on the given backend. The heap
    /// backend is identical to [`MemoryArray::new`]; the file backend
    /// opens (or creates) the backing file, preserving any words already
    /// flushed there — geometry is validated against the file's
    /// superblock.
    ///
    /// # Errors
    ///
    /// For [`StorageBackend::File`]: any
    /// [`CaRamError::Durability`] error from
    /// [`MappedArray::open`], or a typed `Unsupported` error when built
    /// without the `storage` feature.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_backend(rows: u64, row_bits: u32, backend: &StorageBackend) -> Result<Self> {
        match backend {
            StorageBackend::Heap => Ok(Self::new(rows, row_bits)),
            #[cfg(feature = "storage")]
            StorageBackend::File { path } => {
                let (row_words, stride_words, lines) = Self::geometry(rows, row_bits);
                let data_words = lines * WORDS_PER_LINE as usize;
                let mapped = MappedArray::open(path, rows, row_bits, stride_words, data_words)?;
                Ok(Self {
                    rows,
                    row_bits,
                    row_words,
                    stride_words,
                    store: Store::Mapped(mapped),
                })
            }
            #[cfg(not(feature = "storage"))]
            StorageBackend::File { .. } => Err(CaRamError::Durability {
                kind: crate::error::DurabilityErrorKind::Unsupported,
                detail: "file-backed arrays need the `storage` cargo feature".into(),
            }),
        }
    }

    /// Writes file-backed words durably to disk; a no-op for heap arrays.
    ///
    /// # Errors
    ///
    /// [`CaRamError::Durability`] when the backing store's sync fails.
    pub fn flush(&mut self) -> Result<()> {
        match &mut self.store {
            Store::Heap(_) => Ok(()),
            #[cfg(feature = "storage")]
            Store::Mapped(m) => m.flush(),
        }
    }

    /// True when the words live in a file region rather than on the heap.
    #[must_use]
    pub fn is_file_backed(&self) -> bool {
        match &self.store {
            Store::Heap(_) => false,
            #[cfg(feature = "storage")]
            Store::Mapped(_) => true,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bits per row (`C`).
    #[must_use]
    pub fn row_bits(&self) -> u32 {
        self.row_bits
    }

    /// 64-bit words per row.
    #[must_use]
    pub fn row_words(&self) -> u32 {
        self.row_words
    }

    /// Total addressable words (RAM mode). Pad words are not addressable,
    /// so this is exactly `rows × row_words`.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.rows * u64::from(self.row_words)
    }

    /// The backing store viewed as words (including row padding).
    #[inline]
    fn words(&self) -> &[u64] {
        self.store.words()
    }

    /// Mutable view of the backing store as words (including padding).
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        self.store.words_mut()
    }

    fn row_range(&self, row: u64) -> core::ops::Range<usize> {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        let start = usize::try_from(row * u64::from(self.stride_words)).expect("checked at new");
        start..start + self.row_words as usize
    }

    /// The words of `row` — what one memory access fetches.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn row(&self, row: u64) -> &[u64] {
        let r = self.row_range(row);
        &self.words()[r]
    }

    /// Mutable access to the words of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_mut(&mut self, row: u64) -> &mut [u64] {
        let r = self.row_range(row);
        &mut self.words_mut()[r]
    }

    /// Hints the hardware to pull the leading cache lines of `row` into
    /// L1 (capped at 8 lines — one 64-slot word-1 row; past that the
    /// fetch outruns the compare). Out-of-range rows are ignored: a
    /// prefetch is advisory, never a bounds check.
    #[inline]
    pub fn prefetch_row(&self, row: u64) {
        if row >= self.rows {
            return;
        }
        let lines_per_row = (self.stride_words / WORDS_PER_LINE) as usize;
        let Ok(base) = usize::try_from(row * u64::from(self.stride_words)) else {
            return;
        };
        let words = self.words();
        for line in 0..lines_per_row.min(8) {
            prefetch_line(
                core::ptr::from_ref(&words[base + line * WORDS_PER_LINE as usize]).cast::<u8>(),
            );
        }
    }

    /// Translates a logical RAM-mode word address to its index in the
    /// padded backing store.
    #[inline]
    fn physical_index(&self, address: u64) -> Option<usize> {
        if address >= self.total_words() {
            return None;
        }
        let row = address / u64::from(self.row_words);
        let offset = address % u64::from(self.row_words);
        usize::try_from(row * u64::from(self.stride_words) + offset).ok()
    }

    /// RAM-mode word read (Sec. 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for addresses past the end.
    pub fn read_word(&self, address: u64) -> Result<u64> {
        self.physical_index(address)
            .map(|idx| self.words()[idx])
            .ok_or(CaRamError::AddressOutOfRange {
                address,
                words: self.total_words(),
            })
    }

    /// RAM-mode word write (Sec. 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for addresses past the end.
    pub fn write_word(&mut self, address: u64, value: u64) -> Result<()> {
        let words = self.total_words();
        let idx = self
            .physical_index(address)
            .ok_or(CaRamError::AddressOutOfRange { address, words })?;
        self.words_mut()[idx] = value;
        Ok(())
    }

    /// Zeroes the whole array (a hardware-style bulk clear).
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let a = MemoryArray::new(2048, 2048);
        assert_eq!(a.rows(), 2048);
        assert_eq!(a.row_bits(), 2048);
        assert_eq!(a.row_words(), 32);
        assert_eq!(a.total_words(), 2048 * 32);
    }

    #[test]
    fn row_width_rounds_up_to_words() {
        let a = MemoryArray::new(4, 65);
        assert_eq!(a.row_words(), 2);
        assert_eq!(a.row(0).len(), 2);
    }

    #[test]
    fn rows_start_on_cache_line_boundaries() {
        // Rows whose logical width is not a whole number of lines are
        // padded out, so every row pointer is 64-byte aligned and a row
        // fetch touches ceil(row_bytes / 64) lines, never one more.
        for row_bits in [64u32, 65, 512, 513, 2048, 2048 + 64] {
            let a = MemoryArray::new(4, row_bits);
            for row in 0..4 {
                let p = a.row(row).as_ptr() as usize;
                assert_eq!(p % 64, 0, "row {row} of {row_bits}-bit rows misaligned");
            }
        }
    }

    #[test]
    fn rows_are_independent() {
        let mut a = MemoryArray::new(4, 128);
        a.row_mut(1)[0] = 0xAAAA;
        a.row_mut(2)[1] = 0xBBBB;
        assert_eq!(a.row(0), &[0, 0]);
        assert_eq!(a.row(1), &[0xAAAA, 0]);
        assert_eq!(a.row(2), &[0, 0xBBBB]);
        assert_eq!(a.row(3), &[0, 0]);
    }

    #[test]
    fn ram_mode_addresses_row_major() {
        let mut a = MemoryArray::new(2, 128);
        a.row_mut(1)[1] = 77;
        assert_eq!(a.read_word(3).unwrap(), 77);
        a.write_word(0, 11).unwrap();
        assert_eq!(a.row(0)[0], 11);
    }

    #[test]
    fn ram_mode_addresses_skip_row_padding() {
        // 65-bit rows occupy 2 logical words but a full 8-word line of
        // backing store; logical address 2 must land on row 1's first
        // word, not on row 0's padding.
        let mut a = MemoryArray::new(3, 65);
        a.write_word(2, 42).unwrap();
        assert_eq!(a.row(1)[0], 42);
        assert_eq!(a.row(0), &[0, 0]);
        a.row_mut(2)[1] = 7;
        assert_eq!(a.read_word(5).unwrap(), 7);
    }

    #[test]
    fn ram_mode_out_of_range() {
        let mut a = MemoryArray::new(2, 64);
        assert!(matches!(
            a.read_word(2),
            Err(CaRamError::AddressOutOfRange {
                address: 2,
                words: 2
            })
        ));
        assert!(a.write_word(100, 0).is_err());
    }

    #[test]
    fn prefetch_is_a_safe_no_op_semantically() {
        let a = MemoryArray::new(2, 2048);
        a.prefetch_row(0);
        a.prefetch_row(1);
        a.prefetch_row(99); // out of range: ignored, not a panic
        assert_eq!(a.row(0)[0], 0);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut a = MemoryArray::new(2, 64);
        a.write_word(0, 5).unwrap();
        a.write_word(1, 6).unwrap();
        a.clear();
        assert_eq!(a.read_word(0).unwrap(), 0);
        assert_eq!(a.read_word(1).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "row 9 out of range")]
    fn row_out_of_range_panics() {
        let a = MemoryArray::new(9, 64);
        let _ = a.row(9);
    }

    #[test]
    fn heap_backend_matches_new() {
        let a = MemoryArray::new(4, 130);
        let b = MemoryArray::with_backend(4, 130, &StorageBackend::Heap).expect("heap backend");
        assert_eq!(a, b);
        assert!(!b.is_file_backed());
    }

    #[cfg(feature = "storage")]
    #[test]
    fn file_backend_persists_across_reopen() {
        let path =
            std::env::temp_dir().join(format!("ca_ram_array_backend_{}.arr", std::process::id()));
        std::fs::remove_file(&path).ok();
        let backend = StorageBackend::file(&path);
        {
            let mut a = MemoryArray::with_backend(3, 130, &backend).expect("create");
            assert!(a.is_file_backed());
            a.row_mut(1)[0] = 0xFEED;
            a.write_word(5, 99).unwrap();
            a.flush().expect("flush");
            // Cloning detaches to the heap with identical words.
            let c = a.clone();
            assert!(!c.is_file_backed());
            assert_eq!(c, a);
        }
        {
            let a = MemoryArray::with_backend(3, 130, &backend).expect("reopen");
            assert_eq!(a.row(1)[0], 0xFEED);
            assert_eq!(a.read_word(5).unwrap(), 99);
        }
        std::fs::remove_file(&path).ok();
    }
}
