//! The [`Strategy`] trait and the combinators used by this workspace.

use rand::rngs::SmallRng;
use rand::SampleRange;

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a concrete value from an RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies
/// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = (0..self.options.len()).sample_single(rng);
        self.options[idx].generate(rng)
    }
}

/// Numeric ranges are strategies drawing uniformly from the range.
macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                self.clone().sample_single(rng)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        self.clone().sample_single(rng)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut SmallRng) -> f32 {
        self.clone().sample_single(rng)
    }
}

/// Tuples of strategies generate tuples of values.
macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_oneof;
    use rand::SeedableRng;

    #[test]
    fn map_and_union_compose() {
        let strat = prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v + 1),
        ];
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(
                (v % 2 == 0 && v < 20) || (101..111).contains(&v),
                "unexpected value {v}"
            );
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strat = (0u8..4, 10u16..14, Just("x"));
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 4 && (10..14).contains(&b) && c == "x");
        }
    }
}
