//! The sharded serving frontend: router, worker pool, admission control,
//! synchronous convenience surface, and telemetry export.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use ca_ram_core::engine::{EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::{CaRamError, Result};
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;
use ca_ram_core::pattern::QueryPlan;
use ca_ram_core::telemetry::{
    Histogram, MetricsRegistry, RequestTrace, ScopeKind, SloPolicy, SloReport, SloTracker,
    SpanStage,
};

use crate::config::ServiceConfig;
use crate::request::{
    AdmissionError, BatchSlot, BatchTicket, PendingSubBatch, RingEntry, ServiceOp, ServiceReply,
    Ticket,
};
use crate::shard::Shard;
use crate::trace::{FlightEventKind, LadderRung, LadderTransition};

/// Schema identifier stamped into every flight-recorder dump.
pub const FLIGHT_SCHEMA: &str = "ca-ram-flight/v1";

/// Counter snapshot of one shard: admission, shedding-ladder, and
/// batching counters, all monotone since service start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct ShardSnapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub shed_deadline: u64,
    pub shed_shutdown: u64,
    pub coalesced: u64,
    pub telemetry_shed: u64,
    pub batches: u64,
    pub max_batch: u64,
    pub searches: u64,
    pub inserts: u64,
    pub deletes: u64,
    pub batch_entries: u64,
    pub batch_keys: u64,
    pub parks: u64,
    pub unparks: u64,
}

impl ShardSnapshot {
    fn accumulate(&mut self, other: &ShardSnapshot) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.shed_deadline += other.shed_deadline;
        self.shed_shutdown += other.shed_shutdown;
        self.coalesced += other.coalesced;
        self.telemetry_shed += other.telemetry_shed;
        self.batches += other.batches;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.searches += other.searches;
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.batch_entries += other.batch_entries;
        self.batch_keys += other.batch_keys;
        self.parks += other.parks;
        self.unparks += other.unparks;
    }
}

/// Point-in-time counters for a whole service.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
}

impl ServiceSnapshot {
    /// Counters summed across shards (`max_batch` is the max).
    #[must_use]
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.shards {
            total.accumulate(shard);
        }
        total
    }
}

/// A sharded, concurrent serving frontend over a fleet of engines.
///
/// Keys hash to one of N shards; each shard owns its engine exclusively
/// behind a bounded request queue drained by one worker thread, so the
/// per-shard operation order is the admission order. Multi-shard routing
/// hashes the key *value*, which is consistent for exact-match workloads;
/// ternary records whose masked search keys differ in value can route to a
/// different shard than their stored pattern, so ternary/LPM fleets should
/// use a single shard (see [`ServiceConfig::single_shard`]).
pub struct SearchService {
    shards: Vec<Arc<Shard>>,
    workers: Vec<JoinHandle<()>>,
    config: ServiceConfig,
    key_bits: u32,
    /// The SLO watchdog's window state, ticked by [`SearchService::slo_tick`].
    slo: Mutex<SloTracker>,
}

/// Locks a mutex, riding through a poisoned lock (the protected state is
/// counters/windows, always internally consistent).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SearchService {
    /// Builds a service over `engines`, one shard per engine, and starts one
    /// worker thread per shard.
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::BadConfig`] if the configuration fails
    /// [`ServiceConfig::validate`], the engine count does not match
    /// `config.shards`, or the engines disagree on key width.
    pub fn new(config: ServiceConfig, engines: Vec<Box<dyn SearchEngine>>) -> Result<Self> {
        config.validate()?;
        if engines.len() != config.shards {
            return Err(CaRamError::BadConfig(format!(
                "{} shards configured but {} engines supplied",
                config.shards,
                engines.len()
            )));
        }
        let key_bits = engines[0].key_bits();
        if let Some(other) = engines.iter().find(|e| e.key_bits() != key_bits) {
            return Err(CaRamError::BadConfig(format!(
                "shard engines disagree on key width: {} vs {} bits",
                key_bits,
                other.key_bits()
            )));
        }
        let shards: Vec<Arc<Shard>> = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| Arc::new(Shard::new(index, engine, &config)))
            .collect();
        let workers = shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let shard = Arc::clone(shard);
                std::thread::Builder::new()
                    .name(format!("ca-ram-shard-{index}"))
                    .spawn(move || shard.worker_loop())
                    .map_err(|e| CaRamError::BadConfig(format!("cannot spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let slo = Mutex::new(SloTracker::new(SloPolicy {
            target_us: config.slo_target_us,
            error_budget: config.slo_error_budget,
        }));
        Ok(Self {
            shards,
            workers,
            config,
            key_bits,
            slo,
        })
    }

    /// The configuration this service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Key width served, in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// The shard a key value routes to (`SplitMix64` finalizer over the folded
    /// value, reduced mod the shard count).
    #[must_use]
    pub fn shard_of_value(&self, value: u128) -> usize {
        route_shard(value, self.shards.len())
    }

    fn shard_of(&self, op: &ServiceOp) -> &Arc<Shard> {
        &self.shards[self.shard_of_value(op.route_value())]
    }

    /// Non-blocking admission: enqueue on the routed shard or refuse.
    /// The configured default deadline applies.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the shard queue is at capacity
    /// (load shedding at the door), [`AdmissionError::ShuttingDown`] after
    /// shutdown began.
    pub fn try_submit(&self, op: ServiceOp) -> std::result::Result<Ticket, AdmissionError> {
        self.try_submit_with_deadline(op, self.default_deadline())
    }

    /// As [`SearchService::try_submit`] with an explicit absolute deadline
    /// (`None` = no deadline) overriding the configured default.
    ///
    /// # Errors
    ///
    /// As [`SearchService::try_submit`].
    pub fn try_submit_with_deadline(
        &self,
        op: ServiceOp,
        deadline: Option<Instant>,
    ) -> std::result::Result<Ticket, AdmissionError> {
        self.shard_of(&op).try_submit(op, deadline)
    }

    /// Blocking admission: backpressure on a full queue instead of refusing.
    /// The configured default deadline applies (and keeps ticking while
    /// blocked).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, op: ServiceOp) -> std::result::Result<Ticket, AdmissionError> {
        self.submit_with_deadline(op, self.default_deadline())
    }

    /// As [`SearchService::submit`] with an explicit absolute deadline.
    ///
    /// # Errors
    ///
    /// As [`SearchService::submit`].
    pub fn submit_with_deadline(
        &self,
        op: ServiceOp,
        deadline: Option<Instant>,
    ) -> std::result::Result<Ticket, AdmissionError> {
        self.shard_of(&op).submit_blocking(op, deadline)
    }

    fn default_deadline(&self) -> Option<Instant> {
        self.config.default_deadline.map(|d| Instant::now() + d)
    }

    /// Batched search admission: routes `keys` to their shards in one
    /// pass, enqueues one ring entry per involved shard (carrying that
    /// shard's sub-batch), and returns a single [`BatchTicket`] whose
    /// completion holds one reply per key in input order.
    ///
    /// Admission is all-or-nothing: either every sub-batch is queued or the
    /// whole batch is refused, so callers never see partial admission. The
    /// configured default deadline applies.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] naming the first shard without room,
    /// [`AdmissionError::ShuttingDown`] after shutdown began.
    pub fn try_submit_batch(
        &self,
        keys: &[SearchKey],
    ) -> std::result::Result<BatchTicket, AdmissionError> {
        self.try_submit_batch_with_deadline(keys, self.default_deadline())
    }

    /// As [`SearchService::try_submit_batch`] with an explicit absolute
    /// deadline overriding the configured default.
    ///
    /// # Errors
    ///
    /// As [`SearchService::try_submit_batch`].
    ///
    /// # Panics
    ///
    /// Panics on batches longer than `u32::MAX` keys (reply positions are
    /// 32-bit).
    pub fn try_submit_batch_with_deadline(
        &self,
        keys: &[SearchKey],
        deadline: Option<Instant>,
    ) -> std::result::Result<BatchTicket, AdmissionError> {
        if keys.is_empty() {
            let slot = BatchSlot::new(0, 1);
            slot.finish_sub();
            return Ok(BatchTicket::new(slot));
        }
        // Route every key in one pass: per-shard key + position slices.
        let mut subs: Vec<(usize, Vec<SearchKey>, Vec<u32>)> = Vec::new();
        let mut sub_of_shard = vec![usize::MAX; self.shards.len()];
        for (position, key) in keys.iter().enumerate() {
            let shard = self.shard_of_value(key.value());
            let sub = if sub_of_shard[shard] == usize::MAX {
                sub_of_shard[shard] = subs.len();
                subs.push((shard, Vec::new(), Vec::new()));
                subs.len() - 1
            } else {
                sub_of_shard[shard]
            };
            subs[sub].1.push(*key);
            subs[sub]
                .2
                .push(u32::try_from(position).expect("batch fits u32"));
        }

        // All-or-nothing admission: enter every involved shard's submit
        // window, reserve one ring entry on each, roll back on any refusal.
        let mut entered = 0usize;
        for &(shard, _, _) in &subs {
            if self.shards[shard].enter() {
                entered += 1;
            } else {
                for &(s, _, _) in &subs[..entered] {
                    self.shards[s].exit();
                }
                return Err(AdmissionError::ShuttingDown);
            }
        }
        let mut reserved = 0usize;
        let mut refused = None;
        for &(shard, _, _) in &subs {
            if self.shards[shard].try_reserve() {
                reserved += 1;
            } else {
                refused = Some(shard);
                break;
            }
        }
        if let Some(shard) = refused {
            for &(s, _, _) in &subs[..reserved] {
                self.shards[s].release();
            }
            for &(s, _, _) in &subs {
                self.shards[s].exit();
            }
            self.shards[shard].note_rejected(keys.len() as u64);
            return Err(AdmissionError::QueueFull {
                shard,
                depth: self.shards[shard].depth(),
            });
        }

        let slot = BatchSlot::new(keys.len(), subs.len());
        for (shard, sub_keys, positions) in subs {
            // One head-sampling decision (and at most one allocation) per
            // sub-batch, not per key.
            let mut trace = self.shards[shard].tracer.start_trace();
            if let Some(t) = trace.as_deref_mut() {
                t.record(SpanStage::Enqueued);
            }
            self.shards[shard].push_reserved(RingEntry::Batch(PendingSubBatch {
                keys: sub_keys.into_boxed_slice(),
                positions: positions.into_boxed_slice(),
                deadline,
                slot: Arc::clone(&slot),
                trace,
            }));
            self.shards[shard].exit();
        }
        Ok(BatchTicket::new(slot))
    }

    /// Synchronous search: submit (blocking admission), wait, unwrap.
    ///
    /// # Panics
    ///
    /// Panics if the service is shutting down or the request was shed by a
    /// configured deadline — the synchronous surface is meant for use
    /// without deadlines (tests, conformance, the oracle fuzzer).
    #[must_use]
    pub fn search_sync(&self, key: &SearchKey) -> EngineOutcome {
        match self.roundtrip(ServiceOp::Search(*key)) {
            ServiceReply::Search(outcome) => outcome,
            other => panic!("search answered with {other:?}"),
        }
    }

    /// Synchronous execution of a compiled multi-probe query plan (the
    /// pattern compiler's nearest-match ladders and range probes): probes
    /// in plan order through the service, first hit wins, memory accesses
    /// summed across every probe issued — the same contract as
    /// [`QueryPlan::execute`] against a raw engine, but with each probe
    /// individually admitted, routed, and counted by the shard it lands on.
    ///
    /// # Panics
    ///
    /// As [`SearchService::search_sync`].
    #[must_use]
    pub fn search_plan_sync(&self, plan: &QueryPlan) -> EngineOutcome {
        let mut accesses = 0u32;
        for probe in plan.probes() {
            let outcome = self.search_sync(probe);
            accesses = accesses.saturating_add(outcome.memory_accesses);
            if outcome.hit.is_some() {
                return EngineOutcome {
                    hit: outcome.hit,
                    memory_accesses: accesses,
                };
            }
        }
        EngineOutcome::miss(accesses)
    }

    /// Synchronous insert (append placement).
    ///
    /// # Errors
    ///
    /// The routed engine's verdict, e.g. capacity exhaustion.
    ///
    /// # Panics
    ///
    /// As [`SearchService::search_sync`].
    pub fn insert_sync(&self, record: Record) -> Result<()> {
        match self.roundtrip(ServiceOp::Insert(record)) {
            ServiceReply::Insert(verdict) => verdict,
            other => panic!("insert answered with {other:?}"),
        }
    }

    /// Synchronous priority-preserving insert.
    ///
    /// # Errors
    ///
    /// The routed engine's verdict.
    ///
    /// # Panics
    ///
    /// As [`SearchService::search_sync`].
    pub fn insert_sorted_sync(&self, record: Record) -> Result<()> {
        match self.roundtrip(ServiceOp::InsertSorted(record)) {
            ServiceReply::Insert(verdict) => verdict,
            other => panic!("insert_sorted answered with {other:?}"),
        }
    }

    /// Synchronous delete; returns stored copies removed.
    ///
    /// # Panics
    ///
    /// As [`SearchService::search_sync`].
    #[must_use]
    pub fn delete_sync(&self, key: &TernaryKey) -> u32 {
        match self.roundtrip(ServiceOp::Delete(*key)) {
            ServiceReply::Delete(removed) => removed,
            other => panic!("delete answered with {other:?}"),
        }
    }

    fn roundtrip(&self, op: ServiceOp) -> ServiceReply {
        let ticket = self
            .submit_with_deadline(op, None)
            .expect("service accepting requests");
        ticket.wait().reply
    }

    /// Occupancy summed across shards (records/capacity are `Some` only if
    /// every shard reports them).
    #[must_use]
    pub fn occupancy(&self) -> EngineReport {
        let mut records = Some(0u64);
        let mut capacity = Some(0u64);
        for shard in &self.shards {
            let report = shard.occupancy();
            records = records.zip(report.records).map(|(a, b)| a + b);
            capacity = capacity.zip(report.capacity).map(|(a, b)| a + b);
        }
        EngineReport { records, capacity }
    }

    /// Current counters, per shard.
    #[must_use]
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    let s = &shard.stats;
                    ShardSnapshot {
                        accepted: s.accepted.load(Ordering::Relaxed),
                        rejected: s.rejected.load(Ordering::Relaxed),
                        shed_deadline: s.shed_deadline.load(Ordering::Relaxed),
                        shed_shutdown: s.shed_shutdown.load(Ordering::Relaxed),
                        coalesced: s.coalesced.load(Ordering::Relaxed),
                        telemetry_shed: s.telemetry_shed.load(Ordering::Relaxed),
                        batches: s.batches.load(Ordering::Relaxed),
                        max_batch: s.max_batch.load(Ordering::Relaxed),
                        searches: s.searches.load(Ordering::Relaxed),
                        inserts: s.inserts.load(Ordering::Relaxed),
                        deletes: s.deletes.load(Ordering::Relaxed),
                        batch_entries: s.batch_entries.load(Ordering::Relaxed),
                        batch_keys: s.batch_keys.load(Ordering::Relaxed),
                        parks: s.parks.load(Ordering::Relaxed),
                        unparks: s.unparks.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }

    // ---- observability v2: tracing, flight recorder, SLO watchdog -----

    /// Reconfigures request-lifecycle trace sampling on every shard at
    /// runtime: keep 1 in `period` admissions (rounded up to a power of
    /// two), 0 to disable tracing entirely. Requests already queued keep
    /// whatever sampling decision admission made.
    pub fn set_trace_period(&self, period: u64) {
        for shard in &self.shards {
            shard.tracer.set_period(period);
        }
    }

    /// The effective trace-sampling period (0 = tracing off).
    #[must_use]
    pub fn trace_period(&self) -> u64 {
        self.shards[0].tracer.period()
    }

    /// Every trace the per-shard tail-retention stores currently keep:
    /// anomalies (sheds, rejects), the rolling top-k slowest completions,
    /// and a bounded most-recent ring.
    #[must_use]
    pub fn retained_traces(&self) -> Vec<RequestTrace> {
        self.shards
            .iter()
            .flat_map(|shard| shard.tracer.retained())
            .collect()
    }

    /// Drains the degradation-ladder transitions recorded since the last
    /// call (or service start), across every shard.
    #[must_use]
    pub fn take_ladder_transitions(&self) -> Vec<LadderTransition> {
        self.shards
            .iter()
            .flat_map(|shard| shard.tracer.take_transitions())
            .collect()
    }

    /// The ladder rung each shard currently sits on.
    #[must_use]
    pub fn ladder_rungs(&self) -> Vec<LadderRung> {
        self.shards
            .iter()
            .map(|shard| shard.tracer.current_rung())
            .collect()
    }

    /// The request-weighted queue depth of each shard right now.
    #[must_use]
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| shard.queued_depth())
            .collect()
    }

    /// The SLO policy the watchdog evaluates against.
    #[must_use]
    pub fn slo_policy(&self) -> SloPolicy {
        lock(&self.slo).policy()
    }

    /// Evaluates one SLO window: the completion-latency distribution and
    /// error count accumulated since the previous tick, turned into
    /// p50/p99, bad-event fraction, and error-budget burn rate. A
    /// breached window stamps an `slo_breach` event into every shard's
    /// flight ring, so on-demand dumps carry the anomaly context.
    pub fn slo_tick(&self) -> SloReport {
        let mut latency = Histogram::new();
        for shard in &self.shards {
            latency.merge(&shard.tracer.latency_us.snapshot());
        }
        let totals = self.snapshot().totals();
        let errors = totals.rejected + totals.shed_deadline + totals.shed_shutdown;
        let report = lock(&self.slo).tick(&latency, errors);
        if report.breached {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let burn_milli = (report.burn_rate * 1000.0).min(1e18) as u64;
            for shard in &self.shards {
                shard
                    .tracer
                    .event(FlightEventKind::SloBreach, report.p99_us, burn_milli);
            }
        }
        report
    }

    /// The most recent SLO window report, if any tick has run.
    #[must_use]
    pub fn last_slo(&self) -> Option<SloReport> {
        lock(&self.slo).last()
    }

    /// SLO windows evaluated and breached so far.
    #[must_use]
    pub fn slo_windows(&self) -> (u64, u64) {
        let slo = lock(&self.slo);
        (slo.ticks(), slo.breach_windows())
    }

    /// Dumps the flight recorder as `ca-ram-flight/v1` JSON: per-shard
    /// recent events and retained traces, the admission-conservation
    /// counters, and the last SLO report. Called on anomaly (SLO breach,
    /// shed storm, orphan risk at shutdown) or on demand.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn flight_json(&self, reason: &str) -> String {
        let snapshot = self.snapshot();
        let totals = snapshot.totals();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{FLIGHT_SCHEMA}\",");
        let _ = writeln!(out, "  \"reason\": \"{}\",", escape_json(reason));
        let _ = writeln!(out, "  \"trace_period\": {},", self.trace_period());
        match self.last_slo() {
            Some(slo) => {
                let _ = writeln!(
                    out,
                    "  \"slo\": {{\"window_count\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                     \"breaches\": {}, \"errors\": {}, \"bad_fraction\": {}, \
                     \"burn_rate\": {}, \"breached\": {}}},",
                    slo.window_count,
                    slo.p50_us,
                    slo.p99_us,
                    slo.breaches,
                    slo.errors,
                    json_f64(slo.bad_fraction),
                    json_f64(slo.burn_rate),
                    slo.breached
                );
            }
            None => out.push_str("  \"slo\": null,\n"),
        }
        // Conservation: every admitted request reaches exactly one
        // terminal, so completed + sheds == accepted and
        // accepted + rejected == admitted (offered).
        let completed = totals.accepted - totals.shed_deadline - totals.shed_shutdown;
        let _ = writeln!(
            out,
            "  \"conservation\": {{\"admitted\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"shed_deadline\": {}, \"shed_shutdown\": {}, \"completed\": {}}},",
            totals.accepted + totals.rejected,
            totals.accepted,
            totals.rejected,
            totals.shed_deadline,
            totals.shed_shutdown,
            completed
        );
        out.push_str("  \"shards\": [\n");
        for (index, shard) in self.shards.iter().enumerate() {
            let tracer = &shard.tracer;
            let (recorded, overwritten, capacity) = tracer.recorder_stats();
            let (offered, dropped, retained) = tracer.store_stats();
            let _ = writeln!(out, "    {{\n      \"shard\": {index},");
            let _ = writeln!(
                out,
                "      \"rung\": \"{}\",\n      \"depth\": {},\n      \"transitions\": {},",
                tracer.current_rung().name(),
                shard.queued_depth(),
                tracer.transition_count()
            );
            let _ = writeln!(
                out,
                "      \"recorder\": {{\"recorded\": {recorded}, \"overwritten\": \
                 {overwritten}, \"capacity\": {capacity}}},"
            );
            let _ = writeln!(
                out,
                "      \"store\": {{\"offered\": {offered}, \"dropped\": {dropped}, \
                 \"retained\": {retained}}},"
            );
            out.push_str("      \"events\": [");
            for (i, (ticket, event)) in tracer.events().into_iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"ticket\": {ticket}, \"kind\": \"{}\", \"at_ns\": {}, \"a\": {}, \
                     \"b\": {}}}",
                    event.kind.name(),
                    event.at_ns,
                    event.a,
                    event.b
                );
            }
            out.push_str("],\n");
            out.push_str("      \"traces\": [");
            for (i, trace) in tracer.retained().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let terminal = trace
                    .terminal()
                    .map_or("open", ca_ram_core::telemetry::SpanStage::name);
                let _ = write!(
                    out,
                    "{{\"id\": {}, \"shard\": {}, \"terminal\": \"{terminal}\", \
                     \"total_ns\": {}, \"coverage\": {}, \"events\": [",
                    trace.id,
                    trace.shard,
                    trace.total_ns(),
                    json_f64(trace.span_coverage())
                );
                for (j, event) in trace.events().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"stage\": \"{}\", \"at_ns\": {}, \"detail\": {}}}",
                        event.stage.name(),
                        event.at_ns,
                        event.detail
                    );
                }
                out.push_str("]}");
            }
            out.push_str("]\n    }");
            out.push_str(if index + 1 == self.shards.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Exports service-level and per-shard scopes into `registry` (the
    /// `ca-ram-telemetry/v1` JSON/Prometheus surface): admission and
    /// shedding counters on the service scope, engine-call counters plus
    /// queue-depth/queue-wait histograms on each shard scope.
    #[allow(clippy::cast_precision_loss)]
    pub fn export_metrics(&self, registry: &mut MetricsRegistry, name: &str) {
        let snapshot = self.snapshot();
        let totals = snapshot.totals();
        let scope = registry.scope_mut(ScopeKind::Service, name);
        scope.set_counter("shards", self.shards.len() as u64);
        scope.set_counter("accepted", totals.accepted);
        scope.set_counter("rejected", totals.rejected);
        scope.set_counter("shed_deadline", totals.shed_deadline);
        scope.set_counter("shed_shutdown", totals.shed_shutdown);
        scope.set_counter("coalesced", totals.coalesced);
        scope.set_counter("telemetry_shed", totals.telemetry_shed);
        scope.set_counter("batches", totals.batches);
        scope.set_counter("max_batch", totals.max_batch);
        scope.set_counter("batch_entries", totals.batch_entries);
        scope.set_counter("batch_keys", totals.batch_keys);
        scope.set_counter("parks", totals.parks);
        scope.set_counter("unparks", totals.unparks);
        // Routing balance: hottest shard over coldest, by admitted requests.
        let max_accepted = snapshot.shards.iter().map(|s| s.accepted).max();
        let min_accepted = snapshot.shards.iter().map(|s| s.accepted).min();
        if let (Some(max), Some(min)) = (max_accepted, min_accepted) {
            if min > 0 {
                scope.set_gauge("routing_max_min_ratio", max as f64 / min as f64);
            }
        }
        let served = totals.accepted - totals.shed_deadline - totals.shed_shutdown;
        let offered = totals.accepted + totals.rejected;
        scope.set_gauge(
            "goodput_fraction",
            if offered == 0 {
                f64::NAN
            } else {
                served as f64 / offered as f64
            },
        );
        let transitions: u64 = self
            .shards
            .iter()
            .map(|s| s.tracer.transition_count())
            .sum();
        scope.set_counter("ladder_transitions", transitions);
        scope.set_counter("trace_period", self.trace_period());
        // The SLO watchdog's last window, as its own scope.
        if let Some(report) = self.last_slo() {
            let (ticks, breach_windows) = self.slo_windows();
            let policy = self.slo_policy();
            let scope = registry.scope_mut(ScopeKind::Slo, name);
            scope.set_counter("target_us", policy.target_us);
            scope.set_gauge("error_budget", policy.error_budget);
            scope.set_counter("window_count", report.window_count);
            scope.set_counter("p50_us", report.p50_us);
            scope.set_counter("p99_us", report.p99_us);
            scope.set_counter("breaches", report.breaches);
            scope.set_counter("errors", report.errors);
            scope.set_gauge("bad_fraction", report.bad_fraction);
            scope.set_gauge("burn_rate", report.burn_rate);
            scope.set_counter("breached", u64::from(report.breached));
            scope.set_counter("ticks", ticks);
            scope.set_counter("breach_windows", breach_windows);
        }
        for (index, (shard, counters)) in self.shards.iter().zip(&snapshot.shards).enumerate() {
            let scope = registry.scope_mut(ScopeKind::Shard, &format!("{name}/shard{index}"));
            scope.set_counter("accepted", counters.accepted);
            scope.set_counter("rejected", counters.rejected);
            scope.set_counter("shed_deadline", counters.shed_deadline);
            scope.set_counter("coalesced", counters.coalesced);
            scope.set_counter("telemetry_shed", counters.telemetry_shed);
            scope.set_counter("batches", counters.batches);
            scope.set_counter("max_batch", counters.max_batch);
            scope.set_counter("searches", counters.searches);
            scope.set_counter("inserts", counters.inserts);
            scope.set_counter("deletes", counters.deletes);
            scope.set_counter("batch_entries", counters.batch_entries);
            scope.set_counter("batch_keys", counters.batch_keys);
            scope.set_counter("parks", counters.parks);
            scope.set_counter("unparks", counters.unparks);
            scope.set_counter("write_epochs", shard.write_epochs());
            scope.set_counter("ladder_rung", shard.tracer.current_rung().index());
            scope.set_counter("ladder_transitions", shard.tracer.transition_count());
            let telemetry = shard.sink.snapshot();
            scope.set_histogram("queue_depth", telemetry.queue_depth.clone());
            scope.set_histogram("queue_wait_us", telemetry.queue_wait.clone());
            scope.set_histogram("latency_us", shard.tracer.latency_us.snapshot());
            // The flight ring and tail store, as a recorder scope.
            let (recorded, overwritten, capacity) = shard.tracer.recorder_stats();
            let (offered, dropped, retained) = shard.tracer.store_stats();
            let scope = registry.scope_mut(ScopeKind::Recorder, &format!("{name}/shard{index}"));
            scope.set_counter("recorded", recorded);
            scope.set_counter("overwritten", overwritten);
            scope.set_counter("capacity", capacity as u64);
            scope.set_counter("traces_offered", offered);
            scope.set_counter("traces_dropped", dropped);
            scope.set_counter("traces_retained", retained as u64);
            scope.set_counter("sample_period", shard.tracer.period());
        }
    }

    /// Begins shutdown from any thread: stops admission (subsequent
    /// submissions return [`AdmissionError::ShuttingDown`]) and wakes the
    /// workers, which finish what is queued. Does not join — the owner's
    /// [`SearchService::shutdown`] or drop still does, and sheds anything
    /// the workers never drained.
    pub fn begin_shutdown(&self) {
        for shard in &self.shards {
            shard.close();
        }
    }

    /// Graceful shutdown: stop admitting, finish everything queued, join the
    /// workers. Also runs on drop; calling it explicitly just surfaces the
    /// point of shutdown in the caller.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        for shard in &self.shards {
            shard.close();
        }
        for worker in self.workers.drain(..) {
            // A panicked worker abandoned its ring; the drain below still
            // sheds whatever it left behind.
            let _ = worker.join();
        }
        for shard in &self.shards {
            // Let in-flight submitters clear the reserve→push window, then
            // shed anything the (now joined) worker never drained.
            shard.await_submitters();
            shard.drain_after_join();
        }
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.close_and_join();
        }
    }
}

impl std::fmt::Debug for SearchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchService")
            .field("shards", &self.shards.len())
            .field("key_bits", &self.key_bits)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Minimal JSON string escaping for dump fields under caller control.
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A finite float rendered for JSON; non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// The shard a key value routes to under `shards`-way sharding — the same
/// `SplitMix64` mapping [`SearchService::shard_of_value`] uses, exposed so
/// benchmarks and key generators can pre-partition keys before (or
/// without) constructing a service.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn route_shard(value: u128, shards: usize) -> usize {
    let folded = (value as u64) ^ ((value >> 64) as u64);
    (splitmix64(folded) % shards.max(1) as u64) as usize
}

/// `SplitMix64` finalizer: cheap, well-mixed shard routing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::pattern::{compile, GeometryHint, Pattern, PatternSpec};

    #[test]
    fn search_plan_sync_walks_the_ladder_and_sums_accesses() {
        // A one-shard service over a compiled nearest-match dictionary:
        // the service must resolve a misspelling through the multi-probe
        // plan exactly as a raw engine would.
        let plan = compile(&PatternSpec::dictionary(4, 1), &GeometryHint::default())
            .expect("dictionary spec compiles");
        let table = plan.build_table().expect("plan builds");
        let config = ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        };
        let service = SearchService::new(config, vec![Box::new(table)]).expect("valid service");
        let word = u128::from_le_bytes(*b"word\0\0\0\0\0\0\0\0\0\0\0\0");
        for rec in plan
            .lower_entry(&Pattern::Exact { value: word }, 7)
            .expect("word lowers")
        {
            service.insert_sync(rec).expect("fits");
        }
        let misspelled = word ^ (u128::from(b'o' ^ b'a') << 8); // "ward"
        let ladder = plan
            .lower_query(&Pattern::NearestMatch {
                value: misspelled,
                max_distance: 1,
            })
            .expect("ladder lowers");
        assert!(ladder.probes().len() > 1, "exact probe plus unit masks");
        let outcome = service.search_plan_sync(&ladder);
        assert_eq!(outcome.hit.map(|h| h.data), Some(7));
        // The exact probe misses first, so accesses include both probes.
        let exact_only = service.search_sync(&ladder.probes()[0]);
        assert!(exact_only.hit.is_none());
        assert!(outcome.memory_accesses >= exact_only.memory_accesses);
        // A query past the distance budget misses through the whole ladder.
        let far = word ^ 0x0101; // two units substituted
        let miss = service.search_plan_sync(
            &plan
                .lower_query(&Pattern::NearestMatch {
                    value: far,
                    max_distance: 1,
                })
                .expect("ladder lowers"),
        );
        assert!(miss.hit.is_none());
        service.shutdown();
    }

    #[test]
    fn splitmix_spreads_sequential_values() {
        // Sequential inputs must not collapse onto few shards.
        let shards = 8u64;
        let mut seen = [0u32; 8];
        for v in 0..10_000u64 {
            #[allow(clippy::cast_possible_truncation)]
            let s = (splitmix64(v) % shards) as usize;
            seen[s] += 1;
        }
        for (shard, &count) in seen.iter().enumerate() {
            assert!(
                (800..=1_700).contains(&count),
                "shard {shard} got {count} of 10000"
            );
        }
    }
}
