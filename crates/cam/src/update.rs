//! Prefix-length-ordered TCAM management (Shah & Gupta \[29\]).
//!
//! LPM via a TCAM's priority encoder requires entries sorted by descending
//! prefix length (Sec. 2.2 / 4.1). Keeping that order under route updates
//! costs entry *moves*; the classic PLO (prefix-length ordering) algorithm
//! bounds an insert or delete to at most one move per distinct prefix
//! length. [`SortedTcam`] wraps a [`Tcam`] and maintains the invariant,
//! reporting the move count of every update — the currency of TCAM update
//! algorithms.

use ca_ram_core::key::{SearchKey, TernaryKey};

use crate::tcam::{Tcam, TcamEntry, TcamMatch};

/// A TCAM kept sorted by descending prefix length (care-bit count).
///
/// # Examples
///
/// ```
/// use ca_ram_cam::SortedTcam;
/// use ca_ram_core::key::{SearchKey, TernaryKey};
///
/// let mut tcam = SortedTcam::new(16, 32);
/// // Announce routes shortest-first — the device restores priority order.
/// tcam.insert(TernaryKey::ternary(0x0A00_0000, 0xFF_FFFF, 32), 8).expect("space");
/// tcam.insert(TernaryKey::ternary(0x0A0B_0000, 0xFFFF, 32), 16).expect("space");
/// let hit = tcam.search(&SearchKey::new(0x0A0B_0001, 32)).expect("covered");
/// assert_eq!(hit.entry.data, 16);
/// assert!(tcam.invariant_holds());
/// ```
#[derive(Debug, Clone)]
pub struct SortedTcam {
    device: Tcam,
    /// `bounds[i]` = first device index of the region holding prefixes of
    /// length `key_bits - i` (regions ordered by descending length);
    /// `bounds[key_bits+1]` = end of used space.
    bounds: Vec<usize>,
}

/// The result of a sorted update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReceipt {
    /// Device index the entry ended at (insert) or vacated (delete).
    pub index: usize,
    /// Entry moves performed to restore the ordering invariant.
    pub moves: u32,
}

impl SortedTcam {
    /// Creates an empty sorted TCAM of `capacity` entries of `key_bits`-bit
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tcam::new`].
    #[must_use]
    pub fn new(capacity: usize, key_bits: u32) -> Self {
        let device = Tcam::new(capacity, key_bits);
        Self {
            bounds: vec![0; key_bits as usize + 2],
            device,
        }
    }

    /// The underlying device (searches go straight to it).
    #[must_use]
    pub fn device(&self) -> &Tcam {
        &self.device
    }

    /// Valid entries.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // bounds vec is never empty
    pub fn len(&self) -> usize {
        *self.bounds.last().expect("bounds is non-empty")
    }

    /// Whether no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn region_of(&self, key: &TernaryKey) -> usize {
        (self.device.key_bits() - key.care_count()) as usize
    }

    /// Longest-prefix search (delegates to the device).
    #[must_use]
    pub fn search(&self, key: &SearchKey) -> Option<TcamMatch> {
        self.device.search(key)
    }

    /// Inserts a prefix, restoring descending-length order.
    ///
    /// Returns `None` when the device is full.
    ///
    /// # Panics
    ///
    /// Panics if the key width differs from the device width.
    pub fn insert(&mut self, key: TernaryKey, data: u64) -> Option<UpdateReceipt> {
        if self.len() >= self.device.capacity() {
            return None;
        }
        let region = self.region_of(&key);
        // Open a hole at the end of `region` by bubbling the hole at the end
        // of used space upward: each intervening region donates its first
        // entry to its own end (one move per region).
        let mut gap = self.len();
        let mut moves = 0u32;
        for r in (region + 1..=self.device.key_bits() as usize).rev() {
            let start = self.bounds[r];
            let end = self.bounds[r + 1];
            debug_assert!(start <= end && end <= gap + 1);
            if start == end {
                // Empty region: just slide its boundary past the hole later.
                continue;
            }
            let shifted = self.device.erase(start).expect("region entries are valid");
            self.device.write(gap, shifted);
            moves += 1;
            gap = start;
        }
        self.device.write(gap, TcamEntry { key, data });
        // Shift the boundaries of every lower-priority region down by one.
        for r in region + 1..self.bounds.len() {
            self.bounds[r] += 1;
        }
        Some(UpdateReceipt { index: gap, moves })
    }

    /// Deletes the entry whose stored key equals `key` exactly. Returns the
    /// receipt, or `None` if no such entry exists.
    #[allow(clippy::missing_panics_doc)] // internal expects guarded by bounds
    pub fn delete(&mut self, key: &TernaryKey) -> Option<UpdateReceipt> {
        let region = self.region_of(key);
        let start = self.bounds[region];
        let end = self.bounds[region + 1];
        let mut found = None;
        for i in start..end {
            if self.device.entry(i).is_some_and(|e| e.key == *key) {
                found = Some(i);
                break;
            }
        }
        let vacated = found?;
        // Fill the hole with the region's last entry, then bubble the gap
        // down through lower regions to the end of used space.
        let mut gap = vacated;
        let mut moves = 0u32;
        self.device.erase(gap);
        for r in region..self.bounds.len() - 1 {
            let last = self.bounds[r + 1] - 1;
            if last != gap {
                let shifted = self.device.erase(last).expect("region entries are valid");
                self.device.write(gap, shifted);
                moves += 1;
            }
            gap = last;
        }
        for r in region + 1..self.bounds.len() {
            self.bounds[r] -= 1;
        }
        Some(UpdateReceipt {
            index: vacated,
            moves,
        })
    }

    /// Verifies the descending-length invariant (test/diagnostic hook).
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        let mut last_len = u32::MAX;
        for i in 0..self.len() {
            match self.device.entry(i) {
                Some(e) => {
                    let len = e.key.care_count();
                    if len > last_len {
                        return false;
                    }
                    last_len = len;
                }
                None => return false,
            }
        }
        (self.len()..self.device.capacity()).all(|i| self.device.entry(i).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(value: u128, len: u32) -> TernaryKey {
        let dc = if len == 32 {
            0
        } else {
            (1u128 << (32 - len)) - 1
        };
        TernaryKey::ternary(value, dc, 32)
    }

    #[test]
    fn inserts_keep_descending_length_order() {
        let mut t = SortedTcam::new(16, 32);
        // Insert in ascending length order — worst case for sorting.
        for (i, len) in [8u32, 16, 24, 12, 32, 20].iter().enumerate() {
            let value = (u128::from(i as u32 + 1)) << (32 - len);
            let value = value & 0xFFFF_FFFF;
            t.insert(prefix(value, *len), u64::from(*len)).unwrap();
            assert!(t.invariant_holds(), "after inserting /{len}");
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn lpm_correct_after_out_of_order_inserts() {
        let mut t = SortedTcam::new(8, 32);
        t.insert(prefix(0x0A00_0000, 8), 8).unwrap();
        t.insert(prefix(0x0A0B_0C00, 24), 24).unwrap();
        t.insert(prefix(0x0A0B_0000, 16), 16).unwrap();
        assert!(t.invariant_holds());
        let data = |addr: u128| t.search(&SearchKey::new(addr, 32)).unwrap().entry.data;
        assert_eq!(data(0x0A0B_0C01), 24);
        assert_eq!(data(0x0A0B_0001), 16);
        assert_eq!(data(0x0A01_0001), 8);
    }

    #[test]
    fn insert_move_count_bounded_by_region_count() {
        let mut t = SortedTcam::new(64, 32);
        for len in [32u32, 28, 24, 20, 16, 12, 8] {
            t.insert(prefix(0xFFFF_FF00 & !((1 << (32 - len)) - 1), len), 0)
                .unwrap();
        }
        // Inserting a /30 must move at most one entry per shorter length
        // present (6 regions below /30 here).
        let r = t.insert(prefix(0x0000_0004, 30), 0).unwrap();
        assert!(r.moves <= 6, "moves = {}", r.moves);
        assert!(t.invariant_holds());
    }

    #[test]
    fn delete_restores_invariant() {
        let mut t = SortedTcam::new(16, 32);
        let p16 = prefix(0x0A0B_0000, 16);
        t.insert(prefix(0x0A0B_0C00, 24), 24).unwrap();
        t.insert(p16, 16).unwrap();
        t.insert(prefix(0x0A00_0000, 8), 8).unwrap();
        let r = t.delete(&p16).unwrap();
        let _ = r;
        assert!(t.invariant_holds());
        assert_eq!(t.len(), 2);
        let m = t.search(&SearchKey::new(0x0A0B_0001, 32)).unwrap();
        assert_eq!(m.entry.data, 8);
        // Deleting again finds nothing.
        assert!(t.delete(&p16).is_none());
    }

    #[test]
    fn full_device_rejects_insert() {
        let mut t = SortedTcam::new(2, 32);
        assert!(t.insert(prefix(0x0100_0000, 8), 0).is_some());
        assert!(t.insert(prefix(0x0200_0000, 8), 0).is_some());
        assert!(t.insert(prefix(0x0300_0000, 8), 0).is_none());
    }

    #[test]
    fn randomized_updates_hold_the_invariant() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut t = SortedTcam::new(256, 32);
        let mut live: Vec<TernaryKey> = Vec::new();
        for _ in 0..600 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let i = rng.gen_range(0..live.len());
                let key = live.swap_remove(i);
                assert!(t.delete(&key).is_some());
            } else if t.len() < 250 {
                let len = rng.gen_range(8..=32u32);
                let addr = u128::from(rng.gen::<u32>())
                    & !(if len == 32 {
                        0
                    } else {
                        (1u128 << (32 - len)) - 1
                    });
                let key = prefix(addr, len);
                if t.insert(key, 0).is_some() {
                    // Duplicates are allowed by the device; track one copy.
                    live.push(key);
                }
            }
            assert!(t.invariant_holds());
        }
    }
}
