//! End-to-end construction of the paper's Fig. 5 memory subsystem: a pool
//! of identical fabricated slices, partitioned into databases with
//! different roles ("five slices can be allocated together with four slices
//! used to extend the number of rows and the remaining one set aside for
//! storing spilled records"), driven through the memory-mapped ports, with
//! RAM-mode memory tests run on the idle capacity.

use ca_ram::core::alloc::SlicePool;
use ca_ram::core::index::{DjbHash, RangeSelect};
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::memtest;
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::subsystem::CaRamSubsystem;
use ca_ram::core::table::Arrangement;
use ca_ram::workloads::bgp::{generate as gen_bgp, BgpConfig};
use ca_ram::workloads::trigram::{generate as gen_tri, pack_text_key, TrigramConfig};

#[test]
fn fig5_subsystem_from_a_slice_pool() {
    // 16 fabricated slices: 2^8 rows x 2048 bits each.
    let mut pool = SlicePool::new(16, 8, 2048);

    // Database 1: IP routing — the paper's 4-vertical + 1-victim example.
    let ip_layout = RecordLayout::new(32, true, 8);
    let (ip_alloc, ip_table) = pool
        .allocate(
            ip_layout,
            Arrangement::Vertical(4),
            1,
            ProbePolicy::Linear,
            Box::new(RangeSelect::ip_first16_last(10)),
        )
        .expect("pool has capacity");
    assert_eq!(pool.free_slices(), 11);
    assert_eq!(pool.roles(ip_alloc).unwrap().overflow, 1);

    // Database 2: trigram lookup on 4 horizontal slices.
    let tri_layout = RecordLayout::new(128, false, 32);
    let (_tri_alloc, tri_table) = pool
        .allocate(
            tri_layout,
            Arrangement::Horizontal(4),
            0,
            ProbePolicy::Linear,
            Box::new(DjbHash::new(32, 16)),
        )
        .expect("pool has capacity");
    assert_eq!(pool.free_slices(), 7);

    // Assemble the subsystem and populate both databases.
    let mut sub = CaRamSubsystem::new();
    let routing = sub.add_database("routing", ip_table);
    let lm = sub.add_database("language-model", tri_table);

    let routes = gen_bgp(&BgpConfig::scaled(6_000));
    for r in &routes {
        sub.table_mut(routing)
            .insert(Record::new(r.to_ternary_key(), u64::from(r.len())))
            .expect("victim slice absorbs overflow");
    }
    let trigrams = gen_tri(&TrigramConfig {
        entries: 10_000,
        vocabulary: 4_000,
        ..TrigramConfig::sphinx_like()
    });
    for (i, s) in trigrams.iter().enumerate() {
        sub.table_mut(lm)
            .insert(Record::new(
                TernaryKey::binary(pack_text_key(s), 128),
                i as u64,
            ))
            .expect("sized for the entries");
    }

    // The routing database keeps AMAL at 1 (victim slice in parallel).
    let report = sub.table(routing).load_report();
    assert!(
        (report.amal_uniform - 1.0).abs() < 1e-9,
        "victim slice keeps AMAL at 1, got {}",
        report.amal_uniform
    );

    // Drive both through the MMIO ports.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(55);
    for _ in 0..200 {
        let r = routes[rng.gen_range(0..routes.len())];
        sub.store_request(
            sub.request_port(routing),
            SearchKey::new(u128::from(r.random_member(&mut rng)), 32),
        )
        .expect("mapped port");
        let i = rng.gen_range(0..trigrams.len());
        sub.store_request(
            sub.request_port(lm),
            SearchKey::new(pack_text_key(&trigrams[i]), 128),
        )
        .expect("mapped port");
    }
    assert_eq!(sub.pump(), 400);
    let mut hits = 0;
    while let Some(result) = sub.load_result(sub.result_port(routing)).expect("mapped") {
        hits += i32::from(result.outcome.hit.is_some());
        assert_eq!(result.outcome.memory_accesses, 1);
    }
    assert_eq!(hits, 200, "every routed packet matched some prefix");
    while let Some(result) = sub.load_result(sub.result_port(lm)).expect("mapped") {
        assert!(result.outcome.hit.is_some());
    }

    // RAM-mode memory tests on a third, freshly allocated scratch database
    // (Sec. 3.2: "various hardware- and software-based memory tests will be
    // performed on CA-RAM using this RAM mode").
    let (scratch_alloc, mut scratch) = pool
        .allocate(
            RecordLayout::new(16, false, 0),
            Arrangement::Horizontal(1),
            0,
            ProbePolicy::Linear,
            Box::new(RangeSelect::new(0, 8)),
        )
        .expect("pool has capacity");
    let reports = memtest::full_battery(scratch.slices_mut()[0].array_mut()).expect("RAM access");
    for r in &reports {
        assert!(r.passed(), "{} failed: {:?}", r.test, r.faults);
    }
    pool.free(scratch_alloc).expect("live allocation");
    assert_eq!(pool.free_slices(), 7);
}

#[test]
fn reconfigurable_slice_serves_two_applications_in_sequence() {
    use ca_ram::core::config_regs::{ControlRegister, ReconfigurableSlice};
    // One physical slice, reprogrammed from IP keys to trigram keys — the
    // Sec. 3.3 flexibility story.
    let mut slice = ReconfigurableSlice::new(6, 2048, RecordLayout::new(32, true, 8));
    assert_eq!(slice.slice().slots_per_row(), 2048 / 72);

    // Phase 1: ternary IPv4 keys.
    let prefix = TernaryKey::ternary(0x0A000000, 0xFF_FFFF, 32);
    slice.slice_mut().append_record(5, &Record::new(prefix, 8));
    assert!(slice
        .slice()
        .search_bucket(5, &SearchKey::new(0x0A01_0203, 32))
        .is_some());

    // Reprogram: 16-byte binary keys, no data.
    slice
        .write_register(ControlRegister::KeyBytes as u64, 16)
        .expect("supported size");
    slice
        .write_register(ControlRegister::TernaryEnable as u64, 0)
        .expect("valid");
    slice
        .write_register(ControlRegister::DataBits as u64, 0)
        .expect("valid");
    slice
        .write_register(ControlRegister::Commit as u64, 1)
        .expect("fits the row");
    assert_eq!(slice.slice().slots_per_row(), 16);
    assert_eq!(slice.slice().record_count(), 0, "commit cleared the array");

    // Phase 2: trigram keys.
    let key = pack_text_key("hello there you");
    slice
        .slice_mut()
        .append_record(3, &Record::new(TernaryKey::binary(key, 128), 0));
    assert!(slice
        .slice()
        .search_bucket(3, &SearchKey::new(key, 128))
        .is_some());
}
