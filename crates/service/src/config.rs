//! Serving-layer configuration and its mapping onto the queue model.

use std::time::Duration;

use ca_ram_core::controller::QueueModelConfig;
use ca_ram_core::error::{CaRamError, Result};

/// Configuration of a [`SearchService`](crate::service::SearchService).
///
/// The degradation ladder is driven by two fill fractions of the bounded
/// per-shard queue: once the drained depth reaches
/// `telemetry_shed_fill × queue_depth` the per-request wait histograms stop
/// being recorded, and once it reaches `coalesce_fill × queue_depth`
/// duplicate search keys within one drained batch share a single engine
/// probe. A full queue rejects at admission regardless.
///
/// Units: the ladder's queue depth is measured in *requests* — a queued
/// `submit_batch` sub-batch counts each of its keys — so the fill
/// fractions keep their per-request meaning under batched load. The
/// admission bound itself is counted in ring *entries* (a multi-key
/// sub-batch occupies one of the `queue_depth` slots in its shard's
/// ring), so a batched workload can carry more in-flight keys than
/// `queue_depth` before rejecting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Engine shards (and worker threads — one worker owns each shard).
    pub shards: usize,
    /// Bounded queue capacity per shard, in ring entries (one per single
    /// request or per `submit_batch` sub-batch); admission control rejects
    /// (or backpressures, for blocking submitters) beyond it.
    pub queue_depth: usize,
    /// Most requests drained into one batch per worker wakeup.
    pub batch_max: usize,
    /// Threads handed to `search_batch_parallel` per drained search run
    /// (1 = serial within the shard worker, 0 = all cores).
    pub batch_threads: usize,
    /// Default per-request deadline measured from submission; a request
    /// still queued when it expires is shed, never served stale. `None`
    /// disables deadlines.
    pub default_deadline: Option<Duration>,
    /// Queue-fill fraction past which deep telemetry is shed (rung 1).
    pub telemetry_shed_fill: f64,
    /// Queue-fill fraction past which duplicate in-flight search keys are
    /// coalesced (rung 2). Must be at least `telemetry_shed_fill`.
    pub coalesce_fill: f64,
    /// Request-trace head-sampling period: trace 1 in N admissions
    /// (rounded up to a power of two); 0 disables lifecycle tracing
    /// entirely. Reconfigurable at runtime via
    /// [`SearchService::set_trace_period`](crate::SearchService::set_trace_period).
    pub trace_sample_period: u64,
    /// Rolling top-k slowest completions each shard's trace store keeps.
    pub trace_topk: usize,
    /// Most-recent completions each shard's trace store keeps beyond the
    /// top-k (anomalous traces have their own fixed bound).
    pub trace_recent: usize,
    /// Per-shard flight-recorder capacity, in events (overwrite-oldest).
    pub recorder_capacity: usize,
    /// SLO latency target, microseconds: a completion slower than this
    /// burns error budget.
    pub slo_target_us: u64,
    /// Allowed fraction of bad events (latency breaches + sheds +
    /// rejects) per SLO window, in `(0, 1]`.
    pub slo_error_budget: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 1024,
            batch_max: 64,
            batch_threads: 1,
            default_deadline: None,
            telemetry_shed_fill: 0.5,
            coalesce_fill: 0.75,
            trace_sample_period: 0,
            trace_topk: 8,
            trace_recent: 32,
            recorder_capacity: 256,
            slo_target_us: 10_000,
            slo_error_budget: 0.01,
        }
    }
}

impl ServiceConfig {
    /// A single-shard service with the default queue; the configuration the
    /// conformance suite and differential fuzzer drive, where routing is
    /// trivially consistent for ternary keys too.
    #[must_use]
    pub fn single_shard() -> Self {
        Self {
            shards: 1,
            ..Self::default()
        }
    }

    /// Rejects nonsensical configurations.
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::BadConfig`] naming the offending field: zero
    /// shards, a queue or batch that holds nothing, a zero-length deadline,
    /// a fill fraction outside `[0, 1]`, or a ladder whose coalesce rung
    /// comes before its telemetry rung.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CaRamError::BadConfig("need at least one shard".into()));
        }
        if self.queue_depth == 0 {
            return Err(CaRamError::BadConfig(
                "queue must hold at least one request".into(),
            ));
        }
        if self.batch_max == 0 {
            return Err(CaRamError::BadConfig(
                "batch must admit at least one request".into(),
            ));
        }
        if self.default_deadline == Some(Duration::ZERO) {
            return Err(CaRamError::BadConfig(
                "a zero deadline would shed every request".into(),
            ));
        }
        for (name, fill) in [
            ("telemetry_shed_fill", self.telemetry_shed_fill),
            ("coalesce_fill", self.coalesce_fill),
        ] {
            if !fill.is_finite() || !(0.0..=1.0).contains(&fill) {
                return Err(CaRamError::BadConfig(format!(
                    "{name} must be a fraction in [0, 1], got {fill}"
                )));
            }
        }
        if self.telemetry_shed_fill > self.coalesce_fill {
            return Err(CaRamError::BadConfig(
                "degradation ladder out of order: telemetry_shed_fill must \
                 not exceed coalesce_fill"
                    .into(),
            ));
        }
        if self.recorder_capacity == 0 {
            return Err(CaRamError::BadConfig(
                "flight recorder must hold at least one event".into(),
            ));
        }
        if !self.slo_error_budget.is_finite()
            || self.slo_error_budget <= 0.0
            || self.slo_error_budget > 1.0
        {
            return Err(CaRamError::BadConfig(format!(
                "slo_error_budget must be a fraction in (0, 1], got {}",
                self.slo_error_budget
            )));
        }
        if self.slo_target_us == 0 {
            return Err(CaRamError::BadConfig(
                "a zero SLO target would breach on every completion".into(),
            ));
        }
        Ok(())
    }

    /// Queue depth (in requests, batch keys counted individually) at which
    /// deep telemetry is shed (ladder rung 1).
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)]
    pub fn telemetry_shed_threshold(&self) -> usize {
        (self.queue_depth as f64 * self.telemetry_shed_fill).ceil() as usize
    }

    /// Queue depth (in requests, batch keys counted individually) at which
    /// duplicate keys coalesce (ladder rung 2).
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)]
    pub fn coalesce_threshold(&self) -> usize {
        (self.queue_depth as f64 * self.coalesce_fill).ceil() as usize
    }

    /// The cycle-level queue model whose shape matches this service: one
    /// model slice per shard, the same bounded queue, `nmem` busy cycles per
    /// dispatch, and split (non-head-of-line) queues — one request queue per
    /// shard worker dispatches independently, exactly the paper's split
    /// request queues.
    ///
    /// `serve_bench` uses this to compare measured p50/p99 latencies against
    /// [`simulate_latency`](ca_ram_core::controller::simulate_latency)
    /// predictions for the same offered load.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn queue_model(&self, nmem: u32, accepts_per_cycle: u32) -> QueueModelConfig {
        QueueModelConfig {
            slices: self.shards as u32,
            nmem,
            queue_depth: self.queue_depth,
            accepts_per_cycle,
            head_of_line: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServiceConfig::default().validate().is_ok());
        assert!(ServiceConfig::single_shard().validate().is_ok());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let good = ServiceConfig::default();
        let bads = [
            ServiceConfig { shards: 0, ..good },
            ServiceConfig {
                queue_depth: 0,
                ..good
            },
            ServiceConfig {
                batch_max: 0,
                ..good
            },
            ServiceConfig {
                default_deadline: Some(Duration::ZERO),
                ..good
            },
            ServiceConfig {
                telemetry_shed_fill: -0.1,
                ..good
            },
            ServiceConfig {
                coalesce_fill: 1.5,
                ..good
            },
            ServiceConfig {
                telemetry_shed_fill: f64::NAN,
                ..good
            },
            ServiceConfig {
                telemetry_shed_fill: 0.9,
                coalesce_fill: 0.5,
                ..good
            },
            ServiceConfig {
                recorder_capacity: 0,
                ..good
            },
            ServiceConfig {
                slo_error_budget: 0.0,
                ..good
            },
            ServiceConfig {
                slo_error_budget: 1.5,
                ..good
            },
            ServiceConfig {
                slo_target_us: 0,
                ..good
            },
        ];
        for bad in bads {
            assert!(
                matches!(bad.validate(), Err(CaRamError::BadConfig(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn ladder_thresholds_cover_the_extremes() {
        let config = ServiceConfig {
            queue_depth: 100,
            telemetry_shed_fill: 0.0,
            coalesce_fill: 1.0,
            ..ServiceConfig::default()
        };
        assert_eq!(config.telemetry_shed_threshold(), 0); // always shed
        assert_eq!(config.coalesce_threshold(), 100); // only when full
    }

    #[test]
    fn queue_model_mirrors_the_service_shape() {
        let config = ServiceConfig {
            shards: 8,
            queue_depth: 64,
            ..ServiceConfig::default()
        };
        let model = config.queue_model(6, 4);
        assert_eq!(model.slices, 8);
        assert_eq!(model.nmem, 6);
        assert_eq!(model.queue_depth, 64);
        assert!(!model.head_of_line);
        assert!(model.validate().is_ok());
    }
}
