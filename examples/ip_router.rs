//! IP router forwarding engine on CA-RAM (the Sec. 4.1 application).
//!
//! Builds a longest-prefix-match forwarding table from a synthetic BGP
//! routing table, serves a stream of packet lookups, and compares the
//! result and cost against a TCAM forwarding engine built from the same
//! routes — both driven through the unified `SearchEngine` interface, so
//! the forwarding loop is written once and runs against either substrate.
//!
//! Run with: `cargo run --release --example ip_router`

use ca_ram::cam::Tcam;
use ca_ram::core::engine::SearchEngine;
use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::SearchKey;
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::stats::SearchStats;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram::hwmodel::{AreaModel, CaRamGeometry, CamGeometry, CellKind, Megahertz, PowerModel};
use ca_ram::workloads::bgp::{generate, BgpConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- build the routing table -----------------------------------------
    let routes = generate(&BgpConfig::scaled(30_000));
    println!(
        "routing table: {} prefixes (synthetic, AS1103-like shape)",
        routes.len()
    );

    // Design D of Table 2 scaled to this table size: 64-key buckets, 2
    // horizontal slices, 512 rows (alpha ~= 0.46). Next-hop ids live in the
    // data field.
    let layout = RecordLayout::new(32, true, 16);
    let config = TableConfig {
        rows_log2: 9,
        row_bits: 64 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(2),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 512 },
    };
    let mut caram = CaRamTable::new(config, Box::new(RangeSelect::ip_first16_last(9)))?;
    let mut tcam = Tcam::new(routes.len(), 32);

    // Routes arrive sorted longest-first: insertion order IS the match
    // priority, and the shared `SearchEngine::insert` gives both engines
    // the same discipline (the TCAM appends to its next free slot).
    for route in &routes {
        let next_hop = u64::from(route.len()) * 100 + u64::from(route.addr() & 0xF);
        let record = Record::new(route.to_ternary_key(), next_hop);
        SearchEngine::insert(&mut caram, record)?;
        SearchEngine::insert(&mut tcam, record)?;
    }
    let report = caram.load_report();
    println!(
        "CA-RAM built: alpha {:.2}, {:.2}% buckets overflow, AMALu {:.3}\n",
        report.load_factor(),
        report.overflowing_buckets_pct(),
        report.amal_uniform
    );

    // --- forward packets ---------------------------------------------------
    let mut rng = SmallRng::seed_from_u64(42);
    let packets: Vec<u32> = (0..20_000)
        .map(|_| {
            let r = routes[rng.gen_range(0..routes.len())];
            r.random_member(&mut rng)
        })
        .collect();

    // One forwarding loop, two substrates: the trait object is the whole
    // difference between "forward via CA-RAM" and "forward via TCAM".
    let forward = |engine: &dyn SearchEngine| {
        let mut stats = SearchStats::new();
        let mut hops = Vec::with_capacity(packets.len());
        for &dst in &packets {
            let got = engine.search(&SearchKey::new(u128::from(dst), 32));
            stats.record(got.hit.is_some(), got.memory_accesses);
            hops.push(got.hit.map(|h| h.data));
        }
        (hops, stats)
    };
    let (caram_hops, caram_stats) = forward(&caram);
    let (tcam_hops, _) = forward(&tcam);
    assert_eq!(caram_hops, tcam_hops, "LPM disagreement");
    println!(
        "forwarded {} packets: {} matched, measured AMAL {:.3}",
        packets.len(),
        caram_stats.hits,
        caram_stats.measured_amal()
    );
    println!("CA-RAM and TCAM agreed on every next hop (LPM equivalence).\n");

    // --- price the two engines ----------------------------------------------
    let area = AreaModel::new();
    let power = PowerModel::new();
    let caram_geom = CaRamGeometry::new(2, 512, 64 * 80, CellKind::EmbeddedDram, 64);
    let tcam_geom = CamGeometry::new(routes.len() as u64, 32, CellKind::TcamDynamic6T);
    let a_c = area.caram_device_area(&caram_geom).to_square_millimeters();
    let a_t = area.cam_device_area(&tcam_geom).to_square_millimeters();
    let p_c = power
        .caram_search_energy_parallel(&caram_geom, 2)
        .total()
        .at_rate(Megahertz::new(200.0));
    let p_t = power.cam_search_power(&tcam_geom, Megahertz::new(143.0));
    println!("hardware cost (130 nm models):");
    println!("  CA-RAM: {a_c:.2}, {p_c:.1}");
    println!("  TCAM:   {a_t:.2}, {p_t:.1}");
    println!(
        "\nNote the crossover: TCAM search power grows with the table (O(w*n))\n\
         while CA-RAM's is set by the bucket width; at this reduced 30 K-entry\n\
         scale the TCAM still wins on power, but at the paper's 186,760 entries\n\
         CA-RAM wins both (see `cargo run -p ca-ram-bench --bin fig8`)."
    );
    Ok(())
}
