//! A two-level set-associative cache hierarchy simulator.
//!
//! The paper motivates CA-RAM with the memory behaviour of software search:
//! "the large amount of data to search against and the random access
//! patterns in searching result in poor memory performance even with a
//! large L2 cache" (Sec. 4.2), and software IP lookup "requires at least 4
//! to 6 memory accesses for forwarding one packet" (Sec. 4.1). This
//! simulator lets the software baselines in this crate report exactly those
//! numbers: where each load hits and what it costs.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A typical 32 KiB, 4-way, 64 B-line L1 data cache.
    #[must_use]
    pub fn l1_32k() -> Self {
        Self {
            size_bytes: 32 << 10,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// A typical 2 MiB, 8-way, 64 B-line L2 cache ("even with a large L2").
    #[must_use]
    pub fn l2_2m() -> Self {
        Self {
            size_bytes: 2 << 20,
            ways: 8,
            line_bytes: 64,
        }
    }

    fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// One LRU set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: tags, most-recently-used first.
    sets: Vec<Vec<u64>>,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size or set count).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two() && config.line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        assert!(config.ways > 0, "need at least one way");
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count {sets} must be a positive power of two"
        );
        Self {
            config,
            sets: vec![Vec::with_capacity(config.ways); sets],
            set_mask: (sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    /// Accesses the byte address; returns `true` on hit. Misses fill the
    /// line (evicting LRU).
    #[allow(clippy::missing_panics_doc)] // internal expect: set index < sets
    pub fn access(&mut self, address: u64) -> bool {
        let line = address >> self.line_shift;
        let set = usize::try_from(line & self.set_mask).expect("set count fits usize");
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            if ways.len() == self.config.ways {
                ways.pop();
            }
            ways.insert(0, tag);
            false
        }
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2 cache.
    L2,
    /// Went to main memory.
    Memory,
}

/// Access counters for a hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Total accesses issued.
    pub accesses: u64,
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses that reached main memory.
    pub memory_accesses: u64,
}

impl AccessStats {
    /// Average access latency in cycles under a simple 2/15/200-cycle
    /// L1/L2/memory model.
    #[must_use]
    pub fn avg_latency_cycles(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let total = 2.0 * self.l1_hits as f64
            + 15.0 * self.l2_hits as f64
            + 200.0 * self.memory_accesses as f64;
        #[allow(clippy::cast_precision_loss)]
        {
            total / self.accesses as f64
        }
    }
}

/// An L1 + L2 hierarchy backed by main memory.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    /// Running counters.
    pub stats: AccessStats,
}

impl Hierarchy {
    /// Creates a hierarchy with explicit level geometries.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            stats: AccessStats::default(),
        }
    }

    /// The default desktop-like hierarchy (32 KiB L1, 2 MiB L2).
    #[must_use]
    pub fn typical() -> Self {
        Self::new(CacheConfig::l1_32k(), CacheConfig::l2_2m())
    }

    /// One load at the byte address.
    pub fn access(&mut self, address: u64) -> HitLevel {
        self.stats.accesses += 1;
        if self.l1.access(address) {
            self.stats.l1_hits += 1;
            HitLevel::L1
        } else if self.l2.access(address) {
            self.stats.l2_hits += 1;
            HitLevel::L2
        } else {
            self.stats.memory_accesses += 1;
            HitLevel::Memory
        }
    }

    /// Flushes both levels and zeroes the counters.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // L1: 4 sets x 2 ways x 64 B = 512 B. L2: 16 sets x 4 ways = 4 KiB.
        Hierarchy::new(
            CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
            },
        )
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut h = tiny();
        assert_eq!(h.access(0x1000), HitLevel::Memory);
        assert_eq!(h.access(0x1000), HitLevel::L1);
        assert_eq!(h.access(0x1008), HitLevel::L1, "same line");
        assert_eq!(h.access(0x1040), HitLevel::Memory, "next line");
        assert_eq!(h.stats.accesses, 4);
        assert_eq!(h.stats.memory_accesses, 2);
        assert_eq!(h.stats.l1_hits, 2);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny();
        // Three lines mapping to the same L1 set (4 sets -> stride 256).
        let a = 0x0;
        let b = 0x100;
        let c = 0x200;
        h.access(a);
        h.access(b);
        h.access(c); // evicts `a` from the 2-way L1 set
        assert_eq!(h.access(a), HitLevel::L2, "a still lives in L2");
    }

    #[test]
    fn lru_keeps_the_recently_used_line() {
        let mut h = tiny();
        let a = 0x0;
        let b = 0x100;
        let c = 0x200;
        h.access(a);
        h.access(b);
        h.access(a); // a is MRU now
        h.access(c); // evicts b, not a
        assert_eq!(h.access(a), HitLevel::L1);
    }

    #[test]
    fn random_big_working_set_mostly_misses() {
        // The paper's premise: random access over a large database defeats
        // the caches.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut h = Hierarchy::typical();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50_000 {
            let addr = u64::from(rng.gen::<u32>()) % (256 << 20); // 256 MiB set
            h.access(addr);
        }
        #[allow(clippy::cast_precision_loss)]
        let miss_rate = h.stats.memory_accesses as f64 / h.stats.accesses as f64;
        assert!(miss_rate > 0.9, "miss rate {miss_rate:.3}");
        assert!(h.stats.avg_latency_cycles() > 150.0);
    }

    #[test]
    fn small_working_set_fits_in_l1() {
        let mut h = Hierarchy::typical();
        for round in 0..10 {
            for addr in (0..4096u64).step_by(64) {
                let level = h.access(addr);
                if round > 0 {
                    assert_eq!(level, HitLevel::L1);
                }
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut h = tiny();
        h.access(0);
        h.reset();
        assert_eq!(h.stats, AccessStats::default());
        assert_eq!(h.access(0), HitLevel::Memory);
    }

    #[test]
    fn stats_latency_model() {
        let s = AccessStats {
            accesses: 4,
            l1_hits: 2,
            l2_hits: 1,
            memory_accesses: 1,
        };
        assert!((s.avg_latency_cycles() - (4.0 + 15.0 + 200.0) / 4.0).abs() < 1e-12);
        assert_eq!(AccessStats::default().avg_latency_cycles(), 0.0);
    }
}
