//! # ca-ram-workloads
//!
//! Synthetic data sets and traffic models for the CA-RAM reproduction
//! (Sec. 4 of the paper):
//!
//! * [`prefix`], [`ipv6`] — IPv4/IPv6 prefixes and their ternary-key
//!   encodings, plus a synthetic IPv6 table generator (the Sec. 4.1
//!   quadrupling concern);
//! * [`bgp`] — calibrated synthetic BGP routing tables standing in for the
//!   RIPE AS1103 dump (plus a parser for real dumps);
//! * [`trace`] — uniform and Zipf lookup-traffic models (`AMALu`/`AMALs`);
//! * [`trigram`] — synthetic Sphinx-like trigram databases (13–16 char
//!   string keys packed into 128 bits);
//! * [`zane`] — the greedy hash-bit-selection algorithm of Zane et al.;
//! * [`chunks`] — ACT-R-style declarative-memory chunks and partial-cue
//!   retrievals (the paper's future-work application, Sec. 6);
//! * [`ngram`] — a unigram/bigram/trigram back-off language model (the
//!   Sec. 4.2 N-gram memory's workload);
//! * [`packet`] — 5-tuple packet-classifier rule sets and flow traces,
//!   lowered through the pattern compiler's masked multi-field mode;
//! * [`dictionary`] — fixed-width spell-check dictionaries and typo
//!   traces for the compiler's nearest-match probe ladders.
//!
//! Every generator is deterministic given its config (seeded RNG), so the
//! experiment binaries are reproducible run to run.
//!
//! # Example
//!
//! ```
//! use ca_ram_workloads::bgp::{generate, BgpConfig};
//!
//! let table = generate(&BgpConfig::scaled(1_000));
//! assert_eq!(table.len(), 1_000);
//! // Sorted longest-prefix-first, ready for LPM insertion into a CA-RAM.
//! assert!(table.windows(2).all(|w| w[0].len() >= w[1].len()));
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod bgp;
pub mod chunks;
pub mod dictionary;
pub mod ipv6;
pub mod ngram;
pub mod packet;
pub mod prefix;
pub mod trace;
pub mod trigram;
pub mod zane;

pub use bgp::BgpConfig;
pub use chunks::{Chunk, ChunkConfig, Cue};
pub use dictionary::{DictionaryConfig, Typo};
pub use ipv6::{Ipv6Config, Ipv6Prefix};
pub use ngram::{BackoffLm, NgramConfig};
pub use packet::{ClassifierRule, FiveTuple, PacketClassConfig, PortMatch};
pub use prefix::Ipv4Prefix;
pub use trace::AccessPattern;
pub use trigram::{pack_text_key, TrigramConfig};
pub use zane::BitSelection;
