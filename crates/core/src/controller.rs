//! Cycle-level model of the subsystem's input controller and queues
//! (Sec. 3.2, Fig. 5).
//!
//! "Requests and results are both queued for achieving maximum bandwidth
//! without interruptions. Multiple lookup actions can be simultaneously in
//! progress in different CA-RAM slices." This module simulates that queueing
//! structure one clock cycle at a time and measures the achieved search
//! bandwidth, cross-checking the closed-form `B = Nslice/nmem × fclk` of
//! Sec. 3.4 and exposing the effects the formula hides (head-of-line
//! blocking, skewed slice traffic, finite queues).

use std::collections::VecDeque;

use crate::error::{CaRamError, Result};
use crate::telemetry::trace::TelemetrySink;

/// Configuration of the queue/controller simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueModelConfig {
    /// Independently accessible slices (`Nslice`).
    pub slices: u32,
    /// Minimum cycles between back-to-back accesses to one slice (`nmem`).
    pub nmem: u32,
    /// Request-queue capacity; arrivals beyond it stall at the source.
    pub queue_depth: usize,
    /// Requests accepted into the queue per cycle (port width).
    pub accepts_per_cycle: u32,
    /// If true, only the queue head may dispatch each cycle (a single
    /// in-order queue); if false, any queued request whose slice is idle
    /// may dispatch (the paper's split/virtual-port queues).
    pub head_of_line: bool,
}

impl QueueModelConfig {
    /// A split-queue subsystem in the paper's Fig. 8 configuration:
    /// 8 slices of 6-cycle DRAM.
    #[must_use]
    pub fn fig8_ip_lookup() -> Self {
        Self {
            slices: 8,
            nmem: 6,
            queue_depth: 64,
            accepts_per_cycle: 4,
            head_of_line: false,
        }
    }

    /// Rejects configurations the simulators cannot model: zero slices, a
    /// zero-cycle memory, a port that accepts nothing per cycle, or a queue
    /// that holds nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.slices == 0 {
            return Err(CaRamError::BadConfig("need at least one slice".into()));
        }
        if self.nmem == 0 {
            return Err(CaRamError::BadConfig(
                "nmem must be at least one cycle".into(),
            ));
        }
        if self.accepts_per_cycle == 0 {
            return Err(CaRamError::BadConfig(
                "port must accept at least one request per cycle".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(CaRamError::BadConfig(
                "queue must hold at least one request".into(),
            ));
        }
        Ok(())
    }
}

/// Measured results of a queue simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputReport {
    /// Cycles simulated until the last request completed.
    pub cycles: u64,
    /// Requests completed.
    pub completed: u64,
    /// Cycles in which at least one arrival stalled on a full queue.
    pub stall_cycles: u64,
    /// Peak request-queue occupancy observed.
    pub peak_queue_depth: usize,
}

impl ThroughputReport {
    /// Achieved searches per cycle; multiply by `fclk` for Msearch/s.
    #[must_use]
    pub fn searches_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.completed as f64 / self.cycles as f64
            }
        }
    }
}

/// Simulates the controller processing `requests`, each tagged with its
/// target slice (as produced by the index generator's high bits). Requests
/// arrive as fast as the port accepts them.
///
/// # Errors
///
/// Returns [`CaRamError::BadConfig`] if the configuration fails
/// [`QueueModelConfig::validate`] or a request targets a slice out of range.
pub fn simulate<I>(config: QueueModelConfig, requests: I) -> Result<ThroughputReport>
where
    I: IntoIterator<Item = u32>,
{
    simulate_impl(config, requests, None)
}

/// As [`simulate`], additionally reporting per-cycle queue depth and
/// per-request wait cycles (enqueue → dispatch) to a telemetry sink — the
/// live distributions behind [`ThroughputReport`]'s peak/stall summary.
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_with_sink<I>(
    config: QueueModelConfig,
    requests: I,
    sink: &dyn TelemetrySink,
) -> Result<ThroughputReport>
where
    I: IntoIterator<Item = u32>,
{
    simulate_impl(config, requests, Some(sink))
}

#[allow(clippy::too_many_lines)]
fn simulate_impl<I>(
    config: QueueModelConfig,
    requests: I,
    sink: Option<&dyn TelemetrySink>,
) -> Result<ThroughputReport>
where
    I: IntoIterator<Item = u32>,
{
    config.validate()?;

    let mut pending = requests.into_iter();
    // Entries carry their enqueue cycle so the traced variant can report
    // per-request wait times; the untraced report is unaffected.
    let mut queue: VecDeque<(u64, u32)> = VecDeque::new();
    let mut busy_until = vec![0u64; config.slices as usize];
    let mut cycle: u64 = 0;
    let mut completed: u64 = 0;
    let mut stall_cycles: u64 = 0;
    let mut peak_queue_depth = 0usize;
    let mut source_dry = false;
    let mut carried: Option<u32> = None;

    while !source_dry || !queue.is_empty() || busy_until.iter().any(|&b| b > cycle) {
        // Accept new arrivals.
        let mut accepted = 0;
        let mut stalled_this_cycle = false;
        while accepted < config.accepts_per_cycle {
            if queue.len() >= config.queue_depth {
                if carried.is_some() || !source_dry {
                    stalled_this_cycle = true;
                }
                break;
            }
            let next = carried.take().or_else(|| {
                let n = pending.next();
                if n.is_none() {
                    source_dry = true;
                }
                n
            });
            match next {
                Some(s) => {
                    if s >= config.slices {
                        return Err(CaRamError::BadConfig(format!(
                            "request targets slice {s} of {}",
                            config.slices
                        )));
                    }
                    queue.push_back((cycle, s));
                    accepted += 1;
                }
                None => break,
            }
        }
        if stalled_this_cycle {
            // Remember the request we could not enqueue this cycle.
            if carried.is_none() && !source_dry {
                carried = pending.next();
                if carried.is_none() {
                    source_dry = true;
                } else {
                    stall_cycles += 1;
                }
            } else if carried.is_some() {
                stall_cycles += 1;
            }
        }
        peak_queue_depth = peak_queue_depth.max(queue.len());
        if let Some(sink) = sink {
            sink.queue_depth(queue.len() as u64);
        }

        // Dispatch to idle slices.
        if config.head_of_line {
            while let Some(&(t0, slice)) = queue.front() {
                if busy_until[slice as usize] <= cycle {
                    busy_until[slice as usize] = cycle + u64::from(config.nmem);
                    completed += 1;
                    if let Some(sink) = sink {
                        sink.queue_wait(cycle - t0);
                    }
                    queue.pop_front();
                } else {
                    break;
                }
            }
        } else {
            let mut i = 0;
            while i < queue.len() {
                let (t0, slice) = queue[i];
                if busy_until[slice as usize] <= cycle {
                    busy_until[slice as usize] = cycle + u64::from(config.nmem);
                    completed += 1;
                    if let Some(sink) = sink {
                        sink.queue_wait(cycle - t0);
                    }
                    queue.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        cycle += 1;
        // Safety valve against configuration mistakes in callers.
        assert!(cycle < 1_000_000_000, "simulation did not converge");
    }

    Ok(ThroughputReport {
        cycles: cycle,
        completed,
        stall_cycles,
        peak_queue_depth,
    })
}

/// Per-request latency statistics from a pipeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Requests completed.
    pub completed: u64,
    /// Mean queueing + service latency, in cycles.
    pub mean_cycles: f64,
    /// Median latency, in cycles.
    pub p50_cycles: u64,
    /// 99th-percentile latency, in cycles.
    pub p99_cycles: u64,
    /// Worst observed latency, in cycles.
    pub max_cycles: u64,
    /// Offered load actually absorbed (requests per cycle).
    pub throughput: f64,
}

/// Transaction-level simulation: requests arrive at a fixed rate (one every
/// `interarrival_num/interarrival_den` cycles), queue, occupy their slice
/// for `nmem` cycles, then spend one pipelined match cycle before the
/// result is ready. Measures the full per-request latency distribution —
/// what the closed-form `B = Nslice/nmem × fclk` says nothing about.
///
/// # Errors
///
/// Returns [`CaRamError::BadConfig`] if the configuration fails
/// [`QueueModelConfig::validate`], the interarrival rational has a zero
/// numerator or denominator, or a request targets a slice out of range.
pub fn simulate_latency<I>(
    config: QueueModelConfig,
    interarrival_num: u64,
    interarrival_den: u64,
    requests: I,
) -> Result<LatencyReport>
where
    I: IntoIterator<Item = u32>,
{
    simulate_latency_impl(config, interarrival_num, interarrival_den, requests, None)
}

/// As [`simulate_latency`], additionally reporting per-cycle queue depth
/// and per-request wait cycles (enqueue → dispatch, excluding service) to
/// a telemetry sink.
///
/// # Errors
///
/// As [`simulate_latency`].
pub fn simulate_latency_with_sink<I>(
    config: QueueModelConfig,
    interarrival_num: u64,
    interarrival_den: u64,
    requests: I,
    sink: &dyn TelemetrySink,
) -> Result<LatencyReport>
where
    I: IntoIterator<Item = u32>,
{
    simulate_latency_impl(
        config,
        interarrival_num,
        interarrival_den,
        requests,
        Some(sink),
    )
}

fn simulate_latency_impl<I>(
    config: QueueModelConfig,
    interarrival_num: u64,
    interarrival_den: u64,
    requests: I,
    sink: Option<&dyn TelemetrySink>,
) -> Result<LatencyReport>
where
    I: IntoIterator<Item = u32>,
{
    const MATCH_CYCLES: u64 = 1; // pipelined match stage after data-out
    config.validate()?;
    if interarrival_num == 0 || interarrival_den == 0 {
        return Err(CaRamError::BadConfig(
            "arrival rate must be positive".into(),
        ));
    }
    let arrivals: Vec<u32> = requests.into_iter().collect();
    for &s in &arrivals {
        if s >= config.slices {
            return Err(CaRamError::BadConfig(format!(
                "request targets slice {s} of {}",
                config.slices
            )));
        }
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut queue: VecDeque<(u64, u32)> = VecDeque::new(); // (arrival cycle, slice)
    let mut busy_until = vec![0u64; config.slices as usize];
    let mut cycle: u64 = 0;
    let mut next_arrival: u64 = 0;
    let mut arrived = 0usize;

    while arrived < arrivals.len() || !queue.is_empty() || busy_until.iter().any(|&b| b > cycle) {
        // Arrivals scheduled for this cycle (drop-free infinite source
        // buffer: latency includes any wait for queue space).
        while arrived < arrivals.len() && next_arrival <= cycle * interarrival_den {
            if queue.len() >= config.queue_depth {
                break; // source stalls; the request keeps its arrival time
            }
            queue.push_back((cycle, arrivals[arrived]));
            arrived += 1;
            next_arrival += interarrival_num;
        }
        if let Some(sink) = sink {
            sink.queue_depth(queue.len() as u64);
        }
        // Dispatch (out-of-order unless head-of-line).
        if config.head_of_line {
            while let Some(&(t0, slice)) = queue.front() {
                if busy_until[slice as usize] <= cycle {
                    busy_until[slice as usize] = cycle + u64::from(config.nmem);
                    latencies.push(cycle + u64::from(config.nmem) + MATCH_CYCLES - t0);
                    if let Some(sink) = sink {
                        sink.queue_wait(cycle - t0);
                    }
                    queue.pop_front();
                } else {
                    break;
                }
            }
        } else {
            let mut i = 0;
            while i < queue.len() {
                let (t0, slice) = queue[i];
                if busy_until[slice as usize] <= cycle {
                    busy_until[slice as usize] = cycle + u64::from(config.nmem);
                    latencies.push(cycle + u64::from(config.nmem) + MATCH_CYCLES - t0);
                    if let Some(sink) = sink {
                        sink.queue_wait(cycle - t0);
                    }
                    queue.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        cycle += 1;
        assert!(cycle < 1_000_000_000, "simulation did not converge");
    }
    latencies.sort_unstable();
    let n = latencies.len();
    #[allow(clippy::cast_precision_loss)]
    let mean = latencies.iter().map(|&l| l as f64).sum::<f64>() / (n.max(1) as f64);
    #[allow(clippy::cast_precision_loss)]
    Ok(LatencyReport {
        completed: n as u64,
        mean_cycles: mean,
        p50_cycles: latencies.get(n / 2).copied().unwrap_or(0),
        p99_cycles: latencies.get(n * 99 / 100).copied().unwrap_or(0),
        max_cycles: latencies.last().copied().unwrap_or(0),
        throughput: if cycle == 0 {
            0.0
        } else {
            n as f64 / cycle as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_requests(n: usize, slices: u32) -> Vec<u32> {
        // Deterministic round-robin = perfectly uniform traffic.
        (0..n)
            .map(|i| u32::try_from(i).unwrap_or(0) % slices)
            .collect()
    }

    #[test]
    fn uniform_traffic_achieves_the_closed_form_bandwidth() {
        // B = Nslice / nmem searches per cycle.
        let config = QueueModelConfig::fig8_ip_lookup();
        let report =
            simulate(config, uniform_requests(20_000, config.slices)).expect("valid config");
        let achieved = report.searches_per_cycle();
        let formula = f64::from(config.slices) / f64::from(config.nmem);
        assert!(
            (achieved - formula).abs() / formula < 0.05,
            "achieved {achieved:.3} vs formula {formula:.3}"
        );
        assert_eq!(report.completed, 20_000);
    }

    #[test]
    fn single_slice_bandwidth_is_one_over_nmem() {
        let config = QueueModelConfig {
            slices: 1,
            nmem: 6,
            queue_depth: 8,
            accepts_per_cycle: 1,
            head_of_line: true,
        };
        let report = simulate(config, uniform_requests(1_000, 1)).expect("valid config");
        let achieved = report.searches_per_cycle();
        assert!((achieved - 1.0 / 6.0).abs() < 0.01, "got {achieved:.4}");
    }

    #[test]
    fn skewed_traffic_degrades_below_the_formula() {
        // All requests to one slice: bandwidth collapses to 1/nmem
        // regardless of Nslice — the formula's hidden assumption.
        let config = QueueModelConfig::fig8_ip_lookup();
        let report = simulate(config, vec![0u32; 5_000]).expect("valid config");
        let achieved = report.searches_per_cycle();
        assert!(achieved < 0.2, "got {achieved:.3}");
    }

    #[test]
    fn head_of_line_blocking_hurts_under_collisions() {
        // Pairs of requests to the same slice: an out-of-order queue can
        // overlap other slices; a head-of-line queue cannot.
        let pattern: Vec<u32> = (0..4000u32).map(|i| (i / 2) % 8).collect();
        let base = QueueModelConfig {
            slices: 8,
            nmem: 6,
            queue_depth: 32,
            accepts_per_cycle: 4,
            head_of_line: false,
        };
        let ooo = simulate(base, pattern.clone()).expect("valid config");
        let hol = simulate(
            QueueModelConfig {
                head_of_line: true,
                ..base
            },
            pattern,
        )
        .expect("valid config");
        assert!(
            ooo.searches_per_cycle() > hol.searches_per_cycle(),
            "ooo {:.3} vs hol {:.3}",
            ooo.searches_per_cycle(),
            hol.searches_per_cycle()
        );
    }

    #[test]
    fn narrow_port_caps_throughput() {
        let config = QueueModelConfig {
            slices: 8,
            nmem: 6,
            queue_depth: 64,
            accepts_per_cycle: 1, // port narrower than 8/6 per cycle
            head_of_line: false,
        };
        let report = simulate(config, uniform_requests(5_000, 8)).expect("valid config");
        assert!(report.searches_per_cycle() <= 1.0 + 1e-9);
    }

    #[test]
    fn empty_request_stream() {
        let report =
            simulate(QueueModelConfig::fig8_ip_lookup(), Vec::new()).expect("valid config");
        assert_eq!(report.completed, 0);
        assert_eq!(report.searches_per_cycle(), 0.0);
    }

    #[test]
    fn latency_at_light_load_is_service_time() {
        // One request every 20 cycles on a 6-cycle slice: no queueing, so
        // latency = nmem + 1 match cycle.
        let config = QueueModelConfig {
            slices: 4,
            nmem: 6,
            queue_depth: 16,
            accepts_per_cycle: 4,
            head_of_line: false,
        };
        let report =
            simulate_latency(config, 20, 1, uniform_requests(500, 4)).expect("valid config");
        assert_eq!(report.completed, 500);
        assert!(
            (report.mean_cycles - 7.0).abs() < 0.1,
            "{:.2}",
            report.mean_cycles
        );
        assert_eq!(report.p99_cycles, 7);
    }

    #[test]
    fn latency_grows_toward_saturation() {
        // Offered load sweep on 4 slices x 6-cycle service (capacity = one
        // request per 1.5 cycles): p99 must grow monotonically with load.
        let config = QueueModelConfig {
            slices: 4,
            nmem: 6,
            queue_depth: 1 << 14,
            accepts_per_cycle: 8,
            head_of_line: false,
        };
        // Random slice targeting: deterministic round-robin is a D/D/c
        // system with zero queueing; randomness is what builds queues.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(13);
        let random: Vec<u32> = (0..6_000).map(|_| rng.gen_range(0..4)).collect();
        let mut last_p99 = 0;
        for (num, den) in [(4u64, 1u64), (2, 1), (12, 7)] {
            // interarrival 4.0, 2.0, ~1.71 cycles (utilization .375, .75, .875)
            let report =
                simulate_latency(config, num, den, random.iter().copied()).expect("valid config");
            assert_eq!(report.completed, 6_000);
            assert!(
                report.p99_cycles >= last_p99,
                "p99 {} after {last_p99}",
                report.p99_cycles
            );
            last_p99 = report.p99_cycles;
        }
        assert!(last_p99 > 8, "queueing delay must appear near saturation");
    }

    #[test]
    fn overload_throughput_caps_at_capacity() {
        // Arrivals every cycle into 4/6 capacity: throughput pins at 2/3.
        let config = QueueModelConfig {
            slices: 4,
            nmem: 6,
            queue_depth: 64,
            accepts_per_cycle: 8,
            head_of_line: false,
        };
        let report =
            simulate_latency(config, 1, 1, uniform_requests(10_000, 4)).expect("valid config");
        assert!(
            (report.throughput - 4.0 / 6.0).abs() < 0.03,
            "{:.3}",
            report.throughput
        );
        assert!(report.max_cycles >= report.p99_cycles);
        assert!(report.p99_cycles >= report.p50_cycles);
    }

    #[test]
    fn queue_depth_is_respected() {
        let config = QueueModelConfig {
            slices: 1,
            nmem: 10,
            queue_depth: 4,
            accepts_per_cycle: 4,
            head_of_line: true,
        };
        let report = simulate(config, vec![0u32; 100]).expect("valid config");
        assert!(report.peak_queue_depth <= 4);
        assert!(report.stall_cycles > 0);
        assert_eq!(report.completed, 100);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let good = QueueModelConfig::fig8_ip_lookup();
        assert!(good.validate().is_ok());
        for bad in [
            QueueModelConfig { slices: 0, ..good },
            QueueModelConfig { nmem: 0, ..good },
            QueueModelConfig {
                accepts_per_cycle: 0,
                ..good
            },
            QueueModelConfig {
                queue_depth: 0,
                ..good
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(CaRamError::BadConfig(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn simulators_surface_bad_configs_as_errors() {
        let bad = QueueModelConfig {
            slices: 0,
            ..QueueModelConfig::fig8_ip_lookup()
        };
        assert!(simulate(bad, vec![0u32; 4]).is_err());
        assert!(simulate_latency(bad, 1, 1, vec![0u32; 4]).is_err());
        let good = QueueModelConfig::fig8_ip_lookup();
        assert!(simulate_latency(good, 0, 1, vec![0u32; 4]).is_err());
    }

    #[test]
    fn out_of_range_slice_is_an_error_not_a_panic() {
        let config = QueueModelConfig::fig8_ip_lookup();
        assert!(matches!(
            simulate(config, vec![config.slices]),
            Err(CaRamError::BadConfig(_))
        ));
        assert!(matches!(
            simulate_latency(config, 2, 1, vec![config.slices]),
            Err(CaRamError::BadConfig(_))
        ));
    }
}
