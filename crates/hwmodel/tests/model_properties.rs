//! Property-based tests of the cost models: physical quantities must obey
//! monotonicity and scaling laws regardless of the geometry.

use ca_ram_hwmodel::synth::MatchProcessorParams;
use ca_ram_hwmodel::{
    AreaModel, CaRamGeometry, CaRamTiming, CamGeometry, CellKind, Megahertz, Nanoseconds,
    PowerModel, ProcessNode, SynthesisModel,
};
use proptest::prelude::*;

fn caram_geometry() -> impl Strategy<Value = CaRamGeometry> {
    (1u32..32, 1u64..8192, 64u32..16_384, 1u32..128)
        .prop_map(|(s, r, c, p)| CaRamGeometry::new(s, r, c, CellKind::EmbeddedDram, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn area_is_linear_in_slices(g in caram_geometry()) {
        let model = AreaModel::new();
        let one = model.caram_device_area(&g);
        let double = CaRamGeometry::new(
            g.slices * 2, g.rows_per_slice, g.row_bits, g.storage, g.match_processors,
        );
        let two = model.caram_device_area(&double);
        prop_assert!((two.value() / one.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn caram_power_monotone_in_row_bits(g in caram_geometry()) {
        let model = PowerModel::new();
        let wider = CaRamGeometry::new(
            g.slices, g.rows_per_slice, g.row_bits + 64, g.storage, g.match_processors,
        );
        let e1 = model.caram_search_energy(&g).total();
        let e2 = model.caram_search_energy(&wider).total();
        prop_assert!(e2.value() > e1.value());
    }

    #[test]
    fn parallel_activation_scales_memory_energy(
        g in caram_geometry(),
        k in 1u32..8,
    ) {
        prop_assume!(k <= g.slices);
        let model = PowerModel::new();
        let one = model.caram_search_energy(&g);
        let par = model.caram_search_energy_parallel(&g, k);
        prop_assert!((par.memory.value() / one.memory.value() - f64::from(k)).abs() < 1e-9);
        prop_assert_eq!(par.hash, one.hash);
    }

    #[test]
    fn cam_energy_linear_in_cells(
        entries in 1u64..1_000_000,
        width in 1u32..256,
    ) {
        let model = PowerModel::new();
        let g1 = CamGeometry::new(entries, width, CellKind::TcamDynamic6T);
        let g2 = CamGeometry::new(entries * 3, width, CellKind::TcamDynamic6T);
        let e1 = model.cam_search_energy(&g1).total();
        let e2 = model.cam_search_energy(&g2).total();
        prop_assert!((e2.value() / e1.value() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_linear_in_slices_and_inverse_in_nmem(
        slices in 1u32..64,
        nmem in 1u32..16,
        clock in 50.0f64..1000.0,
    ) {
        let t = CaRamTiming::new(
            Megahertz::new(clock), nmem, nmem, Nanoseconds::new(2.0), true,
        );
        let b = t.search_bandwidth(slices, 1.0);
        let expected = clock * f64::from(slices) / f64::from(nmem);
        prop_assert!((b.value() - expected).abs() / expected < 1e-12);
        // Latency is monotone in probes.
        prop_assert!(t.search_latency(2).value() > t.search_latency(1).value());
    }

    #[test]
    fn synthesis_monotone_in_bucket_width(
        c1 in 256u32..4096,
        extra in 64u32..4096,
        key in prop::sample::select(vec![8u32, 16, 32, 64, 128]),
    ) {
        prop_assume!(key <= c1);
        let model = SynthesisModel::new();
        let small = model.synthesize(&MatchProcessorParams::fixed_width(c1, key, true));
        let large = model.synthesize(&MatchProcessorParams::fixed_width(c1 + extra, key, true));
        prop_assert!(large.total_cells() >= small.total_cells());
        prop_assert!(large.total_area().value() >= small.total_area().value());
        prop_assert!(large.critical_path().value() >= small.critical_path().value());
    }

    #[test]
    fn node_scaling_round_trips(
        area_value in 0.1f64..1e9,
        from in prop::sample::select(vec![250u32, 160, 130, 90, 65]),
        to in prop::sample::select(vec![250u32, 160, 130, 90, 65]),
    ) {
        let a = ca_ram_hwmodel::SquareMicrons::new(area_value);
        let from = ProcessNode::new(from);
        let to = ProcessNode::new(to);
        let round = to.scale_area_to(from.scale_area_to(a, to), from);
        prop_assert!((round.value() - area_value).abs() / area_value < 1e-9);
    }

    #[test]
    fn synthesis_power_scales_with_frequency(
        tclk in 2.0f64..40.0,
    ) {
        let report = SynthesisModel::new().synthesize(&MatchProcessorParams::prototype());
        let slow = report.dynamic_power(1.8, 0.5, Nanoseconds::new(tclk * 2.0));
        let fast = report.dynamic_power(1.8, 0.5, Nanoseconds::new(tclk));
        prop_assert!((fast.value() / slow.value() - 2.0).abs() < 1e-9);
    }
}
