//! Differential property tests: [`CaRamTable`] against the
//! [`ReferenceModel`] oracle, concentrating on *mask boundaries* — ternary
//! records whose don't-care run ends at bit 0, bit 1, mid-key, `bits-1`,
//! or covers the whole key — at every key size from 1 to 16 bytes.
//!
//! These are exactly the shapes that exposed the delete/probe bug cluster:
//! a don't-care run reaching into the index field forces multi-home
//! placement (and rollback on failure), a run stopping just short of it
//! keeps a single home, and full-care keys degenerate to exact match.
//! Every probe is judged by [`Expected::admits`], so ties between
//! equal-care records are accepted either way while any wrong-priority or
//! lost-record answer fails.
//!
//! [`Expected::admits`]: ca_ram_core::oracle::Expected::admits

use ca_ram_core::bits::low_mask;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::oracle::ReferenceModel;
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use proptest::prelude::*;

/// Builds a small table for `key_bits`-wide ternary records.
///
/// `vertical = 1` gives the pow-2 linear-probe geometry; `vertical = 3`
/// gives `3 * 2^4 = 48` logical buckets — the non-power-of-two case that
/// requires [`ProbePolicy::SecondHash`] strides coprime with the bucket
/// count.
fn build_table(key_bits: u32, vertical: u32, probe: ProbePolicy) -> CaRamTable {
    const ROWS_LOG2: u32 = 4;
    let layout = RecordLayout::new(key_bits, true, 16);
    let buckets = (1u64 << ROWS_LOG2) * u64::from(vertical);
    let index_bits = buckets.next_power_of_two().trailing_zeros();
    let config = TableConfig {
        rows_log2: ROWS_LOG2,
        row_bits: 4 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Vertical(vertical),
        probe,
        overflow: OverflowPolicy::Probe {
            max_steps: u32::MAX,
        },
    };
    let index = RangeSelect::new(key_bits - index_bits, index_bits);
    CaRamTable::new(config, Box::new(index)).expect("geometry is valid for 8..=128-bit keys")
}

/// Maps a raw selector onto a boundary don't-care length for `key_bits`.
fn boundary_dc_len(raw: u32, key_bits: u32) -> u32 {
    match raw % 6 {
        0 => 0,                          // full care: exact-match degenerate case
        1 => 1,                          // care boundary at the very bottom bit
        2 => key_bits / 2,               // mid-key boundary
        3 => key_bits - 1,               // single care bit at the top
        4 => key_bits,                   // all bits don't-care: matches everything
        _ => (raw / 7) % (key_bits + 1), // anywhere, including inside the index field
    }
}

/// One generated record: value bits, boundary selector, payload.
type RawRecord = (u128, u32, u16);

/// Replays `records` through `table` and the model, then probes each
/// record at its mask boundaries (junk in the don't-care run, a flip of
/// the lowest care bit, the highest don't-care bit set) and a straight
/// read-back, checking every answer against the model.
fn check_differential(
    key_bits: u32,
    table: &mut CaRamTable,
    records: &[RawRecord],
    delete_every: usize,
) -> Result<(), TestCaseError> {
    let mut model = ReferenceModel::new(key_bits);
    let mut stored = Vec::new();
    for &(raw_value, raw_sel, data) in records {
        let dc_len = boundary_dc_len(raw_sel, key_bits);
        let mask = low_mask(dc_len);
        let value = raw_value & low_mask(key_bits) & !mask;
        let record = Record::new(TernaryKey::ternary(value, mask, key_bits), u64::from(data));
        // Sorted insertion keeps overlapping prefixes in care order (the
        // LPM build discipline); plain insert only promises priority once
        // a delete has forced full-scan search. A wide don't-care run can
        // multiply one record across every home bucket; capacity
        // exhaustion is a legitimate outcome and must leave the table
        // unchanged (the rollback path), so a failed insert simply never
        // reaches the model.
        if table.insert_sorted(record).is_ok() {
            model.insert(record);
            stored.push((value, mask, dc_len));
        }
    }
    for (i, &(value, mask, _)) in stored.iter().enumerate() {
        if delete_every != 0 && i % delete_every == 0 {
            let key = TernaryKey::ternary(value, mask, key_bits);
            let engine_removed = table.delete(&key);
            let model_removed = model.delete(&key);
            prop_assert_eq!(
                engine_removed > 0,
                model_removed > 0,
                "delete presence diverged for value {:#x} mask {:#x}",
                value,
                mask
            );
        }
    }
    for &(value, mask, dc_len) in &stored {
        let junk = (value.rotate_left(13) | 0x5555_5555_5555_5555) & mask;
        let mut probes = vec![
            SearchKey::new(value, key_bits),        // stored form read-back
            SearchKey::new(value | junk, key_bits), // junk in the don't-care run
        ];
        if dc_len < key_bits {
            // Flip the lowest care bit: this record must not answer.
            probes.push(SearchKey::new((value ^ (1 << dc_len)) | junk, key_bits));
        }
        if dc_len > 0 {
            // Only the highest don't-care bit set: still a match.
            probes.push(SearchKey::new(value | (1 << (dc_len - 1)), key_bits));
        }
        for key in &probes {
            let expected = model.expected(key);
            let got = table.search(key).hit.map(|h| h.record.data);
            prop_assert!(
                expected.admits(got),
                "search({:?}) returned {:?}, model accepts {:?}",
                key,
                got,
                expected.accepted
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pow-2 table, linear probing: every key size from 1 to 16 bytes.
    #[test]
    fn linear_table_matches_model_on_mask_boundaries(
        bytes in 1u32..=16,
        records in prop::collection::vec((any::<u128>(), any::<u32>(), any::<u16>()), 1..10),
        delete_every in 0usize..4,
    ) {
        let key_bits = 8 * bytes;
        let mut table = build_table(key_bits, 1, ProbePolicy::Linear);
        check_differential(key_bits, &mut table, &records, delete_every)?;
    }

    /// Non-pow-2 table (48 logical buckets), second-hash probing: the
    /// coprime-stride path, again at every key size from 1 to 16 bytes.
    #[test]
    fn second_hash_non_pow2_table_matches_model_on_mask_boundaries(
        bytes in 1u32..=16,
        records in prop::collection::vec((any::<u128>(), any::<u32>(), any::<u16>()), 1..10),
        delete_every in 0usize..4,
    ) {
        let key_bits = 8 * bytes;
        let mut table = build_table(key_bits, 3, ProbePolicy::SecondHash);
        check_differential(key_bits, &mut table, &records, delete_every)?;
    }
}
