//! A multibit trie for software longest-prefix match — the data structure
//! behind the paper's motivating number (Sec. 4.1: "software-based
//! approaches usually require at least 4 to 6 memory accesses for
//! forwarding one packet").
//!
//! The trie consumes the address in fixed strides; each step loads one node
//! from the simulated memory, so a 32-bit lookup with an 8-bit stride costs
//! up to 4 dependent loads (plus a result load), exactly the 4–6 band. This
//! gives the software side of the Table 2 comparison an LPM-capable
//! structure rather than an exact-match stand-in.

use crate::cache::Hierarchy;
use crate::structures::{Arena, Lookup};

/// One trie level: `2^stride` children, each either a next-node index or a
/// leaf result, with the best prefix seen so far pushed down (leaf pushing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    /// Best match so far (pushed prefix data).
    Leaf(u64),
    /// Index of the child node (which may carry its own pushed leaf data).
    Node(u32),
}

#[derive(Debug, Clone)]
struct TrieNode {
    slots: Vec<Slot>,
}

/// A fixed-stride multibit trie over 32-bit keys, laid out in simulated
/// memory so lookups report their true load count.
#[derive(Debug, Clone)]
pub struct MultibitTrie {
    stride: u32,
    nodes: Vec<TrieNode>,
    base: u64,
    node_bytes: u64,
}

impl MultibitTrie {
    /// Builds a trie with the given stride (bits consumed per level; a
    /// divisor of 32) from `(addr, len, data)` prefixes.
    ///
    /// Prefixes must be unique per `(addr, len)`; later duplicates are
    /// ignored. Longest-prefix semantics follow from insertion with leaf
    /// pushing.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0, over 16, or does not divide 32, or if a
    /// prefix has host bits set.
    #[must_use]
    pub fn build(prefixes: &[(u32, u8, u64)], stride: u32, arena: &mut Arena) -> Self {
        assert!(
            stride > 0 && stride <= 16 && 32 % stride == 0,
            "stride must divide 32 and be 1..=16"
        );
        let fanout = 1usize << stride;
        let mut trie = Self {
            stride,
            nodes: vec![TrieNode {
                slots: vec![Slot::Empty; fanout],
            }],
            base: 0,
            node_bytes: (fanout as u64) * 8,
        };
        // Insert shortest-first so longer prefixes overwrite (leaf pushing).
        let mut sorted: Vec<&(u32, u8, u64)> = prefixes.iter().collect();
        sorted.sort_by_key(|&&(_, len, _)| len);
        for &&(addr, len, data) in &sorted {
            assert!(len <= 32, "prefix length {len} exceeds 32");
            if len > 0 && len < 32 {
                assert!(
                    addr & ((1u32 << (32 - len)) - 1) == 0,
                    "prefix {addr:#010x}/{len} has host bits set"
                );
            }
            trie.insert(addr, u32::from(len), data);
        }
        trie.base = arena.alloc(trie.nodes.len() as u64 * trie.node_bytes, 64);
        trie
    }

    fn insert(&mut self, addr: u32, len: u32, data: u64) {
        self.spread(0, addr, len, data, 32);
    }

    /// Recursively spreads `data` over every slot the prefix covers at this
    /// node, descending when the prefix is longer than the level.
    fn spread(&mut self, node: usize, addr: u32, len: u32, data: u64, bits_left: u32) {
        let stride = self.stride;
        let shift = bits_left - stride;
        let fanout = 1u32 << stride;
        let index = |a: u32| (a >> shift) & (fanout - 1);
        if len <= stride {
            // The prefix covers 2^(stride-len) slots at this level.
            let lo = index(addr);
            let span = 1u32 << (stride - len);
            for i in lo..lo + span {
                let slot = self.nodes[node].slots[i as usize];
                match slot {
                    Slot::Empty | Slot::Leaf(_) => {
                        self.nodes[node].slots[i as usize] = Slot::Leaf(data);
                    }
                    Slot::Node(child) => {
                        // Push the shorter prefix into the child (it only
                        // overwrites slots not already claimed deeper —
                        // guaranteed by shortest-first insertion order for
                        // equal coverage, and harmless otherwise because
                        // longer prefixes are inserted later).
                        self.spread(child as usize, addr << stride, 0, data, bits_left);
                        let _ = i;
                    }
                }
            }
            // len == 0 spread into a child means "fill empties only".
            if len == 0 {
                for i in 0..fanout {
                    if self.nodes[node].slots[i as usize] == Slot::Empty {
                        self.nodes[node].slots[i as usize] = Slot::Leaf(data);
                    }
                }
            }
        } else {
            let i = index(addr) as usize;
            let child = match self.nodes[node].slots[i] {
                Slot::Node(c) => c as usize,
                Slot::Empty => {
                    let c = self.new_child(None);
                    self.nodes[node].slots[i] = Slot::Node(u32::try_from(c).expect("< 2^32"));
                    c
                }
                Slot::Leaf(old) => {
                    // Split: push the existing leaf down into a new child.
                    let c = self.new_child(Some(old));
                    self.nodes[node].slots[i] = Slot::Node(u32::try_from(c).expect("< 2^32"));
                    c
                }
            };
            self.spread(child, addr << stride, len - stride, data, bits_left);
        }
    }

    fn new_child(&mut self, fill: Option<u64>) -> usize {
        let fanout = 1usize << self.stride;
        let slot = fill.map_or(Slot::Empty, Slot::Leaf);
        self.nodes.push(TrieNode {
            slots: vec![slot; fanout],
        });
        self.nodes.len() - 1
    }

    /// Number of trie nodes (memory footprint indicator).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Longest-prefix lookup through the simulated memory: one dependent
    /// load per level.
    pub fn lookup(&self, addr: u32, mem: &mut Hierarchy) -> Lookup {
        let mut node = 0usize;
        let mut best: Option<u64> = None;
        let mut loads = 0u32;
        let mut bits_left = 32u32;
        loop {
            let shift = bits_left - self.stride;
            let i = ((addr >> shift) & ((1u32 << self.stride) - 1)) as usize;
            // One load: the slot word of this node.
            mem.access(self.base + node as u64 * self.node_bytes + i as u64 * 8);
            loads += 1;
            match self.nodes[node].slots[i] {
                Slot::Empty => break,
                Slot::Leaf(d) => {
                    best = Some(d);
                    break;
                }
                Slot::Node(child) => {
                    // The child may still have pushed leaves; keep walking.
                    node = child as usize;
                    bits_left -= self.stride;
                    if bits_left == 0 {
                        break;
                    }
                }
            }
        }
        Lookup { value: best, loads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_lpm(prefixes: &[(u32, u8, u64)], addr: u32) -> Option<u64> {
        prefixes
            .iter()
            .filter(|&&(a, l, _)| {
                let mask = if l == 0 {
                    0
                } else if l == 32 {
                    u32::MAX
                } else {
                    !((1u32 << (32 - l)) - 1)
                };
                addr & mask == a
            })
            .max_by_key(|&&(_, l, _)| l)
            .map(|&(_, _, d)| d)
    }

    fn sample_prefixes() -> Vec<(u32, u8, u64)> {
        vec![
            (0x0A00_0000, 8, 8),
            (0x0A0B_0000, 16, 16),
            (0x0A0B_0C00, 24, 24),
            (0x0A0B_0C0D, 32, 32),
            (0xC000_0000, 2, 2),
        ]
    }

    #[test]
    fn lpm_matches_reference_for_all_strides() {
        let prefixes = sample_prefixes();
        for stride in [1u32, 2, 4, 8, 16] {
            let mut arena = Arena::new(0);
            let trie = MultibitTrie::build(&prefixes, stride, &mut arena);
            let mut mem = Hierarchy::typical();
            for addr in [
                0x0A0B_0C0Du32,
                0x0A0B_0C0E,
                0x0A0B_FF00,
                0x0A33_0000,
                0xC123_4567,
                0x7F00_0001,
            ] {
                assert_eq!(
                    trie.lookup(addr, &mut mem).value,
                    reference_lpm(&prefixes, addr),
                    "stride {stride}, addr {addr:#010x}"
                );
            }
        }
    }

    #[test]
    fn randomized_lpm_equivalence() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        let mut prefixes = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let len = rng.gen_range(4..=28u8);
            let addr = rng.gen::<u32>() & !((1u32 << (32 - len)) - 1);
            if seen.insert((addr, len)) {
                prefixes.push((addr, len, u64::from(len)));
            }
        }
        let mut arena = Arena::new(0);
        let trie = MultibitTrie::build(&prefixes, 8, &mut arena);
        let mut mem = Hierarchy::typical();
        for _ in 0..3_000 {
            let addr = rng.gen::<u32>();
            assert_eq!(
                trie.lookup(addr, &mut mem).value,
                reference_lpm(&prefixes, addr),
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn load_count_bounded_by_levels() {
        let prefixes = sample_prefixes();
        let mut arena = Arena::new(0);
        let trie = MultibitTrie::build(&prefixes, 8, &mut arena);
        let mut mem = Hierarchy::typical();
        for addr in [0x0A0B_0C0Du32, 0x0000_0000, 0xFFFF_FFFF] {
            let got = trie.lookup(addr, &mut mem);
            assert!(got.loads >= 1 && got.loads <= 4, "loads {}", got.loads);
        }
        // A /32 must walk all four levels.
        assert_eq!(trie.lookup(0x0A0B_0C0D, &mut mem).loads, 4);
    }

    #[test]
    fn smaller_stride_more_nodes_fewer_bytes_per_node() {
        let prefixes = sample_prefixes();
        let mut arena = Arena::new(0);
        let fine = MultibitTrie::build(&prefixes, 4, &mut arena);
        let coarse = MultibitTrie::build(&prefixes, 16, &mut arena);
        assert!(fine.node_count() > coarse.node_count());
    }

    #[test]
    fn default_route_fills_gaps_without_hiding_specifics() {
        let prefixes = vec![(0u32, 0u8, 99u64), (0x0A00_0000, 8, 8)];
        let mut arena = Arena::new(0);
        let trie = MultibitTrie::build(&prefixes, 8, &mut arena);
        let mut mem = Hierarchy::typical();
        assert_eq!(trie.lookup(0x0A01_0000, &mut mem).value, Some(8));
        assert_eq!(trie.lookup(0x0B00_0000, &mut mem).value, Some(99));
    }

    #[test]
    #[should_panic(expected = "host bits set")]
    fn host_bits_rejected() {
        let mut arena = Arena::new(0);
        let _ = MultibitTrie::build(&[(0x0A00_0001, 8, 0)], 8, &mut arena);
    }
}
