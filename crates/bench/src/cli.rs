//! Command-line parsing and error plumbing shared by every bench binary.
//!
//! The reproduction binaries take a handful of `--flag value` pairs; this
//! module gives them one parser and one error type so each `main` can be a
//! `fn main() -> Result<()>` instead of sprinkling `expect`/`panic!` over
//! argument handling, file writes, and child processes.

use std::fmt;

use ca_ram_core::error::CaRamError;

/// Errors a bench binary can surface to its caller.
#[derive(Debug)]
pub enum BenchError {
    /// A command-line flag was missing, unparsable, or out of range.
    Arg(String),
    /// A result file could not be written.
    Io {
        /// Path of the file being written.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A table configuration was rejected by `ca-ram-core`.
    Config(CaRamError),
    /// A child reproduction binary failed to launch or exited non-zero.
    Child {
        /// Name of the child binary.
        bin: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Arg(message) => write!(f, "{message}"),
            Self::Io { path, source } => write!(f, "writing {path}: {source}"),
            Self::Config(e) => write!(f, "table configuration: {e}"),
            Self::Child { bin, message } => write!(f, "{bin}: {message}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Config(e) => Some(e),
            Self::Arg(_) | Self::Child { .. } => None,
        }
    }
}

impl From<CaRamError> for BenchError {
    fn from(e: CaRamError) -> Self {
        Self::Config(e)
    }
}

/// Bench-binary result type.
pub type Result<T> = std::result::Result<T, BenchError>;

/// Returns an [`BenchError::Arg`] unless `cond` holds.
///
/// # Errors
///
/// Returns `message` as an argument error when `cond` is false.
pub fn ensure(cond: bool, message: &str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(BenchError::Arg(message.to_string()))
    }
}

/// The parsed command line of a bench binary: `--flag value` pairs.
#[derive(Debug, Clone)]
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Captures the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Builds a command line from explicit arguments (for tests).
    #[must_use]
    pub fn from_args<I: IntoIterator<Item = S>, S: Into<String>>(args: I) -> Self {
        Self {
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// The value following `--name`, if present.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Parses `--name <value>` as `T`, falling back to `default`.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Arg`] if the value is present but unparsable.
    pub fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                BenchError::Arg(format!(
                    "--{name} expects a {} value, got {v:?}",
                    std::any::type_name::<T>()
                ))
            }),
        }
    }

    /// Whether the bare flag `--name` is present (no value expected).
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.args.contains(&format!("--{name}"))
    }

    /// The value of `--name`, validated against a closed set of choices.
    /// Returns `None` when the flag is absent (callers treat that as
    /// "all" or a default), and an error naming every valid choice when
    /// the value is not one of them — so a typo like `--scenario pakcet`
    /// fails up front instead of silently filtering everything out.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Arg`] listing `choices` if the value is
    /// present but not among them.
    pub fn choice(&self, name: &str, choices: &[&str]) -> Result<Option<String>> {
        match self.value(name) {
            None => Ok(None),
            Some(v) if choices.contains(&v) => Ok(Some(v.to_string())),
            Some(v) => Err(BenchError::Arg(format!(
                "--{name} {v:?} is not a valid choice; expected one of: {}",
                choices.join(", ")
            ))),
        }
    }

    /// The raw `--flag value` pairs whose flag is in `names`, flattened in
    /// order — for forwarding a subset of flags to a child binary.
    #[must_use]
    pub fn passthrough(&self, names: &[&str]) -> Vec<String> {
        self.args
            .windows(2)
            .filter(|w| names.iter().any(|n| w[0] == format!("--{n}")))
            .flat_map(<[String]>::to_vec)
            .collect()
    }
}

/// Writes `contents` to `path`, mapping failures to [`BenchError::Io`].
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the write fails.
pub fn write_text(path: &str, contents: &str) -> Result<()> {
    std::fs::write(path, contents).map_err(|source| BenchError::Io {
        path: path.to_string(),
        source,
    })
}

/// Writes `contents` to `path` atomically: the bytes land in a `.tmp`
/// sibling first and are renamed over `path`, so a crash mid-write never
/// leaves a truncated artifact behind.
///
/// # Errors
///
/// Returns [`BenchError::Io`] when the temporary write or the rename fails.
pub fn write_text_atomic(path: &str, contents: &str) -> Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|source| BenchError::Io {
        path: tmp.clone(),
        source,
    })?;
    std::fs::rename(&tmp, path).map_err(|source| BenchError::Io {
        path: path.to_string(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_present_absent_and_bad() {
        let cli = Cli::from_args(["--prefixes", "1000", "--seed", "0x1103"]);
        assert_eq!(cli.parse("prefixes", 5usize).unwrap(), 1000);
        assert_eq!(cli.parse("lookups", 7usize).unwrap(), 7);
        // 0x-prefixed values are not valid for u64's FromStr.
        assert!(cli.parse::<u64>("seed", 0).is_err());
        assert_eq!(cli.value("seed"), Some("0x1103"));
        assert_eq!(cli.value("missing"), None);
    }

    #[test]
    fn bare_flags_are_detected() {
        let cli = Cli::from_args(["--smoke", "--records", "64"]);
        assert!(cli.flag("smoke"));
        assert!(!cli.flag("verbose"));
    }

    #[test]
    fn passthrough_selects_pairs() {
        let cli = Cli::from_args(["--entries", "9", "--csv", "x", "--seed", "3"]);
        assert_eq!(
            cli.passthrough(&["entries", "seed"]),
            vec!["--entries", "9", "--seed", "3"]
        );
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("ca_ram_bench_atomic_write_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("out.txt");
        let path_str = path.to_str().expect("utf-8 temp path");
        write_text_atomic(path_str, "first").expect("atomic write");
        write_text_atomic(path_str, "second").expect("atomic overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), "second");
        assert!(
            !std::path::Path::new(&format!("{path_str}.tmp")).exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn choice_accepts_listed_values_and_names_the_rest() {
        let cli = Cli::from_args(["--scenario", "packet-class-128b"]);
        let choices = ["exact-churn-32b", "packet-class-128b"];
        assert_eq!(
            cli.choice("scenario", &choices).unwrap().as_deref(),
            Some("packet-class-128b")
        );
        assert_eq!(cli.choice("engine", &choices).unwrap(), None);

        let bad = Cli::from_args(["--scenario", "pakcet"]);
        let err = bad.choice("scenario", &choices).unwrap_err().to_string();
        assert!(err.contains("\"pakcet\""), "{err}");
        assert!(err.contains("exact-churn-32b, packet-class-128b"), "{err}");
    }

    #[test]
    fn ensure_maps_to_arg_error() {
        assert!(ensure(true, "fine").is_ok());
        let err = ensure(false, "--n must be > 0").unwrap_err();
        assert_eq!(err.to_string(), "--n must be > 0");
    }
}
