//! Property-based tests for the CAM baselines: every device must agree
//! with a brute-force reference model, and the update/encoding schemes must
//! preserve the lookup function they optimize.

use ca_ram_cam::aggregate::{aggregate, PrefixEntry};
use ca_ram_cam::{BankedTcam, BinaryCam, PrecomputedBcam, SortedTcam, Tcam, TcamEntry};
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use proptest::prelude::*;

fn prefix_strategy() -> impl Strategy<Value = (u32, u32, u64)> {
    // (addr, len, data) with addr truncated to len.
    (any::<u32>(), 4u32..=32, 0u64..8).prop_map(|(addr, len, data)| {
        let mask = if len == 32 {
            u32::MAX
        } else {
            !((1u32 << (32 - len)) - 1)
        };
        (addr & mask, len, data)
    })
}

fn key_of(addr: u32, len: u32) -> TernaryKey {
    let dc = if len == 32 {
        0u128
    } else {
        (1u128 << (32 - len)) - 1
    };
    TernaryKey::ternary(u128::from(addr), dc, 32)
}

/// Reference LPM over (addr, len, data) triples; ties broken by first
/// occurrence (the priority-order convention).
fn reference_lpm(routes: &[(u32, u32, u64)], probe: u32) -> Option<u64> {
    routes
        .iter()
        .filter(|&&(addr, len, _)| {
            let mask = if len == 32 {
                u32::MAX
            } else {
                !((1u32 << (32 - len)) - 1)
            };
            probe & mask == addr
        })
        .max_by(|a, b| a.1.cmp(&b.1))
        .map(|&(_, _, d)| d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sorted_tcam_computes_reference_lpm(
        mut routes in prop::collection::vec(prefix_strategy(), 1..40),
        probes in prop::collection::vec(any::<u32>(), 30),
    ) {
        // Dedup same (addr, len): keep the first (reference does the same
        // only if data ties are impossible, so dedup is required).
        routes.sort_by_key(|&(a, l, _)| (a, l));
        routes.dedup_by_key(|&mut (a, l, _)| (a, l));
        let mut t = SortedTcam::new(routes.len(), 32);
        for &(addr, len, data) in &routes {
            t.insert(key_of(addr, len), data).expect("capacity");
        }
        prop_assert!(t.invariant_holds());
        for &p in &probes {
            let got = t.search(&SearchKey::new(u128::from(p), 32)).map(|m| m.entry.data);
            // Equal-length matches tie arbitrarily; accept any of them.
            let max_len = routes
                .iter()
                .filter(|&&(a, l, _)| {
                    let mask = if l == 32 { u32::MAX } else { !((1u32 << (32 - l)) - 1) };
                    p & mask == a
                })
                .map(|&(_, l, _)| l)
                .max();
            match max_len {
                None => prop_assert_eq!(got, None),
                Some(ml) => {
                    let candidates: Vec<u64> = routes
                        .iter()
                        .filter(|&&(a, l, _)| {
                            let mask = if l == 32 { u32::MAX } else { !((1u32 << (32 - l)) - 1) };
                            l == ml && p & mask == a
                        })
                        .map(|&(_, _, d)| d)
                        .collect();
                    prop_assert!(got.is_some_and(|d| candidates.contains(&d)));
                }
            }
        }
    }

    #[test]
    fn banked_tcam_agrees_with_flat_tcam(
        mut routes in prop::collection::vec(prefix_strategy(), 1..30),
        probes in prop::collection::vec(any::<u32>(), 30),
    ) {
        routes.sort_by_key(|r| std::cmp::Reverse(r.1)); // longest first
        routes.dedup_by_key(|&mut (a, l, _)| (a, l));
        let mut flat = Tcam::new(routes.len(), 32);
        let mut banked = BankedTcam::new(
            Box::new(RangeSelect::new(30, 2)),
            routes.len(),
            32,
        );
        for (i, &(addr, len, data)) in routes.iter().enumerate() {
            flat.write(i, TcamEntry { key: key_of(addr, len), data });
            banked.insert(key_of(addr, len), data).expect("capacity");
        }
        for &p in &probes {
            let key = SearchKey::new(u128::from(p), 32);
            let a = flat.search(&key).map(|m| m.entry.key.care_count());
            let b = banked.search(&key).hit.map(|m| m.entry.key.care_count());
            prop_assert_eq!(a, b, "probe {:#010x}", p);
        }
    }

    #[test]
    fn aggregation_preserves_lpm(
        mut routes in prop::collection::vec(
            // Narrow space to force merges.
            (0u32..256, 22u32..=26, 0u64..2),
            1..60
        ),
        probes in prop::collection::vec(0u32..65_536, 50),
    ) {
        let routes: Vec<(u32, u32, u64)> = {
            let mapped: Vec<(u32, u32, u64)> = routes
                .drain(..)
                .map(|(a, l, d)| {
                    let addr = a << 8;
                    let mask = if l == 32 { u32::MAX } else { !((1u32 << (32 - l)) - 1) };
                    (addr & mask, l, d)
                })
                .collect();
            let mut seen = std::collections::HashSet::new();
            mapped
                .into_iter()
                .filter(|&(a, l, _)| seen.insert((a, l)))
                .collect()
        };
        let entries: Vec<PrefixEntry> = routes
            .iter()
            .map(|&(a, l, d)| PrefixEntry { key: key_of(a, l), data: d })
            .collect();
        let agg = aggregate(&entries);
        prop_assert!(agg.entries.len() <= entries.len());
        for &p in &probes {
            let before = reference_lpm(&routes, p);
            let after: Vec<(u32, u32, u64)> = agg
                .entries
                .iter()
                .map(|e| {
                    #[allow(clippy::cast_possible_truncation)]
                    let addr = e.key.value() as u32;
                    (addr, e.key.care_count(), e.data)
                })
                .collect();
            prop_assert_eq!(before, reference_lpm(&after, p), "probe {:#010x}", p);
        }
    }

    #[test]
    fn precomputed_bcam_agrees_with_plain_bcam(
        keys in prop::collection::vec(any::<u64>(), 1..50),
        probes in prop::collection::vec(any::<u64>(), 20),
    ) {
        let mut plain = BinaryCam::new(keys.len(), 64);
        let mut pre = PrecomputedBcam::new(keys.len(), 64);
        let mut deduped = keys.clone();
        deduped.sort_unstable();
        deduped.dedup();
        for (i, &k) in deduped.iter().enumerate() {
            plain.push(u128::from(k), i as u64).expect("capacity");
            pre.insert(u128::from(k), i as u64).expect("capacity");
        }
        for &p in probes.iter().chain(deduped.iter()) {
            let key = SearchKey::new(u128::from(p), 64);
            let a = plain.search(&key).map(|(_, e)| e.data);
            let b = pre.search(&key).hit.map(|e| e.data);
            prop_assert_eq!(a, b, "probe {:#018x}", p);
        }
    }
}
