//! Lockstep replay of an op stream against an engine and the model.
//!
//! [`replay`] walks a stream, applying each op to a
//! [`SearchEngine`] and the [`ReferenceModel`] simultaneously and
//! comparing the observable outcome of every op; the first disagreement
//! becomes a [`Divergence`]. [`run_case`] wraps that with ddmin-style
//! stream minimization and packages a [`DivergenceReport`] whose repro
//! stream can be checked in as a plain-text fixture.

use crate::engine::SearchEngine;
use crate::kernel::{self, Kernel};
use crate::layout::Record;

use super::model::ReferenceModel;
use super::{format_stream, Op};

/// Extra slots a `must_fit` engine must have free before a refused insert
/// counts as a divergence — covers records that legally occupy several
/// slots (don't-care bits in the hashed range duplicate a record into up
/// to `2^k` home buckets; the generator keeps `k ≤ 2`).
const MUST_FIT_MARGIN: u64 = 16;

/// One engine under differential test.
///
/// `build` returns a ready engine for a key width (`None` if the width is
/// unsupported): freshly built at stream start and again on every
/// [`Op::Reconfigure`] — reconfiguration destroys contents, exactly like a
/// [`crate::config_regs::ControlRegister`] commit. Statically built
/// engines bake `preload` into the build; the model is seeded with the
/// same records.
pub struct EngineCase {
    /// Engine name for reports (unique within a fleet).
    pub name: String,
    /// Whether a refused insert with `MUST_FIT_MARGIN` free slots is a
    /// divergence. True for engines whose placement is exhaustive (full
    /// linear/double-hash probing, flat CAMs); false where a legal refusal
    /// can happen below capacity (bounded probes, banked or classed
    /// devices, dedicated overflow areas).
    pub must_fit: bool,
    /// Builds a ready engine for the given key width.
    #[allow(clippy::type_complexity)]
    pub build: Box<dyn Fn(u32) -> Option<Box<dyn SearchEngine>>>,
    /// Records already present in a freshly built engine (statically built
    /// indexes). Only applied at widths matching the record keys.
    pub preload: Vec<Record>,
}

impl core::fmt::Debug for EngineCase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EngineCase")
            .field("name", &self.name)
            .field("must_fit", &self.must_fit)
            .field("preload", &self.preload.len())
            .finish_non_exhaustive()
    }
}

/// How an engine disagreed with the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A search answered outside the model's accepted set.
    SearchMismatch {
        /// Matching records in the model.
        model_matches: usize,
        /// Accepted payloads (max-care matches).
        accepted: Vec<u64>,
        /// What the engine reported, if it hit.
        got: Option<u64>,
    },
    /// A delete disagreed about whether the key was present.
    DeleteMismatch {
        /// Copies the model removed.
        expected: u32,
        /// Copies the engine reported removing.
        got: u32,
    },
    /// A `must_fit` engine refused an insert despite free capacity.
    InsertRefused {
        /// The engine's error, rendered.
        error: String,
        /// Stored copies at refusal time.
        records: u64,
        /// The engine's capacity.
        capacity: u64,
    },
    /// The engine reports records while the model is empty, or vice versa.
    EmptinessMismatch {
        /// Live records in the model.
        model_len: usize,
        /// Stored copies the engine reports.
        engine_records: u64,
    },
    /// The scalar-kernel twin and the SIMD-kernel twin of the same engine
    /// disagreed about an op's observable outcome.
    KernelMismatch {
        /// The SIMD twin's compare kernel name.
        kernel: String,
        /// The scalar twin's answer, rendered.
        scalar: String,
        /// The SIMD twin's answer, rendered.
        simd: String,
    },
}

impl core::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DivergenceKind::SearchMismatch {
                model_matches,
                accepted,
                got,
            } => write!(
                f,
                "search: engine returned {got:?}, model has {model_matches} match(es) \
                 with accepted data {accepted:x?}"
            ),
            DivergenceKind::DeleteMismatch { expected, got } => write!(
                f,
                "delete: engine removed {got} copies, model removed {expected}"
            ),
            DivergenceKind::InsertRefused {
                error,
                records,
                capacity,
            } => write!(
                f,
                "insert refused ({error}) with {records}/{capacity} slots used"
            ),
            DivergenceKind::EmptinessMismatch {
                model_len,
                engine_records,
            } => write!(
                f,
                "occupancy: engine reports {engine_records} stored copies, \
                 model holds {model_len} records"
            ),
            DivergenceKind::KernelMismatch {
                kernel,
                scalar,
                simd,
            } => write!(
                f,
                "kernel: {kernel} twin answered {simd}, scalar twin answered {scalar}"
            ),
        }
    }
}

/// The first point where an engine and the model disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the offending op in the replayed stream.
    pub op_index: usize,
    /// What disagreed.
    pub kind: DivergenceKind,
}

/// A packaged, minimized divergence — everything needed to reproduce and
/// pin the bug.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The diverging engine's [`EngineCase::name`].
    pub engine: String,
    /// The scenario the stream came from.
    pub scenario: String,
    /// The generator seed.
    pub seed: u64,
    /// Key width at stream start.
    pub key_bits: u32,
    /// Op index of the first divergence in the *original* stream.
    pub op_index: usize,
    /// Rendered [`DivergenceKind`] observed on the minimized stream.
    pub detail: String,
    /// The minimized repro stream (still diverging).
    pub repro: Vec<Op>,
}

impl DivergenceReport {
    /// The repro as a self-describing fixture file.
    #[must_use]
    pub fn to_fixture(&self) -> String {
        format!(
            "# engine: {}\n# scenario: {}\n# seed: {}\n# key_bits: {}\n# first divergence at op {} of the original stream\n# {}\n{}",
            self.engine,
            self.scenario,
            self.seed,
            self.key_bits,
            self.op_index,
            self.detail,
            format_stream(&self.repro)
        )
    }
}

fn op_bits(op: &Op) -> Option<u32> {
    match op {
        Op::Insert(r) | Op::InsertSorted(r) => Some(r.key.bits()),
        Op::Delete(k) | Op::Update { key: k, .. } => Some(k.bits()),
        Op::Search(k) => Some(k.bits()),
        Op::Reconfigure { .. } => None,
    }
}

fn seed_model(model: &mut ReferenceModel, preload: &[Record]) {
    for r in preload {
        if r.key.bits() == model.key_bits() {
            model.insert(*r);
        }
    }
}

/// Applies one op to both sides; `Some` on disagreement.
#[allow(clippy::too_many_lines)]
fn apply(
    case: &EngineCase,
    engine: &mut Box<dyn SearchEngine>,
    model: &mut ReferenceModel,
    op: &Op,
) -> Option<DivergenceKind> {
    // Ops at a stale width (minimization can drop a Reconfigure) are
    // skipped on both sides.
    if op_bits(op).is_some_and(|b| b != model.key_bits()) {
        return None;
    }
    match op {
        Op::Insert(r) | Op::InsertSorted(r) => {
            let res = if matches!(op, Op::Insert(_)) {
                engine.insert(*r)
            } else {
                engine.insert_sorted(*r)
            };
            match res {
                Ok(()) => model.insert(*r),
                Err(e) => {
                    if case.must_fit {
                        let rep = engine.occupancy();
                        if let (Some(records), Some(capacity)) = (rep.records, rep.capacity) {
                            if records + MUST_FIT_MARGIN <= capacity {
                                return Some(DivergenceKind::InsertRefused {
                                    error: e.to_string(),
                                    records,
                                    capacity,
                                });
                            }
                        }
                    }
                }
            }
        }
        Op::Delete(k) => {
            let got = engine.delete(k);
            let expected = model.delete(k);
            if (got > 0) != (expected > 0) {
                return Some(DivergenceKind::DeleteMismatch { expected, got });
            }
        }
        Op::Update { key, data } => {
            let got = engine.delete(key);
            let expected = model.delete(key);
            if (got > 0) != (expected > 0) {
                return Some(DivergenceKind::DeleteMismatch { expected, got });
            }
            if expected > 0 {
                let record = Record::new(*key, *data);
                match engine.insert(record) {
                    Ok(()) => model.insert(record),
                    Err(e) => {
                        // Reinserting into just-freed slots must succeed on
                        // an exhaustive-placement engine.
                        if case.must_fit {
                            let rep = engine.occupancy();
                            return Some(DivergenceKind::InsertRefused {
                                error: e.to_string(),
                                records: rep.records.unwrap_or(0),
                                capacity: rep.capacity.unwrap_or(0),
                            });
                        }
                    }
                }
            }
        }
        Op::Search(k) => {
            let expected = model.expected(k);
            let got = engine.search(k).hit.map(|h| h.data);
            if !expected.admits(got) {
                return Some(DivergenceKind::SearchMismatch {
                    model_matches: expected.matches,
                    accepted: expected.accepted,
                    got,
                });
            }
        }
        Op::Reconfigure { key_bits } => {
            if let Some(rebuilt) = (case.build)(*key_bits) {
                *engine = rebuilt;
                *model = ReferenceModel::new(*key_bits);
                seed_model(model, &case.preload);
            }
        }
    }
    // Cheap standing invariant: an engine that counts its records agrees
    // with the model about emptiness (copy counts legitimately differ).
    if let Some(engine_records) = engine.occupancy().records {
        if (engine_records == 0) != model.is_empty() {
            return Some(DivergenceKind::EmptinessMismatch {
                model_len: model.len(),
                engine_records,
            });
        }
    }
    None
}

/// Replays `ops` against a fresh engine and model; `None` means no
/// divergence (vacuously so if the case does not support `key_bits`).
#[must_use]
pub fn replay(case: &EngineCase, key_bits: u32, ops: &[Op]) -> Option<Divergence> {
    let mut engine = (case.build)(key_bits)?;
    let mut model = ReferenceModel::new(key_bits);
    seed_model(&mut model, &case.preload);
    for (op_index, op) in ops.iter().enumerate() {
        if let Some(kind) = apply(case, &mut engine, &mut model, op) {
            return Some(Divergence { op_index, kind });
        }
    }
    None
}

/// ddmin-style minimization core: truncates at `first_index`, then
/// repeatedly drops chunks (halving granularity down to single ops) while
/// `diverges` stays true. `budget` bounds the number of replays.
fn minimize_by(
    ops: &[Op],
    first_index: usize,
    budget: usize,
    diverges: &dyn Fn(&[Op]) -> bool,
) -> Vec<Op> {
    let mut current: Vec<Op> = ops[..=first_index].to_vec();
    let mut spent = 0usize;
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.len() {
            if spent >= budget {
                return current;
            }
            let mut candidate = current.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            spent += 1;
            if !candidate.is_empty() && diverges(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                return current;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// ddmin-style minimization of an engine-vs-model divergence. `budget`
/// bounds the number of replays.
#[must_use]
pub fn minimize(case: &EngineCase, key_bits: u32, ops: &[Op], budget: usize) -> Vec<Op> {
    let Some(first) = replay(case, key_bits, ops) else {
        return ops.to_vec();
    };
    minimize_by(ops, first.op_index, budget, &|candidate| {
        replay(case, key_bits, candidate).is_some()
    })
}

/// Runs one engine against one stream: replay, minimize on divergence,
/// and package the report. `None` means the engine agreed with the model
/// on every op.
#[must_use]
pub fn run_case(
    case: &EngineCase,
    scenario: &str,
    seed: u64,
    key_bits: u32,
    ops: &[Op],
    minimize_budget: usize,
) -> Option<DivergenceReport> {
    let first = replay(case, key_bits, ops)?;
    let repro = minimize(case, key_bits, ops, minimize_budget);
    let detail = replay(case, key_bits, &repro)
        .map_or_else(|| first.kind.to_string(), |d| d.kind.to_string());
    Some(DivergenceReport {
        engine: case.name.clone(),
        scenario: scenario.to_string(),
        seed,
        key_bits,
        op_index: first.op_index,
        detail,
        repro,
    })
}

/// Builds the scalar/SIMD twin pair of one engine case: the first engine
/// is constructed under a forced [`Kernel::Scalar`] (its match-processor
/// banks capture the kernel at build time and keep it for life), the
/// second under the process-wide active kernel.
fn build_kernel_pair(
    case: &EngineCase,
    key_bits: u32,
) -> Option<(Box<dyn SearchEngine>, Box<dyn SearchEngine>)> {
    let scalar = kernel::with_forced(Kernel::Scalar, || (case.build)(key_bits))?;
    let simd = (case.build)(key_bits)?;
    Some((scalar, simd))
}

/// Renders an outcome for a [`DivergenceKind::KernelMismatch`] payload.
fn render_outcome(outcome: &crate::engine::EngineOutcome) -> String {
    match &outcome.hit {
        Some(h) => format!(
            "hit(data {:#x}, key {:?}, {} accesses)",
            h.data, h.key, outcome.memory_accesses
        ),
        None => format!("miss({} accesses)", outcome.memory_accesses),
    }
}

/// Applies one op to the scalar twin, the SIMD twin, and the model;
/// `Some` on any disagreement. Search outcomes are compared *strictly*
/// between the twins ([`crate::engine::EngineOutcome`] equality: hit,
/// payload, and access count), and each twin is additionally judged
/// against the model, so a bug shared by both kernels still surfaces.
#[allow(clippy::too_many_lines)]
fn apply_kernel_pair(
    case: &EngineCase,
    scalar: &mut Box<dyn SearchEngine>,
    simd: &mut Box<dyn SearchEngine>,
    model: &mut ReferenceModel,
    op: &Op,
    kernel_name: &str,
) -> Option<DivergenceKind> {
    let mismatch = |s: String, v: String| DivergenceKind::KernelMismatch {
        kernel: kernel_name.to_string(),
        scalar: s,
        simd: v,
    };
    if op_bits(op).is_some_and(|b| b != model.key_bits()) {
        return None;
    }
    match op {
        Op::Insert(r) | Op::InsertSorted(r) => {
            let (rs, rv) = if matches!(op, Op::Insert(_)) {
                (scalar.insert(*r), simd.insert(*r))
            } else {
                (scalar.insert_sorted(*r), simd.insert_sorted(*r))
            };
            match (rs, rv) {
                (Ok(()), Ok(())) => model.insert(*r),
                (Err(_), Err(_)) => {}
                (rs, rv) => {
                    // Placement never depends on the compare kernel;
                    // disagreeing on *acceptance* is a kernel bug (e.g. a
                    // duplicate/occupancy scan matching differently).
                    let render = |r: crate::error::Result<()>| match r {
                        Ok(()) => "insert accepted".to_string(),
                        Err(e) => format!("insert refused ({e})"),
                    };
                    return Some(mismatch(render(rs), render(rv)));
                }
            }
        }
        Op::Delete(k) => {
            let ds = scalar.delete(k);
            let dv = simd.delete(k);
            if ds != dv {
                return Some(mismatch(
                    format!("removed {ds} copies"),
                    format!("removed {dv} copies"),
                ));
            }
            let expected = model.delete(k);
            if (dv > 0) != (expected > 0) {
                return Some(DivergenceKind::DeleteMismatch { expected, got: dv });
            }
        }
        Op::Update { key, data } => {
            let ds = scalar.delete(key);
            let dv = simd.delete(key);
            if ds != dv {
                return Some(mismatch(
                    format!("removed {ds} copies"),
                    format!("removed {dv} copies"),
                ));
            }
            let expected = model.delete(key);
            if (dv > 0) != (expected > 0) {
                return Some(DivergenceKind::DeleteMismatch { expected, got: dv });
            }
            if expected > 0 {
                let record = Record::new(*key, *data);
                match (scalar.insert(record), simd.insert(record)) {
                    (Ok(()), Ok(())) => model.insert(record),
                    (Err(_), Err(_)) => {}
                    (rs, rv) => {
                        let render = |r: crate::error::Result<()>| match r {
                            Ok(()) => "insert accepted".to_string(),
                            Err(e) => format!("insert refused ({e})"),
                        };
                        return Some(mismatch(render(rs), render(rv)));
                    }
                }
            }
        }
        Op::Search(k) => {
            let os = scalar.search(k);
            let ov = simd.search(k);
            if os != ov {
                return Some(mismatch(render_outcome(&os), render_outcome(&ov)));
            }
            let expected = model.expected(k);
            // Twins are equal at this point; judging one judges both.
            let got = ov.hit.map(|h| h.data);
            if !expected.admits(got) {
                return Some(DivergenceKind::SearchMismatch {
                    model_matches: expected.matches,
                    accepted: expected.accepted,
                    got,
                });
            }
        }
        Op::Reconfigure { key_bits } => {
            if let Some((s, v)) = build_kernel_pair(case, *key_bits) {
                *scalar = s;
                *simd = v;
                *model = ReferenceModel::new(*key_bits);
                seed_model(model, &case.preload);
            }
        }
    }
    // The twins replayed identical mutations; their record counts (when
    // reported) must track exactly, and emptiness must match the model.
    let (sr, vr) = (scalar.occupancy().records, simd.occupancy().records);
    if sr != vr {
        return Some(mismatch(
            format!("{sr:?} stored copies"),
            format!("{vr:?} stored copies"),
        ));
    }
    if let Some(engine_records) = vr {
        if (engine_records == 0) != model.is_empty() {
            return Some(DivergenceKind::EmptinessMismatch {
                model_len: model.len(),
                engine_records,
            });
        }
    }
    None
}

/// Replays `ops` against a scalar-kernel twin and a SIMD-kernel twin of
/// the same engine in lockstep with the model; `None` means full
/// agreement (vacuously so when the case does not support `key_bits`).
/// When the host's active kernel is already scalar the twins coincide
/// and the replay degenerates to [`replay`] with strict search equality.
#[must_use]
pub fn replay_kernel_pair(case: &EngineCase, key_bits: u32, ops: &[Op]) -> Option<Divergence> {
    let (mut scalar, mut simd) = build_kernel_pair(case, key_bits)?;
    let mut model = ReferenceModel::new(key_bits);
    seed_model(&mut model, &case.preload);
    let kernel_name = kernel::active_kernel().name();
    for (op_index, op) in ops.iter().enumerate() {
        if let Some(kind) =
            apply_kernel_pair(case, &mut scalar, &mut simd, &mut model, op, kernel_name)
        {
            return Some(Divergence { op_index, kind });
        }
    }
    None
}

/// Runs one engine's scalar/SIMD twin pair against one stream: replay,
/// minimize on divergence, and package the report. The report's engine
/// name is `<case name>+kernel` so kernel-differential cells are
/// distinguishable from the plain engine-vs-model cells in fixtures and
/// fuzz matrices.
#[must_use]
pub fn run_kernel_case(
    case: &EngineCase,
    scenario: &str,
    seed: u64,
    key_bits: u32,
    ops: &[Op],
    minimize_budget: usize,
) -> Option<DivergenceReport> {
    let first = replay_kernel_pair(case, key_bits, ops)?;
    let repro = minimize_by(ops, first.op_index, minimize_budget, &|candidate| {
        replay_kernel_pair(case, key_bits, candidate).is_some()
    });
    let detail = replay_kernel_pair(case, key_bits, &repro)
        .map_or_else(|| first.kind.to_string(), |d| d.kind.to_string());
    Some(DivergenceReport {
        engine: format!("{}+kernel", case.name),
        scenario: scenario.to_string(),
        seed,
        key_bits,
        op_index: first.op_index,
        detail,
        repro,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineOutcome, EngineReport};
    use crate::error::Result;
    use crate::key::{SearchKey, TernaryKey};

    /// A deliberately broken engine: drops every record whose payload is
    /// divisible by a chosen modulus.
    struct Lossy {
        records: Vec<Record>,
        drop_modulus: u64,
        bits: u32,
    }

    impl SearchEngine for Lossy {
        fn name(&self) -> &str {
            "lossy"
        }
        fn key_bits(&self) -> u32 {
            self.bits
        }
        fn search(&self, key: &SearchKey) -> EngineOutcome {
            let hit = self
                .records
                .iter()
                .filter(|r| r.key.matches(key))
                .max_by_key(|r| r.key.care_count())
                .map(|r| crate::engine::EngineHit {
                    key: r.key,
                    data: r.data,
                });
            EngineOutcome {
                hit,
                memory_accesses: 1,
            }
        }
        fn insert(&mut self, record: Record) -> Result<()> {
            if record.data % self.drop_modulus != 0 {
                self.records.push(record);
            }
            Ok(())
        }
        fn delete(&mut self, key: &TernaryKey) -> u32 {
            let before = self.records.len();
            self.records.retain(|r| r.key != *key);
            u32::try_from(before - self.records.len()).expect("bounded")
        }
        fn occupancy(&self) -> EngineReport {
            EngineReport::default()
        }
    }

    fn lossy_case(drop_modulus: u64) -> EngineCase {
        EngineCase {
            name: "lossy".into(),
            must_fit: false,
            build: Box::new(move |bits| {
                Some(Box::new(Lossy {
                    records: Vec::new(),
                    drop_modulus,
                    bits,
                }) as Box<dyn SearchEngine>)
            }),
            preload: Vec::new(),
        }
    }

    fn ins(v: u128, data: u64) -> Op {
        Op::Insert(Record::new(TernaryKey::binary(v, 16), data))
    }

    fn find(v: u128) -> Op {
        Op::Search(SearchKey::new(v, 16))
    }

    #[test]
    fn faithful_replay_has_no_divergence() {
        let case = lossy_case(u64::MAX); // drops nothing
        let ops = vec![ins(1, 10), ins(2, 20), find(1), find(2), find(3)];
        assert!(replay(&case, 16, &ops).is_none());
    }

    #[test]
    fn divergence_is_detected_and_minimized() {
        let case = lossy_case(7); // drops data 14 below
        let mut ops = vec![ins(1, 10), ins(2, 20), find(1)];
        for i in 0..20u64 {
            // Filler payloads stay clear of the drop modulus.
            ops.push(ins(100 + u128::from(i), 7 * (200 + i) + 1));
            ops.push(find(100 + u128::from(i)));
        }
        ops.push(ins(55, 14)); // silently dropped by the engine
        ops.push(find(55)); // model says hit, engine misses
        let report = run_case(&case, "unit", 0, 16, &ops, 500).expect("must diverge");
        assert_eq!(report.op_index, ops.len() - 1);
        // Minimization should strip the unrelated prefix entirely.
        assert_eq!(report.repro, vec![ops[ops.len() - 2], ops[ops.len() - 1]]);
        assert!(report.detail.contains("search"));
        // The fixture round-trips through the parser.
        let text = report.to_fixture();
        let parsed = super::super::parse_stream(&text).expect("fixture parses");
        assert_eq!(parsed, report.repro);
        // And still reproduces.
        assert!(replay(&case, 16, &parsed).is_some());
    }

    #[test]
    fn must_fit_flags_spurious_refusal() {
        struct Refuses;
        impl SearchEngine for Refuses {
            fn name(&self) -> &str {
                "refuses"
            }
            fn key_bits(&self) -> u32 {
                16
            }
            fn search(&self, _key: &SearchKey) -> EngineOutcome {
                EngineOutcome::miss(1)
            }
            fn insert(&mut self, _record: Record) -> Result<()> {
                Err(crate::error::CaRamError::TableFull {
                    home_bucket: 0,
                    buckets_probed: 1,
                })
            }
            fn delete(&mut self, _key: &TernaryKey) -> u32 {
                0
            }
            fn occupancy(&self) -> EngineReport {
                EngineReport {
                    records: Some(0),
                    capacity: Some(64),
                }
            }
        }
        let case = EngineCase {
            name: "refuses".into(),
            must_fit: true,
            build: Box::new(|_| Some(Box::new(Refuses) as Box<dyn SearchEngine>)),
            preload: Vec::new(),
        };
        let d = replay(&case, 16, &[ins(1, 1)]).expect("refusal must diverge");
        assert!(matches!(d.kind, DivergenceKind::InsertRefused { .. }));
    }

    #[test]
    fn kernel_pair_agrees_on_faithful_engine() {
        let _guard = crate::kernel::test_force_lock();
        let case = lossy_case(u64::MAX); // drops nothing: both twins faithful
        let ops = vec![ins(1, 10), ins(2, 20), find(1), find(2), find(3)];
        assert!(replay_kernel_pair(&case, 16, &ops).is_none());
    }

    #[test]
    fn kernel_pair_detects_kernel_dependent_loss() {
        let _guard = crate::kernel::test_force_lock();
        if kernel::active_kernel() == Kernel::Scalar {
            // Scalar-only host, the portable build, or a
            // `CA_RAM_KERNEL=scalar` run: the twins coincide and a
            // kernel-dependent bug cannot manifest.
            return;
        }
        // A twin built under a non-scalar kernel silently drops every
        // record — the differential must catch the twins disagreeing.
        let case = EngineCase {
            name: "kernel-dependent".into(),
            must_fit: false,
            build: Box::new(|bits| {
                let lossy = kernel::active_kernel() != Kernel::Scalar;
                Some(Box::new(Lossy {
                    records: Vec::new(),
                    drop_modulus: if lossy { 1 } else { u64::MAX },
                    bits,
                }) as Box<dyn SearchEngine>)
            }),
            preload: Vec::new(),
        };
        let ops = vec![ins(1, 10), find(1)];
        let report = run_kernel_case(&case, "unit", 0, 16, &ops, 100).expect("twins must disagree");
        assert_eq!(report.engine, "kernel-dependent+kernel");
        assert!(report.detail.starts_with("kernel:"), "{}", report.detail);
        // The minimized repro still reproduces through the public entry.
        assert!(replay_kernel_pair(&case, 16, &report.repro).is_some());
    }
}
