//! Reproduces **Figure 8**: application-level area and power comparison
//! (Sec. 4.3).
//!
//! * IP address lookup: a 6T dynamic TCAM (143 MHz, Noda '05) holding
//!   186,760 prefixes of 32 ternary symbols, versus CA-RAM design D
//!   (R = 12, two horizontal slices of 64×64-bit buckets, re-sliced into
//!   eight vertical banks for bandwidth) at 200 MHz with ≥6-cycle DRAM.
//! * Trigram lookup: a stacked-capacitor binary CAM (Yamagata '92,
//!   optimistically scaled to 130 nm) holding 5,385,231 entries of 128
//!   bits, versus CA-RAM design A (4 vertical slices, α = 0.86).
//!
//! Results are printed relative to the TCAM/CAM baseline, as in the figure.

use ca_ram_bench::rule;
use ca_ram_hwmodel::{
    AreaModel, CaRamGeometry, CaRamTiming, CamGeometry, CamTiming, CellKind, Megahertz, PowerModel,
};

fn main() {
    let area = AreaModel::new();
    let power = PowerModel::new();

    println!("Figure 8: area and power, CA-RAM vs (T)CAM, per application\n");

    // ---- IP address lookup ------------------------------------------------
    println!("IP address lookup (186,760 prefixes):");
    let tcam = CamGeometry::new(186_760, 32, CellKind::TcamDynamic6T);
    let a_tcam = area.cam_device_area(&tcam).to_square_millimeters();
    let p_tcam = power.cam_search_power(&tcam, Megahertz::new(143.0));

    // Design D: 2 horizontal slices x 2^12 rows x 4096 bits. A search
    // activates both horizontal slices (one logical bucket). The 8-way
    // vertical re-slicing repartitions the same capacity for bandwidth.
    let caram = CaRamGeometry::new(2, 4096, 4096, CellKind::EmbeddedDram, 64);
    let a_caram = area.caram_device_area(&caram).to_square_millimeters();
    let e = power.caram_search_energy_parallel(&caram, 2);
    // AMALu of design D derates throughput, not per-search energy at fixed
    // search rate; we price one search per cycle at 200 MHz as the paper
    // does for its bandwidth-competitive configuration.
    let p_caram = e.total().at_rate(Megahertz::new(200.0));

    println!("{:<44} {:>12} {:>12}", "", "area (mm^2)", "power (mW)");
    rule(70);
    println!(
        "{:<44} {:>12.1} {:>12.1}",
        "6T dynamic TCAM @143 MHz",
        a_tcam.value(),
        p_tcam.value()
    );
    println!(
        "{:<44} {:>12.1} {:>12.1}",
        "CA-RAM design D (8 banks) @200 MHz",
        a_caram.value(),
        p_caram.value()
    );
    let area_red = 100.0 * (1.0 - a_caram.value() / a_tcam.value());
    let power_red = 100.0 * (1.0 - p_caram.value() / p_tcam.value());
    println!(
        "\nCA-RAM saves {area_red:.0}% area and {power_red:.0}% power (paper: 45% area, 70% power).\n"
    );

    // Bandwidth cross-check: the CA-RAM configuration must stay
    // bandwidth-competitive with the TCAM (Sec. 3.4 / 4.3).
    let caram_bw = CaRamTiming::dram_200mhz().search_bandwidth(8, 1.159);
    let tcam_bw = CamTiming::tcam_143mhz().search_bandwidth();
    println!(
        "bandwidth: CA-RAM (8 banks, AMALu 1.159) {:.0} Msearch/s vs TCAM {:.0} Msearch/s\n",
        caram_bw.value(),
        tcam_bw.value()
    );

    // ---- Trigram lookup ----------------------------------------------------
    println!("Trigram lookup (5,385,231 entries):");
    let cam = CamGeometry::new(5_385_231, 128, CellKind::BinaryCamStacked);
    let a_cam = area.cam_device_area(&cam).to_square_millimeters();
    // Design A: 4 vertical slices x 2^14 rows x 12288 bits; one slice row
    // activated per search (vertical arrangement).
    let caram = CaRamGeometry::new(4, 16_384, 12_288, CellKind::EmbeddedDram, 96);
    let a_caram_tri = area.caram_device_area(&caram).to_square_millimeters();
    println!("{:<44} {:>12}", "", "area (mm^2)");
    rule(58);
    println!(
        "{:<44} {:>12.0}",
        "stacked-capacitor CAM (scaled to 130 nm)",
        a_cam.value()
    );
    println!(
        "{:<44} {:>12.0}",
        "CA-RAM design A (alpha = 0.86)",
        a_caram_tri.value()
    );
    println!(
        "\nCA-RAM area reduction: {:.1}x (paper: 5.9x).",
        a_cam.value() / a_caram_tri.value()
    );
    println!("(No power comparison, as in the paper: the 1992 CAM lacks modern power reduction.)");
}
