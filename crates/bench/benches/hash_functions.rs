//! Criterion bench: index-generator throughput (bit selection is nearly
//! free; DJB walks the key bytes — Sec. 3.1's "very little additional logic
//! or delay" claim, in simulator terms).

use ca_ram_core::index::{BitSelect, DjbHash, IndexGenerator, RangeSelect, XorFold};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_generators(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let keys: Vec<u128> = (0..1024).map(|_| rng.gen::<u128>()).collect();
    let generators: Vec<(&str, Box<dyn IndexGenerator>)> = vec![
        (
            "range_select_11",
            Box::new(RangeSelect::ip_first16_last(11)),
        ),
        (
            "bit_select_11",
            Box::new(BitSelect::new((16..27).collect())),
        ),
        ("xor_fold_14", Box::new(XorFold::new(14))),
        ("djb_hash_16B", Box::new(DjbHash::new(32, 16))),
    ];
    for (name, g) in &generators {
        let mut i = 0;
        c.bench_function(&format!("index_{name}"), |b| {
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(g.index(keys[i]))
            });
        });
    }
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
