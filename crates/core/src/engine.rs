//! The unified search-engine abstraction.
//!
//! The paper's evaluation (Secs. 4–5) runs one lookup workload against many
//! substrates — CA-RAM design points, CAM/TCAM baselines, and conventional
//! software indexes. [`SearchEngine`] is the common interface those
//! substrates implement so that benches, examples, and tests can drive any
//! backend through one code path.
//!
//! The trait is object-safe: the required surface is `search` / `insert` /
//! `delete` / `key_bits` / `occupancy`, and every backend inherits the
//! batched serial and sharded parallel pipelines as provided methods. The
//! parallel default accumulates per-shard [`SearchStats`] locally and folds
//! them through [`AtomicSearchStats`], so the merged totals are bit-equal to
//! what a serial pass over the same keys would record.
//!
//! Implementations for concrete backends live next to the backends:
//! [`crate::table::CaRamTable`] and the [`crate::subsystem::CaRamSubsystem`]
//! adapter here in `ca-ram-core`, the CAM baselines in `ca-ram-cam`, and the
//! software-index bridge in `ca-ram-softsearch`.

use crate::error::Result;
use crate::key::{SearchKey, TernaryKey};
use crate::layout::Record;
use crate::stats::{AtomicSearchStats, SearchStats};
use crate::table::effective_threads;

/// A matched record, in backend-neutral shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHit {
    /// The stored key that matched (exact value, or a ternary pattern for
    /// CAM-class and longest-prefix backends).
    pub key: TernaryKey,
    /// The associated data payload (e.g. a next-hop id).
    pub data: u64,
}

/// The result of one lookup through a [`SearchEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOutcome {
    /// The winning record, if any.
    pub hit: Option<EngineHit>,
    /// Backend-reported lookup cost in memory accesses: bucket fetches for
    /// CA-RAM, activated banks for a banked CAM, cache-hierarchy loads for a
    /// software index, 1 for a monolithic CAM search.
    pub memory_accesses: u32,
}

impl EngineOutcome {
    /// A miss with the given access cost.
    #[must_use]
    pub const fn miss(memory_accesses: u32) -> Self {
        Self {
            hit: None,
            memory_accesses,
        }
    }
}

/// An occupancy / cost report for an engine, in backend-neutral shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Records currently stored, when the backend can count them.
    pub records: Option<u64>,
    /// Total entry capacity, when the backend is fixed-size.
    pub capacity: Option<u64>,
}

impl EngineReport {
    /// Load factor α = records / capacity, when both are known and the
    /// capacity is non-zero.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn load_factor(&self) -> Option<f64> {
        match (self.records, self.capacity) {
            (Some(r), Some(c)) if c > 0 => Some(r as f64 / c as f64),
            _ => None,
        }
    }
}

/// A search substrate: anything that can be loaded with keyed records and
/// probed with search keys at a measurable memory-access cost.
///
/// The trait is object-safe — benches and tests drive backends through
/// `&dyn SearchEngine`. The `Sync` supertrait is what lets the provided
/// [`SearchEngine::search_batch_parallel_stats`] shard one `&self` across
/// scoped threads; `Send` is what lets a serving layer hand whole engines
/// to worker threads (every in-tree backend is plain owned data).
///
/// Backends with a faster concrete pipeline (e.g. `CaRamTable`'s
/// allocation-free scratch path) keep their inherent methods and override
/// the provided ones to delegate, so driving them through the trait costs
/// one virtual dispatch per call and nothing else.
pub trait SearchEngine: Send + Sync {
    /// A short human-readable backend name for reports.
    fn name(&self) -> &str;

    /// Width of the search keys this engine accepts, in bits.
    fn key_bits(&self) -> u32;

    /// Looks up one key.
    fn search(&self, key: &SearchKey) -> EngineOutcome;

    /// Stores a record.
    ///
    /// # Errors
    ///
    /// Backend-specific: capacity exhaustion, key-width mismatch, a ternary
    /// pattern offered to an exact-match device, or
    /// [`crate::error::CaRamError::Unsupported`] for statically built
    /// structures.
    fn insert(&mut self, record: Record) -> Result<()>;

    /// Stores a record, maintaining the backend's priority order under
    /// out-of-order arrival where the backend distinguishes sorted from
    /// append-style insertion.
    ///
    /// The default forwards to [`SearchEngine::insert`], which is already
    /// priority-maintaining for order-preserving devices (e.g. the sorted
    /// TCAM, whose plain insert shifts a region per priority class).
    /// `CaRamTable` overrides this with its eviction-cascading sorted
    /// placement so online LPM updates stay exact through the trait.
    ///
    /// # Errors
    ///
    /// As [`SearchEngine::insert`]; backends whose sorted path demands a
    /// particular configuration (e.g. linear probing) may also return
    /// [`crate::error::CaRamError::BadConfig`].
    fn insert_sorted(&mut self, record: Record) -> Result<()> {
        self.insert(record)
    }

    /// Removes every stored record whose key equals `key` (value, mask, and
    /// width), returning the number of stored copies removed — for backends
    /// that duplicate records (hash images, banks) this counts every copy,
    /// and it is zero if and only if no stored key was equal. Engines that
    /// cannot delete return 0.
    fn delete(&mut self, key: &TernaryKey) -> u32;

    /// Current occupancy.
    fn occupancy(&self) -> EngineReport;

    /// Makes every mutation accepted so far durable, for backends that
    /// buffer writes (group commit). The default is a no-op: purely
    /// in-memory engines are always "durable" to their own lifetime, so
    /// callers can commit unconditionally after a write batch.
    ///
    /// # Errors
    ///
    /// [`crate::error::CaRamError::Durability`] when a durable backend
    /// fails to persist the batch; the batch's effects on answers remain
    /// visible in memory, but their durability is not guaranteed.
    fn commit(&mut self) -> Result<()> {
        Ok(())
    }

    /// Looks up a batch of keys serially.
    ///
    /// Provided method; backends with an allocation-free inherent batch path
    /// should override it to delegate.
    fn search_batch(&self, keys: &[SearchKey]) -> Vec<EngineOutcome> {
        keys.iter().map(|k| self.search(k)).collect()
    }

    /// Looks up a batch of keys serially into a caller-owned buffer,
    /// clearing it first — the serving layer's hot path, where the buffer
    /// (and any backend probe scratch) is reused across drains so the
    /// steady state allocates nothing.
    ///
    /// Provided method; backends with reusable probe scratch should
    /// override it alongside [`SearchEngine::search_batch`].
    fn search_batch_into(&self, keys: &[SearchKey], out: &mut Vec<EngineOutcome>) {
        out.clear();
        out.extend(keys.iter().map(|k| self.search(k)));
    }

    /// Looks up a batch of keys across `threads` worker threads
    /// (0 = all available cores), discarding statistics.
    fn search_batch_parallel(&self, keys: &[SearchKey], threads: usize) -> Vec<EngineOutcome> {
        self.search_batch_parallel_stats(keys, threads).0
    }

    /// Looks up a batch of keys across `threads` worker threads
    /// (0 = all available cores) and returns the outcomes in input order
    /// plus aggregated search statistics.
    ///
    /// The statistics are *shard-exact*: each worker accumulates a local
    /// [`SearchStats`] and folds it into one [`AtomicSearchStats`], so the
    /// totals equal what a serial pass over `keys` would record.
    fn search_batch_parallel_stats(
        &self,
        keys: &[SearchKey],
        threads: usize,
    ) -> (Vec<EngineOutcome>, SearchStats) {
        let threads = effective_threads(threads, keys.len());
        if threads <= 1 {
            let outcomes = self.search_batch(keys);
            let mut stats = SearchStats::new();
            for o in &outcomes {
                stats.record(o.hit.is_some(), o.memory_accesses);
            }
            return (outcomes, stats);
        }

        let mut outcomes = vec![EngineOutcome::miss(0); keys.len()];
        let chunk = keys.len().div_ceil(threads);
        let shared = AtomicSearchStats::new();
        std::thread::scope(|scope| {
            for (key_chunk, out_chunk) in keys.chunks(chunk).zip(outcomes.chunks_mut(chunk)) {
                let shared = &shared;
                scope.spawn(move || {
                    let mut shard = SearchStats::new();
                    for (key, out) in key_chunk.iter().zip(out_chunk.iter_mut()) {
                        let o = self.search(key);
                        shard.record(o.hit.is_some(), o.memory_accesses);
                        *out = o;
                    }
                    shared.merge(&shard);
                });
            }
        });
        (outcomes, shared.snapshot())
    }
}

pub mod conformance;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_load_factor() {
        let r = EngineReport {
            records: Some(3),
            capacity: Some(4),
        };
        assert!((r.load_factor().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(EngineReport::default().load_factor(), None);
        let zero_cap = EngineReport {
            records: Some(0),
            capacity: Some(0),
        };
        assert_eq!(zero_cap.load_factor(), None);
    }

    #[test]
    fn miss_constructor() {
        let m = EngineOutcome::miss(7);
        assert!(m.hit.is_none());
        assert_eq!(m.memory_accesses, 7);
    }
}
