//! Cross-crate integration: CA-RAM, flat TCAM, sorted TCAM, and banked TCAM
//! must implement the *same* longest-prefix-match function over the same
//! routing table (Sec. 4.1 correctness).

use ca_ram::cam::{BankedTcam, SortedTcam, Tcam, TcamEntry};
use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::SearchKey;
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram::workloads::bgp::{generate, BgpConfig};
use ca_ram::workloads::prefix::Ipv4Prefix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Reference LPM: brute force over the prefix list.
fn reference_lpm(routes: &[Ipv4Prefix], addr: u32) -> Option<u8> {
    routes
        .iter()
        .filter(|p| p.contains(addr))
        .map(Ipv4Prefix::len)
        .max()
}

fn build_caram(routes: &[Ipv4Prefix], arrangement: Arrangement, rows_log2: u32) -> CaRamTable {
    let layout = RecordLayout::new(32, true, 8);
    let (_, vertical) = match arrangement {
        Arrangement::Horizontal(k) => (k, 1),
        Arrangement::Vertical(k) => (1, k),
        Arrangement::Grid {
            horizontal,
            vertical,
        } => (horizontal, vertical),
    };
    let index_bits = rows_log2 + vertical.next_power_of_two().trailing_zeros();
    let config = TableConfig {
        rows_log2,
        row_bits: 32 * layout.slot_bits(),
        layout,
        arrangement,
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe {
            max_steps: 1 << rows_log2,
        },
    };
    let mut t = CaRamTable::new(config, Box::new(RangeSelect::ip_first16_last(index_bits)))
        .expect("valid config");
    for r in routes {
        t.insert(Record::new(r.to_ternary_key(), u64::from(r.len())))
            .expect("table sized for the routes");
    }
    t
}

#[test]
fn four_engines_agree_on_lpm() {
    let routes = generate(&BgpConfig::scaled(5_000));
    // Routes are sorted longest-first: the shared priority discipline.
    let caram = build_caram(&routes, Arrangement::Horizontal(2), 8);

    let mut tcam = Tcam::new(routes.len(), 32);
    let mut sorted = SortedTcam::new(routes.len(), 32);
    let mut banked = BankedTcam::new(Box::new(RangeSelect::new(28, 2)), routes.len(), 32);
    // Feed the sorted TCAM in a scrambled order — it must sort internally.
    let mut scrambled = routes.clone();
    let mut rng = SmallRng::seed_from_u64(17);
    for i in (1..scrambled.len()).rev() {
        let j = rng.gen_range(0..=i);
        scrambled.swap(i, j);
    }
    for (i, r) in routes.iter().enumerate() {
        tcam.write(
            i,
            TcamEntry {
                key: r.to_ternary_key(),
                data: u64::from(r.len()),
            },
        );
        banked
            .insert(r.to_ternary_key(), u64::from(r.len()))
            .expect("capacity");
    }
    for r in &scrambled {
        sorted
            .insert(r.to_ternary_key(), u64::from(r.len()))
            .expect("capacity");
    }
    assert!(sorted.invariant_holds());

    let mut checked_hits = 0u32;
    for trial in 0..3_000u32 {
        // Mix of random addresses and members of random routes.
        let addr = if trial % 2 == 0 {
            rng.gen::<u32>()
        } else {
            routes[rng.gen_range(0..routes.len())].random_member(&mut rng)
        };
        let expect = reference_lpm(&routes, addr).map(u64::from);
        let key = SearchKey::new(u128::from(addr), 32);
        let got_caram = caram.search(&key).hit.map(|h| h.record.data);
        let got_tcam = tcam.search(&key).map(|m| m.entry.data);
        let got_sorted = sorted.search(&key).map(|m| m.entry.data);
        let got_banked = banked.search(&key).hit.map(|m| m.entry.data);
        assert_eq!(got_caram, expect, "CA-RAM vs reference on {addr:#010x}");
        assert_eq!(got_tcam, expect, "TCAM vs reference on {addr:#010x}");
        assert_eq!(
            got_sorted, expect,
            "sorted TCAM vs reference on {addr:#010x}"
        );
        assert_eq!(
            got_banked, expect,
            "banked TCAM vs reference on {addr:#010x}"
        );
        checked_hits += u32::from(expect.is_some());
    }
    assert!(
        checked_hits > 1_000,
        "the workload must actually exercise hits"
    );
}

#[test]
fn vertical_and_grid_arrangements_agree_with_horizontal() {
    let routes = generate(&BgpConfig::scaled(3_000));
    let h = build_caram(&routes, Arrangement::Horizontal(4), 8);
    let v = build_caram(&routes, Arrangement::Vertical(4), 8);
    let g = build_caram(
        &routes,
        Arrangement::Grid {
            horizontal: 2,
            vertical: 2,
        },
        8,
    );
    let mut rng = SmallRng::seed_from_u64(23);
    for _ in 0..2_000 {
        let addr = routes[rng.gen_range(0..routes.len())].random_member(&mut rng);
        let key = SearchKey::new(u128::from(addr), 32);
        let a = h.search(&key).hit.map(|x| x.record.data);
        let b = v.search(&key).hit.map(|x| x.record.data);
        let c = g.search(&key).hit.map(|x| x.record.data);
        assert_eq!(a, b, "horizontal vs vertical on {addr:#010x}");
        assert_eq!(a, c, "horizontal vs grid on {addr:#010x}");
    }
}

#[test]
fn ipv6_lpm_equivalence_with_tcam() {
    // The Sec. 4.1 IPv6 concern: 128-bit ternary keys, 4x the storage.
    use ca_ram::workloads::ipv6::{generate as gen6, Ipv6Config, Ipv6Prefix};
    let routes = gen6(&Ipv6Config {
        prefixes: 3_000,
        allocations: 400,
        seed: 3,
    });
    let layout = RecordLayout::new(128, true, 0);
    let config = TableConfig {
        rows_log2: 7,
        // 64 keys per row: short prefixes whose hash bits are all masked
        // replicate into every bucket, so leave real headroom over the
        // 3 000 routes regardless of the RNG's length/allocation draws.
        row_bits: 64 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(2),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 128 },
    };
    // Hash: last 7 bits of the first 32 address bits (bits 96..103).
    let mut caram =
        CaRamTable::new(config, Box::new(RangeSelect::new(96, 7))).expect("valid config");
    let mut tcam = Tcam::new(routes.len(), 128);
    for (i, r) in routes.iter().enumerate() {
        caram
            .insert(Record::new(r.to_ternary_key(), 0))
            .expect("sized for the routes");
        tcam.write(
            i,
            TcamEntry {
                key: r.to_ternary_key(),
                data: 0,
            },
        );
    }
    let mut rng = SmallRng::seed_from_u64(6);
    let mut hits = 0u32;
    for _ in 0..2_000 {
        let addr = if rng.gen_bool(0.7) {
            routes[rng.gen_range(0..routes.len())].random_member(&mut rng)
        } else {
            rng.gen::<u128>()
        };
        let key = SearchKey::new(addr, 128);
        let a = caram.search(&key).hit.map(|h| h.record.key.care_count());
        let b = tcam.search(&key).map(|m| m.entry.key.care_count());
        assert_eq!(a, b, "addr {addr:#034x}");
        // Cross-check against brute force.
        let brute = routes
            .iter()
            .filter(|p| p.contains(addr))
            .map(Ipv6Prefix::len)
            .max()
            .map(u32::from);
        assert_eq!(a, brute, "addr {addr:#034x}");
        hits += u32::from(a.is_some());
    }
    assert!(hits > 1_000);
}

#[test]
fn deletions_preserve_lpm_equivalence() {
    let routes = generate(&BgpConfig::scaled(2_000));
    let mut caram = build_caram(&routes, Arrangement::Horizontal(2), 8);
    let mut sorted = SortedTcam::new(routes.len(), 32);
    for r in &routes {
        sorted
            .insert(r.to_ternary_key(), u64::from(r.len()))
            .expect("capacity");
    }
    // Delete a third of the routes from both engines.
    let mut rng = SmallRng::seed_from_u64(31);
    let mut live = routes.clone();
    for _ in 0..routes.len() / 3 {
        let i = rng.gen_range(0..live.len());
        let r = live.swap_remove(i);
        assert!(caram.delete(&r.to_ternary_key()) >= 1, "{r}");
        assert!(sorted.delete(&r.to_ternary_key()).is_some(), "{r}");
    }
    for _ in 0..2_000 {
        let addr = rng.gen::<u32>();
        let expect = reference_lpm(&live, addr).map(u64::from);
        let key = SearchKey::new(u128::from(addr), 32);
        assert_eq!(caram.search(&key).hit.map(|h| h.record.data), expect);
        assert_eq!(sorted.search(&key).map(|m| m.entry.data), expect);
    }
}
