//! The lock-free shard mailbox: a bounded MPSC ring plus the worker
//! park/unpark protocol.
//!
//! This is the substrate under the serving hot path. Producers (client
//! threads) publish ring entries with one CAS on the tail plus one release
//! store of the slot sequence; the single consumer (the shard worker) pops
//! with plain loads and stores — no lock is ever taken on either side. The
//! worker parks only on the empty↔non-empty edge: it spins a short budget,
//! advertises `PARKED`, re-checks the ring (the Dekker handshake below),
//! and only then blocks in [`std::thread::park`]. Producers observe the
//! advertisement *after* publishing their entry and issue exactly one
//! [`std::thread::Thread::unpark`] per sleep, so steady-state traffic pays
//! zero syscalls.
//!
//! The ring is a Vyukov bounded queue: each slot carries a sequence number
//! that encodes, relative to the head/tail counters, whether the slot is
//! free, full, or in transit. Producers race on `tail` with CAS; the
//! consumer owns `head` outright and needs no atomic RMW at all.
//!
//! ## Memory-ordering argument (lost-wakeup freedom)
//!
//! A producer publishes its entry (release store of the slot sequence),
//! then runs a `SeqCst` fence, then reads the parker state. The worker
//! stores `PARKED` with `SeqCst`, runs a `SeqCst` fence, then re-checks
//! the ring for entries. In the total order of `SeqCst` operations either
//! the producer's fence precedes the worker's — then the worker's re-check
//! observes the published entry and the worker does not sleep — or the
//! worker's fence precedes the producer's — then the producer observes
//! `PARKED` and unparks. Either way the entry is consumed without an
//! unbounded sleep.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::thread::Thread;

/// One ring slot: a sequence number gating a possibly-initialized value.
struct RingSlot<T> {
    /// `seq == pos`: free for the producer claiming `pos`;
    /// `seq == pos + 1`: full, readable by the consumer at `pos`;
    /// anything else: claimed by a lapped position.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer single-consumer ring (Vyukov queue).
///
/// `push` may be called from any number of threads; `pop` must only ever
/// be called from one thread at a time, and that thread must be the shard
/// worker while it lives (the shutdown path becomes the consumer only
/// after joining it — the join is the synchronization edge).
pub(crate) struct Ring<T> {
    buf: Box<[RingSlot<T>]>,
    mask: usize,
    /// Producer cursor (next position to claim).
    tail: AtomicUsize,
    /// Consumer cursor (next position to read). Only the consumer writes.
    head: AtomicUsize,
}

// SAFETY: the slots hand values across threads exactly once each, gated by
// the per-slot sequence protocol (release on publish, acquire on read).
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// A ring with room for at least `capacity` entries (rounded up to a
    /// power of two).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let buf: Box<[RingSlot<T>]> = (0..capacity)
            .map(|i| RingSlot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            mask: capacity - 1,
            buf,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Publishes `value`; fails (returning it) only when the ring is full.
    ///
    /// Admission control bounds occupancy below the ring capacity, so in
    /// the service a failed push indicates an accounting bug, not load.
    #[allow(clippy::cast_possible_wrap)] // lap arithmetic is mod 2^64 by design
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive claim
                        // of `pos`; the slot is free (seq == pos).
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if (seq.wrapping_sub(pos) as isize) < 0 {
                // The slot still holds an entry from one lap ago: full.
                return Err(value);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Removes the oldest entry. Single-consumer only.
    pub(crate) fn pop(&self) -> Option<T> {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.buf[pos & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos.wrapping_add(1) {
            // SAFETY: seq == pos + 1 means a producer finished writing this
            // slot and no other consumer exists; take the value out.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.seq
                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
            self.head.store(pos.wrapping_add(1), Ordering::Relaxed);
            Some(value)
        } else {
            None
        }
    }

    /// True when a `pop` right now would return `None`.
    pub(crate) fn is_empty(&self) -> bool {
        let pos = self.head.load(Ordering::Relaxed);
        self.buf[pos & self.mask].seq.load(Ordering::Acquire) != pos.wrapping_add(1)
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Worker sleep state for [`Parker`].
const RUNNING: u32 = 0;
const PARKED: u32 = 1;

/// The park/unpark half of the shard mailbox: tracks whether the worker is
/// asleep so producers syscall only on the empty→non-empty edge.
pub(crate) struct Parker {
    state: AtomicU32,
    /// The worker thread handle, registered once from the worker itself.
    worker: std::sync::OnceLock<Thread>,
    /// Set once at shutdown; checked by the worker before sleeping.
    closed: AtomicBool,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Self {
            state: AtomicU32::new(RUNNING),
            worker: std::sync::OnceLock::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Registers the calling thread as the worker. Must run before the
    /// first `sleep`.
    pub(crate) fn register_worker(&self) {
        let _ = self.worker.set(std::thread::current());
    }

    /// True once `close` ran.
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Marks the mailbox closed and wakes the worker if it sleeps.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.wake();
    }

    /// Producer half of the handshake: after publishing work (and a
    /// `SeqCst` fence), wake the worker iff it advertised `PARKED`.
    /// Returns true if an unpark syscall was issued (the unpark counter).
    pub(crate) fn wake(&self) -> bool {
        fence(Ordering::SeqCst);
        if self.state.load(Ordering::SeqCst) == PARKED
            && self
                .state
                .compare_exchange(PARKED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            if let Some(worker) = self.worker.get() {
                worker.unpark();
            }
            return true;
        }
        false
    }

    /// Worker half: advertise `PARKED`, re-check for work via `has_work`,
    /// and block only when the re-check comes back empty. Returns true if
    /// the worker actually blocked (the park counter).
    pub(crate) fn sleep(&self, has_work: impl Fn() -> bool) -> bool {
        self.state.store(PARKED, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if has_work() || self.is_closed() {
            self.state.store(RUNNING, Ordering::SeqCst);
            return false;
        }
        std::thread::park();
        // Wakers flip the state before unparking; a spurious park return
        // leaves it PARKED, which the next sleep overwrites harmlessly.
        self.state.store(RUNNING, Ordering::SeqCst);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn ring_round_trips_in_fifo_order() {
        let ring: Ring<u32> = Ring::new(4);
        assert!(ring.is_empty());
        assert!(ring.pop().is_none());
        for i in 0..4 {
            ring.push(i).expect("has room");
        }
        assert!(ring.push(99).is_err(), "full ring refuses");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.is_empty());
        // Wraparound: the slots are reusable after a full lap.
        for lap in 0..3 {
            for i in 0..4 {
                ring.push(lap * 10 + i).expect("freed");
            }
            for i in 0..4 {
                assert_eq!(ring.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn ring_capacity_rounds_up_to_a_power_of_two() {
        let ring: Ring<u8> = Ring::new(5);
        for i in 0..8 {
            ring.push(i).expect("rounded capacity is 8");
        }
        assert!(ring.push(8).is_err());
    }

    #[test]
    fn concurrent_producers_conserve_every_entry() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ring: Arc<Ring<u64>> = Arc::new(Ring::new(64));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match ring.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let ring = Arc::clone(&ring);
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            scope.spawn(move || {
                let total = PRODUCERS * PER_PRODUCER;
                let mut seen = 0u64;
                while seen < total {
                    if let Some(v) = ring.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        seen += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                count.store(seen, Ordering::Relaxed);
            });
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn parker_handshake_never_loses_the_wakeup() {
        // Producer publishes then wakes; worker advertises then re-checks.
        // Hammer the edge: the worker must always observe the flag.
        let parker = Arc::new(Parker::new());
        let flag = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let parker = Arc::clone(&parker);
                let flag = Arc::clone(&flag);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    parker.register_worker();
                    for round in 1..=1_000u64 {
                        while flag.load(Ordering::SeqCst) < round {
                            let flag = &flag;
                            parker.sleep(|| flag.load(Ordering::SeqCst) >= round);
                        }
                        done.store(round, Ordering::SeqCst);
                    }
                });
            }
            let parker = Arc::clone(&parker);
            let flag = Arc::clone(&flag);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for round in 1..=1_000u64 {
                    flag.store(round, Ordering::SeqCst);
                    parker.wake();
                    while done.load(Ordering::SeqCst) < round {
                        parker.wake(); // belt and braces under 1-core scheduling
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(done.load(Ordering::SeqCst), 1_000);
    }
}
