//! One engine shard: a bounded request queue, its worker loop, the batching
//! coalescer, and the degradation ladder.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Instant;

use ca_ram_core::engine::{EngineReport, SearchEngine};
use ca_ram_core::key::SearchKey;
use ca_ram_core::telemetry::{HistogramSink, TelemetrySink};

use crate::config::ServiceConfig;
use crate::request::{
    AdmissionError, PendingRequest, ServiceOp, ServiceReply, ShedReason, Slot, Ticket,
};

/// Lock-free per-shard counters; read by snapshots while the worker runs.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Requests refused at admission (queue full).
    pub rejected: AtomicU64,
    /// Requests shed because their deadline expired while queued.
    pub shed_deadline: AtomicU64,
    /// Requests shed because the service shut down with them queued.
    pub shed_shutdown: AtomicU64,
    /// Searches answered by a coalesced duplicate's engine probe.
    pub coalesced: AtomicU64,
    /// Completions whose deep telemetry was shed (ladder rung 1).
    pub telemetry_shed: AtomicU64,
    /// Worker drain cycles.
    pub batches: AtomicU64,
    /// Largest single drain observed.
    pub max_batch: AtomicU64,
    /// Engine search calls issued (post-coalescing, pre-dedup counts once).
    pub searches: AtomicU64,
    /// Engine `insert`/`insert_sorted` calls issued.
    pub inserts: AtomicU64,
    /// Engine delete calls issued.
    pub deletes: AtomicU64,
}

impl ShardStats {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct ShardQueue {
    items: VecDeque<PendingRequest>,
    closed: bool,
}

/// Limits copied out of [`ServiceConfig`] so the worker never re-derives
/// thresholds per drain.
#[derive(Debug, Clone, Copy)]
struct ShardLimits {
    queue_depth: usize,
    batch_max: usize,
    batch_threads: usize,
    telemetry_shed_threshold: usize,
    coalesce_threshold: usize,
}

/// One shard: a bounded MPSC queue in front of an exclusively owned engine.
///
/// Submitters are the many producers; exactly one worker thread drains the
/// queue, so per-shard operation order is the admission order — a
/// search submitted after an insert to the same shard observes it.
pub(crate) struct Shard {
    index: usize,
    queue: Mutex<ShardQueue>,
    /// Signals the worker that the queue has work (or closed).
    not_empty: Condvar,
    /// Signals blocking submitters that space freed up.
    not_full: Condvar,
    engine: RwLock<Box<dyn SearchEngine>>,
    limits: ShardLimits,
    pub(crate) stats: ShardStats,
    /// Queue-depth (per drain) and queue-wait (per request, microseconds)
    /// histograms; the wait histogram is rung 1 of the degradation ladder.
    pub(crate) sink: HistogramSink,
}

impl Shard {
    pub(crate) fn new(index: usize, engine: Box<dyn SearchEngine>, config: &ServiceConfig) -> Self {
        Self {
            index,
            queue: Mutex::new(ShardQueue {
                items: VecDeque::with_capacity(config.queue_depth.min(4096)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            engine: RwLock::new(engine),
            limits: ShardLimits {
                queue_depth: config.queue_depth,
                batch_max: config.batch_max,
                batch_threads: config.batch_threads,
                telemetry_shed_threshold: config.telemetry_shed_threshold(),
                coalesce_threshold: config.coalesce_threshold(),
            },
            stats: ShardStats::default(),
            sink: HistogramSink::new(),
        }
    }

    /// Admission control: enqueue or refuse, never block.
    pub(crate) fn try_submit(
        &self,
        op: ServiceOp,
        deadline: Option<Instant>,
    ) -> Result<Ticket, AdmissionError> {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        if queue.closed {
            return Err(AdmissionError::ShuttingDown);
        }
        if queue.items.len() >= self.limits.queue_depth {
            ShardStats::bump(&self.stats.rejected, 1);
            return Err(AdmissionError::QueueFull {
                shard: self.index,
                depth: self.limits.queue_depth,
            });
        }
        Ok(self.enqueue(&mut queue, op, deadline))
    }

    /// Backpressure: wait for queue space instead of refusing.
    pub(crate) fn submit_blocking(
        &self,
        op: ServiceOp,
        deadline: Option<Instant>,
    ) -> Result<Ticket, AdmissionError> {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        while !queue.closed && queue.items.len() >= self.limits.queue_depth {
            queue = self.not_full.wait(queue).expect("shard queue poisoned");
        }
        if queue.closed {
            return Err(AdmissionError::ShuttingDown);
        }
        Ok(self.enqueue(&mut queue, op, deadline))
    }

    fn enqueue(&self, queue: &mut ShardQueue, op: ServiceOp, deadline: Option<Instant>) -> Ticket {
        let slot = Slot::new();
        queue.items.push_back(PendingRequest {
            op,
            enqueued: Instant::now(),
            deadline,
            slot: std::sync::Arc::clone(&slot),
        });
        ShardStats::bump(&self.stats.accepted, 1);
        self.not_empty.notify_one();
        Ticket::new(slot)
    }

    /// Marks the shard closed and wakes everyone; the worker drains what is
    /// already queued, then exits.
    pub(crate) fn close(&self) {
        // Runs from Drop: recover the lock even if a worker panicked.
        let mut queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        queue.closed = true;
        drop(queue);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Completes any requests still queued after the worker exited (only
    /// possible if the worker died); they are shed, never half-served.
    pub(crate) fn drain_after_join(&self) {
        let mut queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let leftovers: Vec<PendingRequest> = queue.items.drain(..).collect();
        drop(queue);
        let now = Instant::now();
        for request in leftovers {
            ShardStats::bump(&self.stats.shed_shutdown, 1);
            request.complete(ServiceReply::Shed(ShedReason::Shutdown), now, false);
        }
    }

    pub(crate) fn occupancy(&self) -> EngineReport {
        self.engine
            .read()
            .expect("shard engine poisoned")
            .occupancy()
    }

    /// The worker loop: drain up to `batch_max` requests, serve them, repeat
    /// until closed *and* empty — shutdown is graceful, queued work finishes.
    pub(crate) fn worker_loop(&self) {
        let mut batch: Vec<PendingRequest> = Vec::with_capacity(self.limits.batch_max);
        loop {
            let depth_at_drain;
            {
                let mut queue = self.queue.lock().expect("shard queue poisoned");
                while queue.items.is_empty() && !queue.closed {
                    queue = self.not_empty.wait(queue).expect("shard queue poisoned");
                }
                if queue.items.is_empty() {
                    return; // closed and drained
                }
                depth_at_drain = queue.items.len();
                let take = depth_at_drain.min(self.limits.batch_max);
                batch.extend(queue.items.drain(..take));
                drop(queue);
                self.not_full.notify_all();
            }
            self.sink.queue_depth(depth_at_drain as u64);
            ShardStats::bump(&self.stats.batches, 1);
            self.stats
                .max_batch
                .fetch_max(batch.len() as u64, Ordering::Relaxed);
            self.process(&mut batch, depth_at_drain);
        }
    }

    /// Serves one drained batch in admission order: consecutive searches are
    /// grouped into one (possibly coalesced, possibly parallel) engine batch
    /// call; writes are applied one at a time under the exclusive lock.
    fn process(&self, batch: &mut Vec<PendingRequest>, depth_at_drain: usize) {
        let deep_telemetry = depth_at_drain < self.limits.telemetry_shed_threshold;
        let coalesce = depth_at_drain >= self.limits.coalesce_threshold;
        let picked_up = Instant::now();

        let mut run: Vec<PendingRequest> = Vec::new();
        for request in batch.drain(..) {
            if request.op.is_write() {
                if !run.is_empty() {
                    self.serve_search_run(&mut run, picked_up, deep_telemetry, coalesce);
                }
                self.serve_write(request, picked_up, deep_telemetry);
            } else {
                run.push(request);
            }
        }
        if !run.is_empty() {
            self.serve_search_run(&mut run, picked_up, deep_telemetry, coalesce);
        }
    }

    /// One consecutive run of searches: shed expired deadlines, optionally
    /// dedup identical keys, and answer the rest through one batch call.
    fn serve_search_run(
        &self,
        run: &mut Vec<PendingRequest>,
        picked_up: Instant,
        deep_telemetry: bool,
        coalesce: bool,
    ) {
        let mut live: Vec<PendingRequest> = Vec::with_capacity(run.len());
        for request in run.drain(..) {
            if request.deadline.is_some_and(|d| d <= picked_up) {
                ShardStats::bump(&self.stats.shed_deadline, 1);
                request.complete(
                    ServiceReply::Shed(ShedReason::DeadlineExpired),
                    picked_up,
                    false,
                );
            } else {
                live.push(request);
            }
        }
        if live.is_empty() {
            return;
        }

        // Map each request onto a (possibly shared) probe key.
        let mut keys: Vec<SearchKey> = Vec::with_capacity(live.len());
        let mut key_of: Vec<usize> = Vec::with_capacity(live.len());
        if coalesce {
            let mut seen: HashMap<SearchKey, usize> = HashMap::with_capacity(live.len());
            for request in &live {
                let ServiceOp::Search(key) = request.op else {
                    unreachable!("search run contains only searches");
                };
                let slot = *seen.entry(key).or_insert_with(|| {
                    keys.push(key);
                    keys.len() - 1
                });
                key_of.push(slot);
            }
            ShardStats::bump(&self.stats.coalesced, (live.len() - keys.len()) as u64);
        } else {
            for request in &live {
                let ServiceOp::Search(key) = request.op else {
                    unreachable!("search run contains only searches");
                };
                keys.push(key);
                key_of.push(keys.len() - 1);
            }
        }
        ShardStats::bump(&self.stats.searches, keys.len() as u64);

        let engine = self.engine.read().expect("shard engine poisoned");
        let outcomes = if keys.len() == 1 || self.limits.batch_threads == 1 {
            engine.search_batch(&keys)
        } else {
            engine.search_batch_parallel(&keys, self.limits.batch_threads)
        };
        drop(engine);

        let shared = live.len() > keys.len();
        for (request, &slot) in live.drain(..).zip(key_of.iter()) {
            self.finish(
                request,
                ServiceReply::Search(outcomes[slot]),
                picked_up,
                shared,
                deep_telemetry,
            );
        }
    }

    /// One write, applied in admission order under the exclusive lock.
    fn serve_write(&self, request: PendingRequest, picked_up: Instant, deep_telemetry: bool) {
        if request.deadline.is_some_and(|d| d <= picked_up) {
            ShardStats::bump(&self.stats.shed_deadline, 1);
            request.complete(
                ServiceReply::Shed(ShedReason::DeadlineExpired),
                picked_up,
                false,
            );
            return;
        }
        let mut engine = self.engine.write().expect("shard engine poisoned");
        let reply = match request.op {
            ServiceOp::Insert(record) => {
                ShardStats::bump(&self.stats.inserts, 1);
                ServiceReply::Insert(engine.insert(record))
            }
            ServiceOp::InsertSorted(record) => {
                ShardStats::bump(&self.stats.inserts, 1);
                ServiceReply::Insert(engine.insert_sorted(record))
            }
            ServiceOp::Delete(key) => {
                ShardStats::bump(&self.stats.deletes, 1);
                ServiceReply::Delete(engine.delete(&key))
            }
            ServiceOp::Search(_) => unreachable!("writes only"),
        };
        drop(engine);
        self.finish(request, reply, picked_up, false, deep_telemetry);
    }

    /// Completes a served request, recording or shedding its deep telemetry
    /// (ladder rung 1).
    fn finish(
        &self,
        request: PendingRequest,
        reply: ServiceReply,
        picked_up: Instant,
        coalesced: bool,
        deep_telemetry: bool,
    ) {
        if deep_telemetry {
            let wait_us = picked_up
                .saturating_duration_since(request.enqueued)
                .as_micros()
                .min(u128::from(u64::MAX));
            #[allow(clippy::cast_possible_truncation)]
            self.sink.queue_wait(wait_us as u64);
        } else {
            ShardStats::bump(&self.stats.telemetry_shed, 1);
        }
        request.complete(reply, picked_up, coalesced);
    }
}
