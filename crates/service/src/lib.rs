//! # ca-ram-service
//!
//! A sharded, multi-threaded serving layer that turns any
//! [`SearchEngine`](ca_ram_core::engine::SearchEngine) fleet into a
//! request-serving frontend — the software analogue of the paper's
//! subsystem input controller (Sec. 3.2, Fig. 5), whose request/result
//! queues `ca_ram_core::controller` models cycle by cycle.
//!
//! ## Architecture
//!
//! * [`config`] — [`ServiceConfig`]: shard count, bounded queue depth,
//!   batching limits, deadlines, and the degradation-ladder thresholds,
//!   plus the mapping onto a
//!   [`QueueModelConfig`](ca_ram_core::controller::QueueModelConfig) so
//!   measured latencies can be compared against the cycle model;
//! * [`request`] — the request/reply vocabulary: [`ServiceOp`],
//!   [`ServiceReply`], atomic completion slots behind [`Ticket`] /
//!   [`BatchTicket`], and admission errors;
//! * `ring` (internal) — the bounded lock-free MPSC ring and the
//!   spin-then-park worker parker each shard queues through;
//! * [`service`] — [`SearchService`]: the shard router (hash on the key
//!   value), per-shard worker threads behind lock-free rings, single-pass
//!   batch submission ([`SearchService::try_submit_batch`]), admission
//!   control, and telemetry export;
//! * [`engine`] — [`ServiceEngine`]: the whole service re-packaged as a
//!   `SearchEngine`, so conformance suites and the differential fuzzer can
//!   drive the full concurrent path through the ordinary trait surface;
//! * [`client`] — [`ServiceClient`]: open-loop (paced arrivals, load
//!   shedding visible) and closed-loop (fixed concurrency, capacity
//!   visible) load generators;
//! * [`trace`] — observability v2: per-request lifecycle tracing
//!   (head-sampled [`RequestTrace`](ca_ram_core::telemetry::RequestTrace)s
//!   with tail retention), the lock-free per-shard [`FlightEvent`] ring
//!   dumped as `ca-ram-flight/v1` JSON on anomaly, ladder-transition
//!   tracking, and the SLO watchdog
//!   ([`SearchService::slo_tick`](service::SearchService::slo_tick)).
//!
//! ## The degradation ladder
//!
//! Overload is handled in stages, mirroring the controller model's stall
//! semantics at the software level:
//!
//! 1. **Shed deep telemetry** — past a queue-depth threshold the per-request
//!    wait histograms stop being recorded (counted, not silently dropped);
//! 2. **Coalesce duplicate in-flight keys** — deeper still, identical search
//!    keys drained in one batch share a single engine probe;
//! 3. **Reject** — a full queue turns away new arrivals at admission
//!    ([`request::AdmissionError::QueueFull`]), bounding queueing delay.
//!
//! Per-request deadlines cut the tail from the other side: a request whose
//! deadline passed while queued is completed as
//! [`ServiceReply::Shed`](request::ServiceReply) without ever touching an
//! engine — it can never return a partial or stale result.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod client;
pub mod config;
pub mod engine;
pub mod request;
mod ring;
pub mod service;
mod shard;
pub mod trace;

pub use client::{ClosedLoopReport, LatencySummary, OpenLoopReport, ServiceClient};
pub use config::ServiceConfig;
pub use engine::ServiceEngine;
pub use request::{
    AdmissionError, BatchCompletion, BatchTicket, Completion, ServiceOp, ServiceReply, ShedReason,
    Ticket,
};
pub use service::{route_shard, SearchService, ServiceSnapshot, ShardSnapshot, FLIGHT_SCHEMA};
pub use trace::{FlightEvent, FlightEventKind, LadderRung, LadderTransition};
