//! IPv6 prefixes and synthetic IPv6 routing tables (Sec. 4.1: "The size of
//! a routing table will even quadruple as we adopt IPv6").
//!
//! A 128-bit ternary key fits CA-RAM's key width exactly, but costs four
//! times the stored bits of an IPv4 prefix — the capacity pressure the
//! paper warns TCAMs about applies to CA-RAM too, at 4.8× less area per
//! symbol. The generator follows the global-unicast structure of early
//! IPv6 tables: allocations under `2000::/3`, lengths clustered at /32,
//! /40, /44, and /48 with a /64 tail.

use core::fmt;

use ca_ram_core::key::TernaryKey;
use ca_ram_core::pattern::{Pattern, PatternSpec};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The pattern spec IPv6 routing workloads compile through: one 128-bit
/// address field in longest-prefix-match mode.
///
/// # Panics
///
/// Never: the shape is statically well-formed.
#[must_use]
pub fn lpm_spec() -> PatternSpec {
    PatternSpec::lpm("ipv6-lpm", 128).expect("ipv6 LPM spec is well-formed")
}

/// An IPv6 prefix: a 128-bit address with all host bits zero and a length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv6Prefix {
    addr: u128,
    len: u8,
}

impl Ipv6Prefix {
    /// Creates a prefix; host bits of `addr` below `len` must be zero.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128` or a host bit is set.
    #[must_use]
    pub fn new(addr: u128, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} exceeds 128");
        assert!(
            addr & Self::host_mask(len) == 0,
            "address has host bits set below /{len}"
        );
        Self { addr, len }
    }

    /// Creates a prefix, zeroing any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    #[must_use]
    pub fn truncating(addr: u128, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} exceeds 128");
        Self {
            addr: addr & !Self::host_mask(len),
            len,
        }
    }

    fn host_mask(len: u8) -> u128 {
        if len == 0 {
            u128::MAX
        } else if len == 128 {
            0
        } else {
            (1u128 << (128 - len)) - 1
        }
    }

    /// The network address.
    #[must_use]
    pub fn addr(&self) -> u128 {
        self.addr
    }

    /// The prefix length.
    #[must_use]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the default route `::/0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    #[must_use]
    pub fn contains(&self, addr: u128) -> bool {
        addr & !Self::host_mask(self.len) == self.addr
    }

    /// This prefix as a compiler pattern for [`lpm_spec`]-shaped tables.
    #[must_use]
    pub fn to_pattern(&self) -> Pattern {
        Pattern::Prefix {
            value: self.addr,
            len: u32::from(self.len),
        }
    }

    /// The 128-symbol ternary stored key, routed through the pattern
    /// compiler ([`lpm_spec`]) — byte-identical to the hand-derived
    /// host-mask encoding.
    ///
    /// # Panics
    ///
    /// Never: a prefix pattern always lowers under its own spec.
    #[must_use]
    pub fn to_ternary_key(&self) -> TernaryKey {
        let keys = lpm_spec()
            .lower(&self.to_pattern())
            .expect("a prefix lowers under the LPM spec");
        debug_assert_eq!(keys.len(), 1);
        keys[0]
    }

    /// A uniformly random address covered by this prefix.
    #[must_use]
    pub fn random_member(&self, rng: &mut impl rand::Rng) -> u128 {
        self.addr | (rng.gen::<u128>() & Self::host_mask(self.len))
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Grouped hex without zero-run compression (diagnostic format).
        let a = self.addr;
        for i in 0..8 {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{:x}", (a >> (112 - 16 * i)) & 0xFFFF)?;
        }
        write!(f, "/{}", self.len)
    }
}

/// Length distribution of an early-adoption IPv6 table (fractions).
const LENGTH_WEIGHTS: [(u8, f64); 8] = [
    (32, 0.28),
    (35, 0.03),
    (40, 0.08),
    (44, 0.06),
    (48, 0.42),
    (56, 0.04),
    (64, 0.08),
    (20, 0.01),
];

/// Configuration of the synthetic IPv6 table generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ipv6Config {
    /// Unique prefixes to generate.
    pub prefixes: usize,
    /// Distinct /32 allocation blocks (registry allocations).
    pub allocations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Ipv6Config {
    fn default() -> Self {
        Self {
            prefixes: 46_690, // a quarter of the IPv4 table: same stored bits
            allocations: 4_000,
            seed: 0x6666,
        }
    }
}

/// Generates a synthetic IPv6 table sorted longest-prefix-first.
///
/// # Panics
///
/// Panics on a degenerate configuration.
#[must_use]
pub fn generate(config: &Ipv6Config) -> Vec<Ipv6Prefix> {
    assert!(config.prefixes > 0, "need at least one prefix");
    assert!(config.allocations > 0, "need at least one allocation");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    // Registry allocations: /32 blocks under 2000::/3.
    let allocations: Vec<u128> = (0..config.allocations)
        .map(|_| {
            // Top 3 bits fixed to 001 (global unicast); bits 96..125 are
            // the registry-assigned /32 block.
            let block = u128::from(rng.gen::<u32>() & 0x1FFF_FFFF);
            (0b001u128 << 125) | (block << 96)
        })
        .collect();
    let lengths: Vec<u8> = LENGTH_WEIGHTS.iter().map(|&(l, _)| l).collect();
    let picker =
        WeightedIndex::new(LENGTH_WEIGHTS.iter().map(|&(_, w)| w)).expect("weights are positive");
    let mut seen = std::collections::HashSet::with_capacity(config.prefixes * 2);
    let mut out = Vec::with_capacity(config.prefixes);
    let mut attempts: u64 = 0;
    while out.len() < config.prefixes {
        attempts += 1;
        assert!(
            attempts < (config.prefixes as u64) * 200 + 1024,
            "cannot generate enough unique IPv6 prefixes"
        );
        let len = lengths[picker.sample(&mut rng)];
        let alloc = allocations[rng.gen_range(0..allocations.len())];
        let addr = if len <= 32 {
            alloc
        } else {
            alloc | (rng.gen::<u128>() & ((1u128 << 96) - 1))
        };
        let p = Ipv6Prefix::truncating(addr, len);
        if seen.insert((p.addr(), p.len())) {
            out.push(p);
        }
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.addr().cmp(&b.addr())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::key::SearchKey;

    #[test]
    fn prefix_basics() {
        let p = Ipv6Prefix::new(0x2001_0db8u128 << 96, 32);
        assert_eq!(p.len(), 32);
        assert!(!p.is_empty());
        assert!(p.contains((0x2001_0db8u128 << 96) | 0xFFFF));
        assert!(!p.contains(0x2001_0db9u128 << 96));
        assert_eq!(p.to_ternary_key().care_count(), 32);
        assert!(Ipv6Prefix::new(0, 0).is_empty());
    }

    #[test]
    fn truncating_zeroes_host_bits() {
        let p = Ipv6Prefix::truncating(u128::MAX, 48);
        assert_eq!(p.addr() & ((1u128 << 80) - 1), 0);
        assert_eq!(p.len(), 48);
    }

    #[test]
    fn display_format() {
        let p = Ipv6Prefix::new(0x2001_0db8u128 << 96, 32);
        assert_eq!(p.to_string(), "2001:db8:0:0:0:0:0:0/32");
    }

    #[test]
    fn ternary_key_matches_members() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(2);
        let p = Ipv6Prefix::truncating(0x2400_1234_5678u128 << 80, 48);
        let k = p.to_ternary_key();
        for _ in 0..50 {
            let member = p.random_member(&mut rng);
            assert!(k.matches(&SearchKey::new(member, 128)));
        }
        assert!(!k.matches(&SearchKey::new(0x2600u128 << 112, 128)));
    }

    #[test]
    fn generator_counts_and_structure() {
        let table = generate(&Ipv6Config {
            prefixes: 5_000,
            allocations: 500,
            seed: 1,
        });
        assert_eq!(table.len(), 5_000);
        // Unique, sorted longest-first, all under 2000::/3.
        let mut set: Vec<(u128, u8)> = table.iter().map(|p| (p.addr(), p.len())).collect();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 5_000);
        assert!(table.windows(2).all(|w| w[0].len() >= w[1].len()));
        assert!(table.iter().all(|p| p.addr() >> 125 == 0b001));
        // /48 is the mode.
        let mut hist = std::collections::HashMap::new();
        for p in &table {
            *hist.entry(p.len()).or_insert(0u32) += 1;
        }
        let mode = hist.iter().max_by_key(|(_, &c)| c).map(|(&l, _)| l);
        assert_eq!(mode, Some(48));
    }

    #[test]
    fn quadrupled_storage_versus_ipv4() {
        // The paper's claim, in stored bits: one IPv6 ternary key costs
        // 4x an IPv4 ternary key.
        use ca_ram_core::layout::RecordLayout;
        let v4 = RecordLayout::new(32, true, 0);
        let v6 = RecordLayout::new(128, true, 0);
        assert_eq!(v6.stored_key_bits(), 4 * v4.stored_key_bits());
    }

    #[test]
    #[should_panic(expected = "host bits set")]
    fn host_bits_rejected() {
        let _ = Ipv6Prefix::new(1, 64);
    }
}
